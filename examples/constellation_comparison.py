#!/usr/bin/env python3
"""Compare Starlink S1, Kuiper K1, and Telesat T1 on latency metrics.

Reproduces the flavor of the paper's §5.1 analysis: for a set of famous
city pairs, how close does each constellation get to the speed-of-light
geodesic RTT, and how much does the RTT wander over two minutes?

Run:  python examples/constellation_comparison.py
"""

import numpy as np

from repro import Hypatia
from repro.geo.distance import geodesic_rtt_s

PAIRS = [
    ("New York", "London"),
    ("Manila", "Dalian"),
    ("Istanbul", "Nairobi"),
    ("Sao Paulo", "Lagos"),
    ("Tokyo", "Los Angeles"),
]

SHELLS = ["S1", "K1", "T1"]
DURATION_S = 120.0
STEP_S = 4.0


def main() -> None:
    studies = {shell: Hypatia.from_shell_name(shell, num_cities=100)
               for shell in SHELLS}
    print(f"{'pair':>24} {'geodesic':>9}", end="")
    for shell in SHELLS:
        print(f" {shell + ' min..max':>17}", end="")
    print("  (RTT, ms)")

    for name_a, name_b in PAIRS:
        any_study = studies[SHELLS[0]]
        gid_a, gid_b = any_study.pair(name_a, name_b)
        geodesic = geodesic_rtt_s(
            any_study.ground_stations[gid_a].position,
            any_study.ground_stations[gid_b].position)
        print(f"{name_a + ' - ' + name_b:>24} {geodesic * 1000:9.1f}",
              end="")
        for shell in SHELLS:
            study = studies[shell]
            pair = study.pair(name_a, name_b)
            timeline = study.compute_timelines(
                [pair], duration_s=DURATION_S, step_s=STEP_S)[pair]
            rtts = timeline.rtts_s
            finite = rtts[np.isfinite(rtts)]
            if finite.size == 0:
                print(f" {'unreachable':>17}", end="")
            else:
                print(f" {finite.min() * 1000:7.1f}.."
                      f"{finite.max() * 1000:6.1f} ms", end="")
        print()

    print("\nNotes:")
    print("- no constellation beats the geodesic RTT (speed of light in "
          "vacuum along the surface);")
    print("- terrestrial fiber runs at ~2/3 c over longwinded routes, so "
          "ratios under ~1.5x typically beat today's Internet (paper §5.1).")


if __name__ == "__main__":
    main()
