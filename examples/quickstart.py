#!/usr/bin/env python3
"""Quickstart: build a constellation, look at a path, ping across it.

Builds the paper's Kuiper K1 shell with ground stations at the 100 most
populous cities, inspects the Manila-Dalian shortest path, and then runs a
5-second packet-level ping to confirm the simulated network delivers the
geometry-computed RTT.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Hypatia
from repro.obs import RingBufferTracer
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.ping import PingSession


def main() -> None:
    print("Building Kuiper K1 (34 x 34 satellites @ 630 km) with 100 city "
          "ground stations...")
    hypatia = Hypatia.from_shell_name("K1", num_cities=100)
    print(hypatia.constellation.describe())

    src, dst = hypatia.pair("Manila", "Dalian")
    snapshot = hypatia.snapshot(0.0)
    path = hypatia.routing.path(snapshot, src, dst)
    rtt = hypatia.routing.pair_rtt_s(snapshot, src, dst)
    print(f"\nManila -> Dalian at t=0:")
    print(f"  shortest path: {len(path) - 1} hops via satellites "
          f"{[n for n in path[1:-1]]}")
    print(f"  propagation RTT: {rtt * 1000:.2f} ms")

    print("\nRunning a 5 s packet-level ping (10 ms interval)...")
    sim = PacketSimulator(hypatia.network,
                          LinkConfig(isl_rate_bps=1e9, gsl_rate_bps=1e9),
                          tracer=RingBufferTracer())
    ping = PingSession(src, dst, interval_s=0.01).install(sim)
    sim.run(5.0)
    _, rtts = ping.answered()
    print(f"  {len(rtts)} pings answered; RTT "
          f"{rtts.min() * 1000:.2f}-{rtts.max() * 1000:.2f} ms "
          f"(median {np.median(rtts) * 1000:.2f} ms)")
    print(f"  geometry says {rtt * 1000:.2f} ms — the packet simulator and "
          f"the snapshot computation agree.")

    # Every run can summarize itself (same output as `repro report`).
    print("\nRun report:")
    print(sim.report().describe())


if __name__ == "__main__":
    main()
