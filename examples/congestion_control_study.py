#!/usr/bin/env python3
"""Congestion control on a moving path: NewReno vs Vegas (paper §4.2).

Runs one loss-based and one delay-based TCP flow — each alone on the
network — from Rio de Janeiro to St. Petersburg over Kuiper K1, across a
window containing a path-change RTT step.  Prints the per-phase behavior
that makes both congestion signals unreliable on LEO paths.

Everything printed comes from the observability layer: per-packet RTT
and cwnd from the structured trace (``flow.rtt`` / ``flow.cwnd`` events),
throughput from the probe-sampled per-link series — no private simulator
plumbing.

Run:  python examples/congestion_control_study.py
"""

import numpy as np

from repro import Hypatia
from repro.obs import (FLOW_CWND, FLOW_RTT, PKT_DROP, MetricsRegistry,
                       RingBufferTracer, TraceFilter)
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.vegas import TcpVegasFlow

DURATION_S = 44.0
RATE_BPS = 10e6
QUEUE = 100


def run_flow(hypatia, pair, factory):
    tracer = RingBufferTracer(
        capacity=200_000,
        trace_filter=TraceFilter(kinds={FLOW_RTT, FLOW_CWND, PKT_DROP}))
    sim = PacketSimulator(
        hypatia.network,
        LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                   isl_queue_packets=QUEUE, gsl_queue_packets=QUEUE),
        tracer=tracer)
    registry = MetricsRegistry()
    sim.attach_probe(registry=registry, interval_s=1.0)
    flow = factory(pair[0], pair[1]).install(sim)
    sim.run(DURATION_S)
    return flow, tracer, registry


def describe(label, flow, tracer, registry):
    rtt = np.array([e.value for e in tracer.events_of(FLOW_RTT)])
    # The probe sampled every active device's throughput once per
    # simulated second; the busiest GSL device is the flow's bottleneck.
    gsl = registry.series_names(prefix="link.gsl-", suffix=".throughput_bps")
    busiest = max(gsl, key=lambda n: sum(registry.series_logs[n].values))
    series = np.array(registry.series_logs[busiest].values) / 1e6
    half = len(series) // 2
    print(f"\n=== {label} ===")
    print(f"per-packet RTT: min {rtt.min() * 1000:.1f} ms, "
          f"median {np.median(rtt) * 1000:.1f} ms, "
          f"max {rtt.max() * 1000:.1f} ms")
    print(f"throughput: {series[:half].mean():.2f} Mbit/s before the path "
          f"change, {series[half:].mean():.2f} Mbit/s after")
    drops = tracer.counts.get(PKT_DROP, 0)
    print(f"loss-recovery events: {flow.fast_retransmits} fast rtx, "
          f"{flow.timeouts} timeouts; reordered arrivals: "
          f"{flow.reordered_arrivals}; traced drops: {drops}")


def main() -> None:
    # Offset the epoch so the window holds ~44 s of continuous
    # connectivity with an ~9 ms RTT step at t=26 s.
    hypatia = Hypatia.from_shell_name("K1", num_cities=100,
                                      epoch_offset_s=10.0)
    pair = hypatia.pair("Rio de Janeiro", "Saint Petersburg")
    timeline = hypatia.compute_timelines([pair], duration_s=DURATION_S,
                                         step_s=1.0)[pair]
    rtts = timeline.rtts_s * 1000
    print("Computed (propagation-only) RTT over the window:")
    print(f"  t=0s: {rtts[0]:.1f} ms ... t=25s: {rtts[25]:.1f} ms ... "
          f"t=30s: {rtts[30]:.1f} ms (the path-change step)")

    describe("TCP NewReno (loss-based)",
             *run_flow(hypatia, pair, TcpNewRenoFlow))
    describe("TCP Vegas (delay-based)",
             *run_flow(hypatia, pair, TcpVegasFlow))

    print("\nTakeaway (paper §4.2): NewReno fills the buffer — its RTT "
          "rides ~a full queue above the path RTT — and reordering at "
          "path changes cuts its window without any loss.  Vegas keeps "
          "the queue empty but misreads the path-change RTT increase as "
          "congestion and its throughput drops and stays low.")


if __name__ == "__main__":
    main()
