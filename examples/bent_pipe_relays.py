#!/usr/bin/env python3
"""Bent-pipe connectivity through ground relays (paper Appendix A).

Some proposed constellations carry no inter-satellite links: long-distance
traffic must bounce up and down through ground station relays.  This
example builds Kuiper K1 twice — with +Grid ISLs and without any — adds a
relay grid between Paris and Moscow, and compares the paths and RTTs.

Run:  python examples/bent_pipe_relays.py
"""

import numpy as np

from repro import Hypatia
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import relay_grid_between


def path_description(hypatia, path):
    num_sats = hypatia.network.num_satellites
    parts = []
    for node in path:
        if node < num_sats:
            parts.append(f"sat{node}")
        else:
            station = hypatia.ground_stations[node - num_sats]
            parts.append(station.name)
    return " -> ".join(parts)


def main() -> None:
    relays = relay_grid_between(GeodeticPosition(48.86, 2.35),   # Paris
                                GeodeticPosition(55.76, 37.62),  # Moscow
                                rows=4, columns=6)
    print(f"Relay grid: {len(relays)} candidate ground relays between "
          f"Paris and Moscow")

    isl = Hypatia.from_shell_name("K1", num_cities=100)
    bent = Hypatia.from_shell_name("K1", num_cities=100, use_isls=False,
                                   extra_stations=relays)

    for label, hypatia in [("with ISLs", isl), ("bent pipe", bent)]:
        pair = hypatia.pair("Paris", "Moscow")
        timeline = hypatia.compute_timelines([pair], duration_s=60.0,
                                             step_s=2.0)[pair]
        rtts = timeline.rtts_s
        finite = rtts[np.isfinite(rtts)] * 1000
        snapshot = hypatia.snapshot(0.0)
        path = hypatia.routing.path(snapshot, *pair)
        print(f"\n=== {label} ===")
        print(f"path at t=0: {path_description(hypatia, path)}")
        print(f"RTT over 60 s: {finite.min():.1f}-{finite.max():.1f} ms "
              f"(mean {finite.mean():.1f} ms)")

    print("\nTakeaway (paper Appendix A): the bent-pipe path is typically "
          "a few ms slower — every relay bounce adds an up-down leg — and "
          "data and ACKs share the satellites' GSL devices, perturbing "
          "TCP (run the fig19 benchmark for that effect).")


if __name__ == "__main__":
    main()
