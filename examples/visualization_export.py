#!/usr/bin/env python3
"""Export the paper's visualizations as data files (paper §6).

Writes, into ./viz_output/:

* ``k1.czml`` — Kuiper K1 trajectories as a Cesium CZML document;
* ``st_petersburg_sky.json`` — the ground observer's sky view (Fig. 12);
* ``utilization_map.json`` — per-ISL load segments under the permutation
  traffic matrix (Figs. 14-15), with the hotspot summary.

Run:  python examples/visualization_export.py
"""

import json
from dataclasses import asdict
from pathlib import Path

from repro import Hypatia, random_permutation_pairs
from repro.fluid.engine import FluidFlow, FluidSimulation
from repro.viz.czml import constellation_czml, write_czml
from repro.viz.ground_view import sky_snapshot
from repro.viz.utilization_map import hotspot_summary, utilization_map

OUTPUT = Path("viz_output")


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    hypatia = Hypatia.from_shell_name("K1", num_cities=100)

    print("1/3 trajectories -> k1.czml")
    document = constellation_czml(hypatia.constellation, duration_s=300.0,
                                  step_s=30.0)
    write_czml(document, str(OUTPUT / "k1.czml"))

    print("2/3 ground observer view -> st_petersburg_sky.json")
    station = hypatia.ground_stations[hypatia.gid("Saint Petersburg")]
    frames = [
        sky_snapshot(hypatia.constellation, station,
                     hypatia.network.min_elevation_deg, t).to_dict()
        for t in range(0, 300, 10)
    ]
    (OUTPUT / "st_petersburg_sky.json").write_text(
        json.dumps(frames, indent=1))

    print("3/3 link utilization -> utilization_map.json")
    flows = [FluidFlow(src, dst)
             for src, dst in random_permutation_pairs(100)]
    sim = FluidSimulation(hypatia.network, flows, link_capacity_bps=10e6)
    result = sim.run(duration_s=1.0, step_s=1.0)
    segments = utilization_map(hypatia.constellation,
                               result.isl_utilization(0), time_s=0.0)
    summary = hotspot_summary(segments)
    (OUTPUT / "utilization_map.json").write_text(json.dumps({
        "summary": summary,
        "segments": [asdict(segment) for segment in segments],
    }, indent=1))
    print(f"   {summary['num_used_isls']} ISLs carry traffic; "
          f"{summary['num_hot_isls']} are >= 80% utilized"
          + (f", centered at ({summary['hot_center_lat_deg']:.0f}, "
               f"{summary['hot_center_lon_deg']:.0f})"
               if "hot_center_lat_deg" in summary else ""))
    print(f"\nWrote {len(list(OUTPUT.iterdir()))} files to {OUTPUT}/")


if __name__ == "__main__":
    main()
