#!/usr/bin/env python3
"""Export the paper's visualizations as data files (paper §6).

Writes, into ./viz_output/:

* ``k1.czml`` — Kuiper K1 trajectories as a Cesium CZML document;
* ``st_petersburg_sky.json`` — the ground observer's sky view (Fig. 12);
* ``utilization_map.json`` — per-ISL load segments under the permutation
  traffic matrix (Figs. 14-15), with the hotspot summary;
* ``packet_utilization_map.json`` — the same map rendered straight from
  a packet-simulator probe's sampled ``link.*.utilization`` series.

Run:  python examples/visualization_export.py
"""

import json
from dataclasses import asdict
from pathlib import Path

from repro import Hypatia, random_permutation_pairs
from repro.fluid.engine import FluidFlow, FluidSimulation
from repro.obs import MetricsRegistry
from repro.transport.udp import UdpFlow
from repro.viz.czml import constellation_czml, write_czml
from repro.viz.ground_view import sky_snapshot
from repro.viz.utilization_map import (hotspot_summary, utilization_map,
                                       utilization_map_from_registry)

OUTPUT = Path("viz_output")


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    hypatia = Hypatia.from_shell_name("K1", num_cities=100)

    print("1/4 trajectories -> k1.czml")
    document = constellation_czml(hypatia.constellation, duration_s=300.0,
                                  step_s=30.0)
    write_czml(document, str(OUTPUT / "k1.czml"))

    print("2/4 ground observer view -> st_petersburg_sky.json")
    station = hypatia.ground_stations[hypatia.gid("Saint Petersburg")]
    frames = [
        sky_snapshot(hypatia.constellation, station,
                     hypatia.network.min_elevation_deg, t).to_dict()
        for t in range(0, 300, 10)
    ]
    (OUTPUT / "st_petersburg_sky.json").write_text(
        json.dumps(frames, indent=1))

    print("3/4 link utilization -> utilization_map.json")
    flows = [FluidFlow(src, dst)
             for src, dst in random_permutation_pairs(100)]
    sim = FluidSimulation(hypatia.network, flows, link_capacity_bps=10e6)
    result = sim.run(duration_s=1.0, step_s=1.0)
    segments = utilization_map(hypatia.constellation,
                               result.isl_utilization(0), time_s=0.0)
    summary = hotspot_summary(segments)
    (OUTPUT / "utilization_map.json").write_text(json.dumps({
        "summary": summary,
        "segments": [asdict(segment) for segment in segments],
    }, indent=1))
    print(f"   {summary['num_used_isls']} ISLs carry traffic; "
          f"{summary['num_hot_isls']} are >= 80% utilized"
          + (f", centered at ({summary['hot_center_lat_deg']:.0f}, "
               f"{summary['hot_center_lon_deg']:.0f})"
               if "hot_center_lat_deg" in summary else ""))

    print("4/4 packet-sampled utilization -> packet_utilization_map.json")
    # A short packet-level run: ten UDP flows at line rate, with a probe
    # sampling every device's utilization each simulated second.  The map
    # is rendered directly from the registry's sampled series.
    sim = hypatia.build_packet_simulator()
    registry = MetricsRegistry()
    sim.attach_probe(registry=registry, interval_s=1.0)
    for src, dst in random_permutation_pairs(100)[:10]:
        UdpFlow(src, dst, rate_bps=10e6).install(sim)
    sim.run(2.0)
    packet_segments = utilization_map_from_registry(
        hypatia.constellation, registry, time_s=2.0)
    (OUTPUT / "packet_utilization_map.json").write_text(json.dumps({
        "summary": hotspot_summary(packet_segments),
        "segments": [asdict(segment) for segment in packet_segments],
    }, indent=1))
    print(f"   {len(packet_segments)} ISLs sampled busy by the probe")
    print(f"\nWrote {len(list(OUTPUT.iterdir()))} files to {OUTPUT}/")


if __name__ == "__main__":
    main()
