#!/usr/bin/env python3
"""Reliability extensions: failures, storms, and multipath (paper §7).

Three quick studies on Kuiper K1 that the paper lists as future work:

1. kill a satellite on the Manila-Dalian path — +Grid routes around it;
2. put a storm over Dalian — moderate rain reroutes, severe rain cuts
   the city off until the storm passes;
3. split a flow across edge-disjoint paths — the §5.4 traffic-engineering
   takeaway, quantified.

Run:  python examples/resilience_and_weather.py
"""

import numpy as np

from repro import Hypatia
from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.ground.stations import ground_stations_from_cities
from repro.ground.weather import RainEvent, WeatherModel
from repro.routing.engine import RoutingEngine
from repro.routing.multipath import edge_disjoint_paths
from repro.topology.network import LeoNetwork


def main() -> None:
    stations = ground_stations_from_cities(count=100)
    constellation = Constellation([KUIPER_K1])
    healthy = LeoNetwork(constellation, stations, min_elevation_deg=30.0)
    engine = RoutingEngine(healthy)
    src = next(s.gid for s in stations if s.name == "Manila")
    dst = next(s.gid for s in stations if s.name == "Dalian")
    snapshot = healthy.snapshot(0.0)

    print("1) Satellite failure")
    path = engine.path(snapshot, src, dst)
    rtt = engine.pair_rtt_s(snapshot, src, dst)
    victim = path[1]  # the ingress satellite
    print(f"   healthy: {len(path) - 1} hops, {rtt * 1000:.1f} ms, "
          f"ingress satellite {victim}")
    degraded = LeoNetwork(constellation, stations, min_elevation_deg=30.0,
                          failed_satellites=[victim])
    degraded_engine = RoutingEngine(degraded)
    degraded_rtt = degraded_engine.pair_rtt_s(degraded.snapshot(0.0),
                                              src, dst)
    print(f"   satellite {victim} failed: rerouted at "
          f"{degraded_rtt * 1000:.1f} ms "
          f"(+{(degraded_rtt - rtt) * 1000:.2f} ms)")

    print("\n2) Storm over Dalian")
    for label, penalty in [("moderate (+15 deg)", 15.0),
                           ("severe (outage)", 90.0)]:
        weather = WeatherModel([RainEvent(dst, 0.0, 3600.0, penalty)])
        rainy = LeoNetwork(constellation, stations, min_elevation_deg=30.0,
                           weather=weather)
        rainy_rtt = RoutingEngine(rainy).pair_rtt_s(rainy.snapshot(0.0),
                                                    src, dst)
        if np.isfinite(rainy_rtt):
            print(f"   {label}: connected at {rainy_rtt * 1000:.1f} ms")
        else:
            print(f"   {label}: Dalian unreachable until the storm passes")

    print("\n3) Multipath headroom (Manila -> Dalian)")
    disjoint = edge_disjoint_paths(snapshot, src, dst, max_paths=3)
    for i, (p, d) in enumerate(disjoint, 1):
        one_way_ms = d / 299_792_458.0 * 1000
        print(f"   disjoint path {i}: {len(p) - 1} hops, "
              f"{2 * one_way_ms:.1f} ms RTT")
    print(f"   {len(disjoint)} edge-disjoint paths exist: traffic split "
          f"across them shares no bottleneck (see the multipath TE "
          f"benchmark for the aggregate gain).")


if __name__ == "__main__":
    main()
