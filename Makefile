# Developer entry points. `make check` is the PR gate: the tier-1 test
# suite plus a smoke import of every repro.* module.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test smoke bench bench-fig2 bench-obs bench-sweep \
	bench-faults bench-traffic bench-fluid-scale bench-routing \
	bench-service bench-cc bench-report clean

check: test smoke bench-obs bench-sweep bench-faults bench-traffic \
	bench-fluid-scale bench-routing bench-service bench-cc

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) -c "import importlib, pkgutil, repro; \
	mods = ['repro'] + [m.name for m in pkgutil.walk_packages(repro.__path__, 'repro.')]; \
	[importlib.import_module(name) for name in mods]; \
	print('smoke-imported', len(mods), 'modules')"

# Full per-figure benchmark harness (writes results/*.txt).
bench:
	$(PYTHON) -m pytest benchmarks -q -o testpaths=

# Observability overhead gates: disabled-tracer instrumentation must
# cost <= 10% of the per-event budget, and disabled span hooks <= 2%
# of a 1e5-flow vectorized fluid solve.
bench-obs:
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py \
	    benchmarks/test_span_overhead.py -q -o testpaths=

# Bench-trajectory regression report over results/BENCH_*.json (exits
# nonzero when the latest run is >20% worse than the rolling best).
bench-report:
	$(PYTHON) -m repro bench-report

# Sweep-engine gate: parallel must equal serial bit-for-bit, and reach
# 1.7x at 4 workers (speedup half auto-skips below 4 cores).
bench-sweep:
	$(PYTHON) -m pytest benchmarks/test_sweep_speedup.py -q -o testpaths=

# Fault-model gate: scheduled outage waves must degrade RTTs gracefully
# and recover bit-identically once the schedule ends.
bench-faults:
	$(PYTHON) -m pytest benchmarks/test_extension_resilience.py -q -o testpaths=

# Traffic-model gate: ~1000 finite flows must arrive, get re-solved
# allocations, and complete on the Starlink S1 shell.
bench-traffic:
	$(PYTHON) -m pytest benchmarks/test_traffic_churn.py -q -o testpaths=

# Fluid-core scale gate: the vectorized max-min kernel must match the
# Python oracle bit-for-bit, and solve a 100-city gravity snapshot with
# >= 1e5 concurrent flows at >= 10x the per-flow solver (throughput
# half auto-skips below 4 cores).  Appends results/BENCH_fluid_scale.json.
bench-fluid-scale:
	$(PYTHON) -m pytest benchmarks/test_fluid_scale.py -q -o testpaths=

# Incremental-routing gate: repaired destination trees must equal the
# from-scratch solve bit-for-bit (serial and workers=4), and reach 5x
# per-snapshot routing time on S1 under sparse topology deltas (speedup
# half auto-skips below 4 cores).  Appends
# results/BENCH_routing_incremental.json.
bench-routing:
	$(PYTHON) -m pytest benchmarks/test_routing_incremental.py -q -o testpaths=

# Live-service gate: checkpoint -> restore -> continue must be
# bit-identical to never stopping (packet + both max-min fluid
# kernels), and sweep warm-starts must splice bit-identically (serial
# and workers=4).  Appends results/BENCH_service_restore.json.
bench-service:
	$(PYTHON) -m pytest benchmarks/test_service_restore.py -q -o testpaths=

# Congestion-control gate: the plug-in classics must stay bit-identical
# to the frozen seed flows (cwnd/RTT traces and counters), and the
# learned controller must match or beat the best classic's FCT p50 in
# >= 1 scenario of the fault x weather x churn cc-lab matrix — with the
# matrix itself bit-identical at any worker count.  Appends
# results/BENCH_cc_matrix.json.
bench-cc:
	$(PYTHON) -m pytest benchmarks/test_cc_matrix.py -q -o testpaths=

# The scalability benches touched by the batched routing path.
bench-fig2:
	$(PYTHON) -m pytest benchmarks/test_fig2_scalability.py \
	    benchmarks/test_batched_routing.py -q -o testpaths=

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
