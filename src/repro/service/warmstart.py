"""Sweep warm-start: checkpoint a snapshot sweep, resume it later.

A snapshot sweep (:func:`repro.sweep.sweep_timelines`) walks an array
of independent snapshot instants, so it partitions exactly like the
sweep engine's own chunking: results over ``times_s[:k]`` plus results
over ``times_s[k:]``, concatenated, are bit-identical to one pass over
the full schedule — whatever the worker count or routing mode of
either part (each sweep chunk rebuilds its network and routing state
from the spec; nothing carries across the cut that isn't already
recomputed per chunk).

:func:`checkpoint_sweep` stores the completed prefix behind the same
versioned, spec-hashed header as simulator checkpoints;
:func:`resume_sweep` computes only the remainder and splices the two.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sweep.engine import sweep_timelines
from ..sweep.spec import NetworkSpec
from ..topology.dynamic_state import PairTimeline
from .checkpoint import (Checkpoint, CheckpointError, load_checkpoint,
                         save_checkpoint)

__all__ = ["checkpoint_sweep", "resume_sweep", "sweep_with_checkpoint"]

PairKey = Tuple[int, int]


def checkpoint_sweep(path: str, spec: NetworkSpec,
                     pairs: Sequence[PairKey], times_s: np.ndarray,
                     prefix: Dict[PairKey, PairTimeline],
                     next_index: int,
                     meta: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
    """Save a partially-completed sweep.

    Args:
        path: Checkpoint file to write.
        spec: The sweep's network spec.
        pairs: The tracked pairs, in sweep order.
        times_s: The *full* snapshot schedule.
        prefix: Timelines over ``times_s[:next_index]`` (what has been
            computed so far).
        next_index: First snapshot index still to compute.
        meta: Extra provenance for the header.

    Returns:
        The stamped checkpoint header.
    """
    times_s = np.asarray(times_s, dtype=np.float64)
    if not 0 <= next_index <= len(times_s):
        raise ValueError(
            f"next_index {next_index} outside [0, {len(times_s)}]")
    pair_keys = [(int(a), int(b)) for a, b in pairs]
    for pair in pair_keys:
        timeline = prefix.get(pair)
        if timeline is None:
            raise ValueError(f"prefix is missing pair {pair}")
        if len(timeline.distances_m) != next_index:
            raise ValueError(
                f"pair {pair} prefix covers {len(timeline.distances_m)} "
                f"snapshots, expected {next_index}")
    payload = {
        "pairs": pair_keys,
        "times_s": times_s,
        "next_index": int(next_index),
        "prefix": {pair: (prefix[pair].distances_m, prefix[pair].paths)
                   for pair in pair_keys},
    }
    time_at = float(times_s[next_index]) if next_index < len(times_s) \
        else (float(times_s[-1]) if len(times_s) else 0.0)
    return save_checkpoint(path, Checkpoint(
        spec=spec, engine="sweep", time_s=time_at, payload=payload,
        meta=dict(meta or {})))


def resume_sweep(path: str, workers: Optional[int] = None,
                 metrics=None, routing: str = "incremental",
                 expected_spec: Optional[NetworkSpec] = None,
                 mp_context=None) -> Dict[PairKey, PairTimeline]:
    """Finish a checkpointed sweep; bit-identical to never stopping.

    The remaining snapshots run through :func:`repro.sweep.
    sweep_timelines` with whatever ``workers``/``routing`` the caller
    picks — the determinism contract makes every combination agree —
    and the prefix and remainder concatenate per pair.
    """
    checkpoint = load_checkpoint(path, expected_spec=expected_spec)
    if checkpoint.engine != "sweep":
        raise CheckpointError(
            f"{path}: engine {checkpoint.engine!r} is not a sweep "
            f"checkpoint; use LiveSimulationService.resume for "
            f"simulator checkpoints")
    payload = checkpoint.payload
    pairs: List[PairKey] = [tuple(pair) for pair in payload["pairs"]]
    times_s = np.asarray(payload["times_s"], dtype=np.float64)
    next_index = int(payload["next_index"])
    prefix = payload["prefix"]

    if next_index >= len(times_s):
        remainder: Dict[PairKey, PairTimeline] = {}
    else:
        remainder = sweep_timelines(
            checkpoint.spec, pairs, times_s[next_index:], workers=workers,
            metrics=metrics, routing=routing, mp_context=mp_context)

    merged: Dict[PairKey, PairTimeline] = {}
    for pair in pairs:
        distances_head, paths_head = prefix[pair]
        if pair in remainder:
            tail = remainder[pair]
            distances = np.concatenate([distances_head, tail.distances_m])
            paths = list(paths_head) + list(tail.paths)
        else:
            distances = np.asarray(distances_head)
            paths = list(paths_head)
        merged[pair] = PairTimeline(src_gid=pair[0], dst_gid=pair[1],
                                    times_s=times_s, distances_m=distances,
                                    paths=paths)
    return merged


def sweep_with_checkpoint(spec: NetworkSpec, pairs: Sequence[PairKey],
                          times_s: np.ndarray, checkpoint_path: str,
                          checkpoint_index: int,
                          workers: Optional[int] = None,
                          metrics=None, routing: str = "incremental",
                          meta: Optional[Dict[str, Any]] = None
                          ) -> Dict[str, Any]:
    """Run a sweep up to ``checkpoint_index`` and checkpoint there.

    The warm-start entry point: compute ``times_s[:checkpoint_index]``
    now, persist, and let :func:`resume_sweep` (possibly another
    process, another day, another worker count) finish the schedule.
    Returns the checkpoint header.
    """
    times_s = np.asarray(times_s, dtype=np.float64)
    if not 0 < checkpoint_index <= len(times_s):
        raise ValueError(
            f"checkpoint_index {checkpoint_index} outside "
            f"(0, {len(times_s)}]")
    prefix = sweep_timelines(spec, pairs, times_s[:checkpoint_index],
                             workers=workers, metrics=metrics,
                             routing=routing)
    return checkpoint_sweep(checkpoint_path, spec, pairs, times_s,
                            prefix, checkpoint_index, meta=meta)
