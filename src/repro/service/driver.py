"""The live simulation core: build, advance, mutate, checkpoint.

A :class:`LiveSimulationService` wraps one engine — the packet
simulator or the max-min fluid engine (either kernel) — built from a
picklable :class:`~repro.sweep.spec.NetworkSpec`, and exposes the
operations a long-lived service needs:

* **epoch advancement** — :meth:`advance_epoch` / :meth:`advance_to`
  move simulated time forward in bounded increments, so a server can
  pace them against the wall clock and interleave control commands;
* **live mutation** — :meth:`attach_workload` /
  :meth:`detach_workload` / :meth:`attach_arrivals` /
  :meth:`inject_fault` change traffic and faults *between* epochs while
  the constellation flies;
* **checkpoint/restore** — :meth:`checkpoint` captures the entire
  object graph (DES event queue, device/transport state, fluid run
  state, RNG stream positions) behind a versioned header;
  :meth:`from_checkpoint` / :meth:`resume` bring it back
  bit-identically in any process.

Determinism contract (proven by ``tests/test_service.py``): a service
that is checkpointed at an epoch boundary, restored, and advanced to
the horizon produces stats, reports, and per-flow FCTs bit-identical
to one that never stopped.  Mutations keep a weaker but precise
promise: attaching traffic or injecting faults that only act in the
*future* yields the same traffic outcomes — packet events, deliveries,
drops, FCTs, ``traffic.*`` metrics — as having built the service with
them present from t=0 (only the demand-driven routing *work* counters
may differ, since mid-run installs compute their destination trees at
install time instead of inside a scheduled refresh batch).

The engine choice deliberately excludes the AIMD fluid engine: its
inner loop carries per-step transients that are not exposed in a
resumable state object, so a checkpoint could not honor the
bit-identity contract — asking for it raises :class:`ServiceError`
rather than silently checkpointing something unresumable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..cc.factory import ControllerFlowFactory
from ..faults.injector import LinkFaultInjector
from ..faults.schedule import FaultEvent, FaultSchedule
from ..fluid.engine import (_ELASTIC_DEMAND_CAPACITIES, FluidRunState,
                            FluidSimulation)
from ..obs.metrics import MetricsRegistry
from ..obs.report import RunReport
from ..simulation.simulator import LinkConfig, PacketSimulator
from ..sweep.spec import NetworkSpec
from ..traffic.arrivals import (FlowArrivalProcess, FlowArrivalStream,
                                FlowRequest, WorkloadSchedule)
from ..traffic.spawner import WorkloadSpawner
from ..transport.base import ensure_flow_ids_above
from .checkpoint import (Checkpoint, CheckpointError, load_checkpoint,
                         save_checkpoint)

__all__ = ["LiveSimulationService", "ServiceError"]


class ServiceError(RuntimeError):
    """A service command could not be applied to the live simulator."""


class LiveSimulationService:
    """One live, checkpointable simulation (see module docstring).

    Args:
        spec: The network recipe; must be spec-expressible (registered
            ISL builder) so checkpoints can identify the network.
        engine: ``"packet"`` or ``"fluid"`` (the max-min engine; AIMD
            is not checkpointable and is rejected).
        kernel: Fluid allocation kernel, ``"vectorized"`` or
            ``"reference"``; ignored by the packet engine.
        horizon_s: Simulated end of the run.  Required — both engines
            pre-commit their snapshot/epoch schedule to it.
        epoch_s: Epoch granularity of :meth:`advance_epoch`; for the
            fluid engine also the snapshot step.
        link_capacity_bps: Fluid device capacity.
        link_config: Packet device rates/queues (paper defaults when
            omitted).
        forwarding_interval_s: Packet forwarding refresh period.
        controller: Congestion-controller registry name (see
            :mod:`repro.cc`) every spawned flow runs — including flows
            of workloads attached later.  Packet engine only.  Default:
            the spawner default (NewReno).  Controller state — a
            learned controller's brain included — lives inside the
            spawners, so it rides in checkpoints and survives restore.
        controller_kwargs: Constructor kwargs for each flow's
            controller.
        meta: Free-form JSON-expressible provenance stamped into every
            checkpoint header.
    """

    def __init__(self, spec: NetworkSpec, engine: str = "packet",
                 kernel: str = "vectorized",
                 horizon_s: float = 60.0,
                 epoch_s: float = 1.0,
                 link_capacity_bps: float = 10_000_000.0,
                 link_config: Optional[LinkConfig] = None,
                 forwarding_interval_s: float = 0.1,
                 controller: Optional[str] = None,
                 controller_kwargs: Optional[Dict[str, Any]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        if engine not in ("packet", "fluid"):
            raise ServiceError(
                f"unknown or non-checkpointable engine {engine!r}; the "
                f"service supports 'packet' and 'fluid' (max-min) — the "
                f"AIMD fluid engine carries unresumable loop transients")
        if controller is not None and engine != "packet":
            raise ServiceError(
                "congestion controllers steer packet-engine flows; the "
                "fluid engines have no transport layer to plug into")
        if horizon_s <= 0.0:
            raise ServiceError(f"horizon must be positive, got {horizon_s}")
        if epoch_s <= 0.0:
            raise ServiceError(f"epoch must be positive, got {epoch_s}")
        self.spec = spec
        self.engine = engine
        self.kernel = kernel if engine == "fluid" else ""
        self.horizon_s = float(horizon_s)
        self.epoch_s = float(epoch_s)
        self.meta = dict(meta or {})
        self.clock_s = 0.0
        self.metrics = MetricsRegistry()
        self.network = spec.build()
        #: attach handle -> workload bookkeeping (engine-specific).
        self._attached: Dict[int, Dict[str, Any]] = {}
        self._next_handle = 1
        self._arrival_streams: List[FlowArrivalStream] = []
        #: Shared controller-aware factory (None: spawner default).
        #: One instance across all spawners, so cross-flow controller
        #: state (a learned brain) is scenario-wide and checkpointed.
        self._flow_factory: Optional[ControllerFlowFactory] = None
        if controller is not None:
            self._flow_factory = ControllerFlowFactory(
                controller, controller_kwargs)

        if engine == "packet":
            self.sim: Optional[PacketSimulator] = PacketSimulator(
                self.network, link_config=link_config,
                forwarding_interval_s=forwarding_interval_s)
            self.fluid: Optional[FluidSimulation] = None
            self.state: Optional[FluidRunState] = None
            self._spawners: List[WorkloadSpawner] = []
            if spec.workload is not None and not spec.workload.is_empty:
                spawner = WorkloadSpawner(spec.workload,
                                          metrics=self.metrics,
                                          flow_factory=self._flow_factory)
                spawner.install(self.sim)
                self._spawners.append(spawner)
        else:
            if spec.workload is None or spec.workload.is_empty:
                raise ServiceError(
                    "the fluid service needs traffic: put a workload "
                    "on the spec (NetworkSpec.with_workload)")
            self.sim = None
            self._spawners = []
            self.fluid = FluidSimulation(
                self.network, spec.workload.as_fluid_flows(),
                link_capacity_bps=link_capacity_bps,
                metrics=self.metrics, kernel=kernel)
            self.state = self.fluid.start_run(self.horizon_s,
                                              step_s=self.epoch_s)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated time the service has advanced to."""
        return self.clock_s

    @property
    def done(self) -> bool:
        """Whether the service reached its horizon."""
        return self.clock_s >= self.horizon_s

    def advance_to(self, target_s: float) -> Dict[str, Any]:
        """Advance simulated time to ``min(target_s, horizon_s)``.

        The advance walks epoch boundaries one at a time, draining
        pending arrival streams into each epoch before it simulates —
        so one big ``advance_to(horizon)`` is bit-identical to the
        paced server's epoch-by-epoch advancement (arrival flows are
        installed at the same simulated instants either way).  Returns
        the post-advance :meth:`status`.
        """
        target_s = min(float(target_s), self.horizon_s)
        if target_s < self.clock_s:
            raise ServiceError(
                f"cannot advance backwards (t={self.clock_s} -> "
                f"{target_s}); restore an earlier checkpoint instead")
        while True:
            completed = int(np.floor(self.clock_s / self.epoch_s + 1e-9))
            boundary = min(target_s, (completed + 1) * self.epoch_s)
            self._spawn_arrivals(boundary)
            if self.engine == "packet":
                assert self.sim is not None
                self.sim.run(boundary)
            else:
                assert self.fluid is not None and self.state is not None
                state = self.state
                while (not state.done
                       and float(state.times[state.next_index]) < boundary):
                    self.fluid.advance(state, max_steps=1)
            self.clock_s = boundary
            if boundary >= target_s:
                break
        return self.status()

    def advance_epoch(self, epochs: int = 1) -> Dict[str, Any]:
        """Advance ``epochs`` whole epochs (clamped to the horizon)."""
        if epochs < 1:
            raise ServiceError(f"epochs must be >= 1, got {epochs}")
        # Epoch boundaries come from an integer grid, not repeated
        # float addition, so long-running services never drift.
        completed = int(round(self.clock_s / self.epoch_s))
        return self.advance_to((completed + epochs) * self.epoch_s)

    def run_to_horizon(self) -> Dict[str, Any]:
        """Advance everything that remains."""
        return self.advance_to(self.horizon_s)

    def _spawn_arrivals(self, until_s: float) -> None:
        for stream in self._arrival_streams:
            if stream.taken_until_s >= until_s:
                continue
            requests = stream.take_until(until_s)
            if requests:
                self._attach_requests(requests)

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------

    def attach_workload(self, workload: WorkloadSchedule,
                        shift_to_now: bool = False) -> int:
        """Add a finite-flow workload to the running simulation.

        Args:
            workload: The requests; every start must lie at or after
                the current simulated time (the past already happened).
            shift_to_now: Shift the whole schedule by the current time
                first — how a t=0-relative workload is attached live.

        Returns:
            An attach handle for :meth:`detach_workload`.
        """
        if shift_to_now:
            workload = workload.shifted(self.clock_s)
        if workload.is_empty:
            raise ServiceError("cannot attach an empty workload")
        first = min(r.t_start_s for r in workload.requests)
        if first < self.clock_s:
            raise ServiceError(
                f"workload starts at t={first} but the service is at "
                f"t={self.clock_s}; shift_to_now=True attaches it "
                f"relative to now")
        handle = self._attach_requests(list(workload.requests))
        # The spec keeps describing the *whole* offered traffic, so a
        # from-scratch rebuild of the current spec reproduces this run.
        merged = (workload if self.spec.workload is None
                  else self.spec.workload.merged(workload))
        self.spec = self.spec.with_workload(merged)
        return handle

    def attach_arrivals(self, process: FlowArrivalProcess) -> int:
        """Attach an open-ended Poisson arrival process.

        Arrivals are drawn epoch by epoch through a
        :class:`~repro.traffic.arrivals.FlowArrivalStream`, whose RNG
        stream positions ride inside every checkpoint — restore
        continues the draw sequence exactly where it stopped.
        """
        stream = process.stream()
        discarded = stream.take_until(self.clock_s)
        del discarded  # arrivals strictly before "now" never existed
        self._arrival_streams.append(stream)
        handle = self._next_handle
        self._next_handle += 1
        self._attached[handle] = {"kind": "arrivals", "stream": stream}
        return handle

    def _attach_requests(self, requests: Sequence[FlowRequest]) -> int:
        handle = self._next_handle
        self._next_handle += 1
        if self.engine == "packet":
            assert self.sim is not None
            spawner = WorkloadSpawner(
                WorkloadSchedule(requests), metrics=self.metrics,
                flow_factory=self._flow_factory)
            spawner.install(self.sim)
            self._spawners.append(spawner)
            self._attached[handle] = {"kind": "workload",
                                      "spawner": spawner}
        else:
            start = self._extend_fluid_flows(requests)
            self._attached[handle] = {"kind": "workload",
                                      "flows": (start, len(requests))}
        return handle

    def _extend_fluid_flows(self, requests: Sequence[FlowRequest]) -> int:
        """Append flows to a live fluid run; returns their start index.

        Every per-flow array in the run state grows by the new flows;
        history rows gain ``None`` paths and zero rates, which is
        exactly what a from-t=0 run records for flows that have not
        arrived yet — the attach-equivalence test rests on this.
        """
        assert self.fluid is not None and self.state is not None
        fluid, state = self.fluid, self.state
        if fluid.freeze_topology_at_s is not None:
            raise ServiceError(
                "cannot attach flows to a frozen-topology baseline run")
        schedule = WorkloadSchedule(requests)
        new_flows = schedule.as_fluid_flows()
        start = len(fluid.flows)
        fluid.flows.extend(new_flows)
        fluid._flow_pairs.extend(
            (flow.src_gid, flow.dst_gid) for flow in new_flows)
        count = len(new_flows)
        new_starts = np.array([flow.start_s for flow in new_flows])
        new_offered = np.array([flow.size_bytes * 8.0 for flow in new_flows])
        state.starts = np.concatenate([state.starts, new_starts])
        state.offered_bits = np.concatenate([state.offered_bits,
                                             new_offered])
        state.residual_bits = np.concatenate([state.residual_bits,
                                              new_offered.copy()])
        state.delivered_bits = np.concatenate([state.delivered_bits,
                                               np.zeros(count)])
        state.fct_s = np.concatenate([state.fct_s,
                                      np.full(count, np.nan)])
        new_caps = np.minimum(
            np.array([flow.demand_bps for flow in new_flows]),
            _ELASTIC_DEMAND_CAPACITIES * fluid.link_capacity_bps)
        state.demand_caps = np.concatenate([state.demand_caps, new_caps])
        state.rates = np.hstack(
            [state.rates, np.zeros((len(state.times), count))])
        for row in state.all_paths:
            row.extend([None] * count)
        state.dynamic = True
        return start

    def detach_workload(self, handle: int) -> Dict[str, Any]:
        """Stop a previously attached workload offering new traffic.

        Flow transfers already in progress drain normally (like
        in-flight packets on a closing connection); what detaching
        cancels is the *future* — unstarted flows, and further arrivals
        of an arrival-process attachment.
        """
        info = self._attached.pop(handle, None)
        if info is None:
            raise ServiceError(f"unknown workload handle {handle}")
        now = self.clock_s
        if info["kind"] == "arrivals":
            self._arrival_streams.remove(info["stream"])
            return {"handle": handle, "cancelled": "arrival stream"}
        if self.engine == "packet":
            spawner = info["spawner"]
            cancelled = 0
            for app in spawner.flows:
                if getattr(app, "completed_at_s", None) is None:
                    app.stop_s = min(getattr(app, "stop_s", np.inf), now)
                    cancelled += 1
            return {"handle": handle, "cancelled": cancelled}
        assert self.state is not None
        start, count = info["flows"]
        state = self.state
        indices = np.arange(start, start + count)
        future = indices[state.starts[indices] > now]
        state.residual_bits[future] = 0.0
        return {"handle": handle, "cancelled": int(len(future))}

    def inject_fault(self, events: Union[FaultEvent,
                                         Sequence[FaultEvent]]) -> int:
        """Inject fault events into the flying constellation.

        Every event window must open at or after the current simulated
        time; with that restriction the injection is bit-identical to a
        run where the events were scheduled from t=0 (routing sees them
        through the fault view at snapshot time, and live packet-loss
        injectors extend without touching their RNG stream positions).

        Returns the number of events injected.
        """
        if isinstance(events, FaultEvent):
            events = [events]
        events = list(events)
        if not events:
            raise ServiceError("no fault events given")
        now = self.clock_s
        for event in events:
            if event.start_s < now:
                raise ServiceError(
                    f"fault event starting at t={event.start_s} is in "
                    f"the past (service is at t={now}); only future "
                    f"windows inject deterministically")
        existing = self.network.faults
        seed = existing.seed if existing is not None else 0
        addition = FaultSchedule(events, seed=seed)
        merged = (addition if existing is None
                  else existing.merged(addition))
        self.network.set_faults(merged)
        self.spec = replace(self.spec, faults=merged)
        if self.engine == "packet":
            self._extend_packet_injectors(events, merged, now)
        return len(events)

    def _extend_packet_injectors(self, events: Sequence[FaultEvent],
                                 merged: FaultSchedule,
                                 now: float) -> None:
        """Wire new stochastic loss/corruption events into live devices."""
        assert self.sim is not None
        sim = self.sim
        sim._faults = merged if len(merged) else None
        for event in events:
            if not event.is_stochastic:
                continue
            devices = []
            if event.isl is not None:
                a, b = event.isl
                for key in ((a, b), (b, a)):
                    try:
                        devices.append(sim.isl_device(*key))
                    except KeyError:
                        pass
            elif event.gid is not None:
                devices.append(
                    sim.gsl_device(self.network.num_satellites + event.gid))
            for device in devices:
                injector = device._fault_injector
                if injector is None:
                    injector = LinkFaultInjector(device.name, [event],
                                                 seed=merged.seed)
                    device._fault_injector = injector
                else:
                    injector.extend([event], now)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """A compact JSON-expressible view of the service state."""
        status: Dict[str, Any] = {
            "engine": self.engine,
            "kernel": self.kernel,
            "time_s": self.clock_s,
            "horizon_s": self.horizon_s,
            "epoch_s": self.epoch_s,
            "done": self.done,
            "attached": len(self._attached),
            "arrival_streams": len(self._arrival_streams),
        }
        if self.engine == "packet":
            assert self.sim is not None
            status["events_processed"] = self.sim.scheduler.events_processed
            status["flows"] = sum(len(s.flows) for s in self._spawners)
            status["flows_completed"] = sum(
                s.completed for s in self._spawners)
        else:
            assert self.state is not None
            status["flows"] = len(self.state.starts)
            status["snapshots_done"] = self.state.next_index
            status["snapshots_total"] = len(self.state.times)
            status["allocations_solved"] = self.state.solves
        return status

    def metrics_dict(self, include_series: bool = True) -> Dict[str, Any]:
        """The live metrics registry contents (``repro.obs`` form)."""
        return self.metrics.as_dict(include_series=include_series)

    def report(self) -> RunReport:
        """The unified run report of the simulation so far.

        The packet engine reports at any epoch boundary; the fluid
        engines report once the horizon is reached (a fluid
        :class:`~repro.fluid.engine.FluidResult` is only defined over
        the full committed snapshot schedule).
        """
        if self.engine == "packet":
            assert self.sim is not None
            report = self.sim.report(self.clock_s, registry=self.metrics)
            if self._spawners:
                report.extras["fct"] = self._combined_fct_extras()
            return report
        assert self.fluid is not None and self.state is not None
        if not self.state.done:
            raise ServiceError(
                f"fluid report needs the horizon: at t={self.clock_s} "
                f"of {self.horizon_s}; advance first (or checkpoint and "
                f"resume later)")
        result = self.fluid.finish(self.state)
        return result.report(registry=self.metrics)

    def _combined_fct_extras(self) -> Dict[str, Any]:
        """One ``fct`` extras section over every installed spawner.

        The histogram is the registry's own ``traffic.fct_s`` — every
        spawner observes into it in completion order, so its float
        accumulation is identical no matter how the same flows were
        split across spawners (one baked-in schedule vs several live
        attachments).
        """
        from ..obs.report import FCT_BUCKETS
        from ..traffic.spawner import controller_fct_rows
        histogram = self.metrics.histogram("traffic.fct_s",
                                           buckets=FCT_BUCKETS)
        finite = completed = 0
        offered = delivered = 0.0
        by_controller: Dict[str, List[float]] = {}
        for spawner in self._spawners:
            finite += spawner.schedule.num_flows
            completed += spawner.completed
            offered += spawner.schedule.offered_bits
            delivered += float(spawner._delivered_bytes) * 8.0
            for name, fcts in spawner.fcts_by_controller.items():
                by_controller.setdefault(name, []).extend(fcts)
        return {"histogram": histogram.as_dict(), "flows_finite": finite,
                "flows_completed": completed, "offered_bits": offered,
                "delivered_bits": delivered,
                "by_controller": controller_fct_rows(by_controller)}

    def fct_values(self) -> np.ndarray:
        """Per-flow completion times recorded so far (seconds)."""
        if self.engine == "packet":
            values: List[float] = []
            for spawner in self._spawners:
                values.extend(spawner.fcts_s)
            return np.asarray(values)
        assert self.state is not None
        return self.state.fct_s[np.isfinite(self.state.fct_s)]

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, meta: Optional[Dict[str, Any]] = None
                   ) -> Checkpoint:
        """Capture the whole live state as a versioned checkpoint.

        The payload is this service object itself — one pickle
        memoizes the shared references (scheduler queue entries, device
        graphs, RNG streams, run state), so restore reconstructs the
        identical object graph.
        """
        merged_meta = dict(self.meta)
        if meta:
            merged_meta.update(meta)
        merged_meta.setdefault("horizon_s", self.horizon_s)
        merged_meta.setdefault("epoch_s", self.epoch_s)
        return Checkpoint(spec=self.spec, engine=self.engine,
                          time_s=self.clock_s,
                          payload={"service": self},
                          kernel=self.kernel, meta=merged_meta)

    def save(self, path: str,
             meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Checkpoint to a file; returns the stamped header."""
        return save_checkpoint(path, self.checkpoint(meta=meta))

    @classmethod
    def from_checkpoint(cls, checkpoint: Checkpoint
                        ) -> "LiveSimulationService":
        """Rehydrate the live service a checkpoint captured."""
        service = checkpoint.payload.get("service")
        if not isinstance(service, cls):
            raise CheckpointError(
                f"checkpoint payload holds "
                f"{type(service).__name__!r}, not a live service "
                f"(was it written by LiveSimulationService.save?)")
        if service.engine == "packet" and service.sim is not None:
            # The flow-id allocator restarted with this process; push it
            # past every restored flow so post-restore attachments are
            # collision-free.
            restored = [flow for _, flow in service.sim._handlers]
            ensure_flow_ids_above(max(restored, default=0))
        return service

    @classmethod
    def resume(cls, path: str,
               expected_spec: Optional[NetworkSpec] = None
               ) -> "LiveSimulationService":
        """Load a checkpoint file and rehydrate its service."""
        return cls.from_checkpoint(
            load_checkpoint(path, expected_spec=expected_spec))
