"""The async service front-end: wall-clock pacing + JSON command API.

:class:`ServiceServer` owns a :class:`~repro.service.driver.
LiveSimulationService` and exposes it over newline-delimited JSON on a
TCP socket (stdlib ``asyncio`` only — no external dependencies):

* an optional **pacing loop** advances one epoch every
  ``epoch_s / pace`` wall seconds (``pace=2`` flies the constellation
  at twice real time; ``pace=0`` advances only on command), so the
  simulated constellation genuinely *flies* while clients watch;
* every line received is one command object ``{"cmd": ..., ...}`` and
  produces exactly one response line ``{"ok": true, ...}`` or
  ``{"ok": false, "error": ...}`` — trivially scriptable from any
  language, ``repro.service.client`` wraps it for Python and the CLI.

Commands mirror the sync driver: ``status``, ``advance`` (epochs),
``checkpoint`` (path), ``metrics`` / ``report`` / ``spans`` streaming
``repro.obs`` contents, ``attach_workload`` / ``detach_workload`` /
``inject_fault`` for live mutation, and ``stop``.

Commands and epoch advancement interleave on the event loop, never
concurrently — an epoch is the atomic unit, which is exactly the
granularity the checkpoint determinism contract is stated at.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from ..faults.schedule import FaultEvent
from ..obs import spans
from ..traffic.arrivals import WorkloadSchedule
from .driver import LiveSimulationService, ServiceError

__all__ = ["ServiceServer", "serve_forever"]


class ServiceServer:
    """One service instance behind a JSON-over-TCP command socket.

    Args:
        service: The live simulation to serve.
        host: Bind address (default loopback).
        port: Bind port (0 picks a free one; see :attr:`port` after
            :meth:`start`).
        pace: Wall-clock pacing factor — epochs advance automatically
            every ``service.epoch_s / pace`` wall seconds.  ``0``
            (default) disables auto-advance; clients drive time with
            the ``advance`` command.
    """

    def __init__(self, service: LiveSimulationService, host: str = "127.0.0.1",
                 port: int = 0, pace: float = 0.0) -> None:
        if pace < 0.0:
            raise ValueError(f"pace must be >= 0, got {pace}")
        self.service = service
        self.host = host
        self.port = port
        self.pace = pace
        self._server: Optional[asyncio.AbstractServer] = None
        self._pacer: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the pacing loop (if paced)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.pace > 0.0:
            self._pacer = asyncio.ensure_future(self._pace_epochs())

    async def _pace_epochs(self) -> None:
        interval = self.service.epoch_s / self.pace
        try:
            while not self.service.done and not self._stopping.is_set():
                await asyncio.sleep(interval)
                if self._stopping.is_set():
                    break
                self.service.advance_epoch()
        except asyncio.CancelledError:
            pass

    async def wait_closed(self) -> None:
        """Block until a ``stop`` command (or :meth:`stop`) shuts down."""
        await self._stopping.wait()
        if self._pacer is not None:
            self._pacer.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def stop(self) -> None:
        self._stopping.set()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = self._dispatch(json.loads(line.decode()))
                except (ServiceError, ValueError, KeyError,
                        TypeError) as error:
                    response = {"ok": False,
                                "error": f"{type(error).__name__}: {error}"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("bye"):
                    break
        finally:
            writer.close()

    def _dispatch(self, command: Dict[str, Any]) -> Dict[str, Any]:
        service = self.service
        name = command.get("cmd")
        if name == "status":
            return {"ok": True, "status": service.status()}
        if name == "advance":
            status = service.advance_epoch(int(command.get("epochs", 1)))
            return {"ok": True, "status": status}
        if name == "run_to_horizon":
            return {"ok": True, "status": service.run_to_horizon()}
        if name == "checkpoint":
            header = service.save(str(command["path"]),
                                  meta=command.get("meta"))
            return {"ok": True, "header": header,
                    "path": str(command["path"])}
        if name == "metrics":
            return {"ok": True, "metrics": service.metrics_dict(
                include_series=bool(command.get("include_series", True)))}
        if name == "report":
            return {"ok": True, "report": service.report().as_dict(
                deterministic=bool(command.get("deterministic", False)))}
        if name == "spans":
            profiler = spans.ACTIVE
            if profiler.enabled and isinstance(profiler,
                                               spans.SpanProfiler):
                return {"ok": True, "phases": profiler.phase_summary()}
            return {"ok": True, "phases": None}
        if name == "attach_workload":
            workload = WorkloadSchedule.from_dict(command["workload"])
            handle = service.attach_workload(
                workload, shift_to_now=bool(command.get("shift_to_now",
                                                        False)))
            return {"ok": True, "handle": handle}
        if name == "detach_workload":
            return {"ok": True,
                    **service.detach_workload(int(command["handle"]))}
        if name == "inject_fault":
            events = [FaultEvent.from_dict(record)
                      for record in command["events"]]
            injected = service.inject_fault(events)
            return {"ok": True, "injected": injected}
        if name == "stop":
            self.stop()
            return {"ok": True, "bye": True,
                    "status": service.status()}
        return {"ok": False, "error": f"unknown command {name!r}"}


async def serve_forever(service: LiveSimulationService,
                        host: str = "127.0.0.1", port: int = 0,
                        pace: float = 0.0,
                        ready_callback=None) -> None:
    """Run a :class:`ServiceServer` until a ``stop`` command arrives.

    Args:
        ready_callback: Called with the bound server once the socket is
            listening (the CLI prints the port; tests grab it).
    """
    server = ServiceServer(service, host=host, port=port, pace=pace)
    await server.start()
    if ready_callback is not None:
        ready_callback(server)
    await server.wait_closed()
