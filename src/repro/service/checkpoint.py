"""Versioned simulator checkpoints: one file, resumable anywhere.

A checkpoint file is::

    MAGIC | header-length (8 bytes, big-endian) | JSON header | pickle

The JSON header carries everything a reader needs *before* trusting the
payload — format version, engine, kernel, simulated time, and the
:func:`spec_fingerprint` of the :class:`~repro.sweep.spec.NetworkSpec`
that built the simulator — so version and spec-compatibility checks
never unpickle anything.  The pickle payload is the live object graph
(event queue, devices, transports, fluid run state, RNG streams, ...);
determinism of the restore is what ``tests/test_service.py`` proves.

Compatibility contract:

* :data:`CHECKPOINT_FORMAT_VERSION` bumps on any layout change; loading
  a mismatched version raises :class:`CheckpointVersionError`.
* Resuming against a different network spec (different shells, ground
  segment, faults, workload, ...) raises :class:`CheckpointSpecError`
  unless the caller explicitly opts out — silently resuming a Kuiper
  checkpoint on a Starlink network is the failure mode this guards.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import io
import json
import math
import pickle
from typing import Any, BinaryIO, Dict, Optional

import numpy as np

from ..sweep.spec import NetworkSpec

__all__ = [
    "CHECKPOINT_FORMAT_VERSION", "CHECKPOINT_MAGIC",
    "Checkpoint", "CheckpointError", "CheckpointVersionError",
    "CheckpointSpecError", "spec_fingerprint",
    "save_checkpoint", "load_checkpoint", "read_checkpoint_header",
]

#: Bump on any change to the file layout or the pickled payload shape.
CHECKPOINT_FORMAT_VERSION = 1

#: File signature; also rejects accidental non-checkpoint files early.
CHECKPOINT_MAGIC = b"REPRO-CKPT\n"

_HEADER_LEN_BYTES = 8
#: Sanity bound on the JSON header (a header is a few hundred bytes).
_MAX_HEADER_BYTES = 1 << 20


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, written, or safely resumed."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint's format version does not match this build."""


class CheckpointSpecError(CheckpointError):
    """The checkpoint's network spec does not match the expected one."""


# ----------------------------------------------------------------------
# Spec fingerprinting
# ----------------------------------------------------------------------

def _canonical(value: Any) -> Any:
    """A JSON-expressible canonical form of spec-shaped data.

    Recursively normalizes the plain-data types a
    :class:`~repro.sweep.spec.NetworkSpec` is built from — frozen
    dataclasses, enums, tuples, numpy scalars/arrays, and objects whose
    whole state is their ``__dict__`` (``FaultSchedule``,
    ``WorkloadSchedule``, ``WeatherModel``) — so the fingerprint depends
    only on content, never on id()s, dict insertion history, or pickle
    protocol details.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {f.name: _canonical(getattr(value, f.name))
                       for f in dataclasses.fields(value)},
        }
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "name": value.name}
    if isinstance(value, dict):
        return {"__dict__": sorted(
            (str(k), _canonical(v)) for k, v in value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": str(value.dtype),
                "shape": list(value.shape),
                "data": value.tolist()}
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if hasattr(value, "__dict__"):
        return {
            "__object__": type(value).__name__,
            "state": _canonical(vars(value)),
        }
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting")


def spec_fingerprint(spec: NetworkSpec) -> str:
    """A stable sha256 content hash of a network spec.

    Two specs fingerprint equally iff they describe the same network,
    independent of process, platform, or ``PYTHONHASHSEED`` — the hash
    goes into every checkpoint header and gates every resume.
    """
    blob = json.dumps(_canonical(spec), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# The checkpoint container
# ----------------------------------------------------------------------

class Checkpoint:
    """One restorable simulator state plus its identifying header.

    Args:
        spec: The network spec the simulator was built from.
        engine: ``"packet"`` or ``"fluid"``.
        time_s: Simulated time the state was captured at.
        payload: The picklable live object graph — for the packet
            engine the simulator and its applications, for the fluid
            engines the simulation plus its
            :class:`~repro.fluid.engine.FluidRunState`, for a sweep
            the completed-prefix timelines and the resume cursor.
        kernel: Fluid allocation kernel (``""`` for the packet engine).
        meta: Free-form provenance (scenario name, epoch length, ...);
            must be JSON-expressible.
        format_version: Stamped automatically; only loads override it.
        spec_hash: Stamped automatically from ``spec``; only loads
            override it.
    """

    def __init__(self, spec: NetworkSpec, engine: str, time_s: float,
                 payload: Dict[str, Any], kernel: str = "",
                 meta: Optional[Dict[str, Any]] = None,
                 format_version: int = CHECKPOINT_FORMAT_VERSION,
                 spec_hash: Optional[str] = None) -> None:
        if engine not in ("packet", "fluid", "sweep"):
            raise ValueError(f"unknown engine {engine!r}; "
                             f"use 'packet', 'fluid', or 'sweep'")
        self.spec = spec
        self.engine = engine
        self.kernel = kernel
        self.time_s = float(time_s)
        self.payload = payload
        self.meta = dict(meta or {})
        self.format_version = int(format_version)
        self.spec_hash = (spec_fingerprint(spec) if spec_hash is None
                          else spec_hash)

    def header(self) -> Dict[str, Any]:
        """The JSON header identifying this checkpoint."""
        return {
            "format_version": self.format_version,
            "spec_hash": self.spec_hash,
            "engine": self.engine,
            "kernel": self.kernel,
            "time_s": self.time_s,
            "meta": self.meta,
        }

    def __repr__(self) -> str:
        return (f"Checkpoint(engine={self.engine!r}, "
                f"kernel={self.kernel!r}, t={self.time_s}, "
                f"v{self.format_version}, "
                f"spec={self.spec_hash[:12]})")


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------

def _write(stream: BinaryIO, checkpoint: Checkpoint) -> None:
    header = json.dumps(checkpoint.header(), sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
    stream.write(CHECKPOINT_MAGIC)
    stream.write(len(header).to_bytes(_HEADER_LEN_BYTES, "big"))
    stream.write(header)
    pickle.dump({"spec": checkpoint.spec, "payload": checkpoint.payload},
                stream, protocol=pickle.HIGHEST_PROTOCOL)


def save_checkpoint(path: str, checkpoint: Checkpoint) -> Dict[str, Any]:
    """Write a checkpoint file; returns the header that was stamped."""
    with open(path, "wb") as stream:
        _write(stream, checkpoint)
    return checkpoint.header()


def _read_header(stream: BinaryIO, path: str) -> Dict[str, Any]:
    magic = stream.read(len(CHECKPOINT_MAGIC))
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a repro checkpoint "
                              f"(bad magic {magic!r})")
    raw_len = stream.read(_HEADER_LEN_BYTES)
    if len(raw_len) != _HEADER_LEN_BYTES:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    header_len = int.from_bytes(raw_len, "big")
    if not 0 < header_len <= _MAX_HEADER_BYTES:
        raise CheckpointError(
            f"{path}: implausible header length {header_len}")
    raw = stream.read(header_len)
    if len(raw) != header_len:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    try:
        header = json.loads(raw.decode("utf-8"))
    except ValueError as error:
        raise CheckpointError(
            f"{path}: corrupt checkpoint header: {error}") from error
    if not isinstance(header, dict) or "format_version" not in header:
        raise CheckpointError(f"{path}: checkpoint header has no "
                              f"format_version")
    return header


def read_checkpoint_header(path: str) -> Dict[str, Any]:
    """The JSON header of a checkpoint file, *without* unpickling.

    Safe on any file: raises :class:`CheckpointError` (never an
    unpickling side effect) on non-checkpoints, and performs version or
    spec checks only when the caller does.
    """
    with open(path, "rb") as stream:
        return _read_header(stream, path)


def load_checkpoint(path: str,
                    expected_spec: Optional[NetworkSpec] = None,
                    check_spec: bool = True) -> Checkpoint:
    """Read, validate, and unpickle a checkpoint file.

    Args:
        path: The checkpoint file.
        expected_spec: When given, the spec the caller is about to
            resume against; its fingerprint must match the header's.
        check_spec: Set ``False`` to skip the internal
            header-hash-vs-pickled-spec consistency check (never needed
            outside of corruption forensics).

    Raises:
        CheckpointVersionError: Header format version differs from
            :data:`CHECKPOINT_FORMAT_VERSION`.
        CheckpointSpecError: ``expected_spec``'s fingerprint (or the
            pickled spec's, when ``check_spec``) does not match the
            header's ``spec_hash``.
        CheckpointError: Bad magic, truncation, or corrupt header.
    """
    with open(path, "rb") as stream:
        header = _read_header(stream, path)
        version = int(header["format_version"])
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointVersionError(
                f"{path}: checkpoint format v{version} does not match "
                f"this build's v{CHECKPOINT_FORMAT_VERSION}; re-create "
                f"the checkpoint with this version")
        spec_hash = str(header.get("spec_hash", ""))
        if expected_spec is not None:
            expected_hash = spec_fingerprint(expected_spec)
            if expected_hash != spec_hash:
                raise CheckpointSpecError(
                    f"{path}: checkpoint was taken on a different "
                    f"network spec (checkpoint {spec_hash[:12]}, "
                    f"expected {expected_hash[:12]}); resume against "
                    f"the original spec")
        body = pickle.load(stream)
    spec = body["spec"]
    if check_spec and spec_fingerprint(spec) != spec_hash:
        raise CheckpointSpecError(
            f"{path}: header spec hash does not match the pickled spec "
            f"(file corrupt or tampered)")
    return Checkpoint(spec=spec, engine=str(header["engine"]),
                      kernel=str(header.get("kernel", "")),
                      time_s=float(header["time_s"]),
                      payload=body["payload"],
                      meta=dict(header.get("meta", {})),
                      format_version=version,
                      spec_hash=spec_hash)


def checkpoint_to_bytes(checkpoint: Checkpoint) -> bytes:
    """The checkpoint file image as bytes (for tests and streaming)."""
    stream = io.BytesIO()
    _write(stream, checkpoint)
    return stream.getvalue()
