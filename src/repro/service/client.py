"""A minimal synchronous client for the service's JSON line protocol.

The protocol is deliberately simple enough for ``netcat`` — one JSON
object per line in, one per line out — and this client is the Python
convenience wrapper the CLI's ``--connect`` paths use::

    with ServiceClient("127.0.0.1", 7600) as client:
        client.command("advance", epochs=5)
        header = client.command("checkpoint", path="state.ckpt")["header"]
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """The server rejected a command or the connection broke."""


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.
    ServiceServer`.

    Args:
        host: Server address.
        port: Server port.
        timeout_s: Socket timeout for connect and each response.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout_s)
        except OSError as exc:
            raise ServiceClientError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        self._stream = self._sock.makefile("rwb")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def command(self, cmd: str, **fields: Any) -> Dict[str, Any]:
        """Send one command, return the server's response payload.

        Raises:
            ServiceClientError: On protocol failure or an
                ``{"ok": false}`` response (the server's error message
                is preserved).
        """
        request = {"cmd": cmd}
        request.update(fields)
        self._stream.write(json.dumps(request).encode() + b"\n")
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ServiceClientError(
                f"server closed the connection during {cmd!r}")
        response = json.loads(line.decode())
        if not response.get("ok"):
            raise ServiceClientError(
                response.get("error", f"command {cmd!r} failed"))
        return response

    # Convenience wrappers -------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return self.command("status")["status"]

    def advance(self, epochs: int = 1) -> Dict[str, Any]:
        return self.command("advance", epochs=epochs)["status"]

    def checkpoint(self, path: str,
                   meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.command("checkpoint", path=path, meta=meta)["header"]

    def metrics(self, include_series: bool = True) -> Dict[str, Any]:
        return self.command("metrics",
                            include_series=include_series)["metrics"]

    def report(self, deterministic: bool = False) -> Dict[str, Any]:
        return self.command("report",
                            deterministic=deterministic)["report"]

    def stop(self) -> Dict[str, Any]:
        return self.command("stop")["status"]
