"""Live simulation service: checkpoint/restore + epoch-paced driving.

The batch pipeline (build → run → report) becomes a *platform* here:

* :mod:`repro.service.checkpoint` — versioned, spec-hashed state files
  capturing a whole live simulator (DES event queue, transports, fluid
  run state, RNG stream positions);
* :mod:`repro.service.driver` — :class:`LiveSimulationService`, the
  sync core that advances epochs, mutates traffic/faults in flight,
  and checkpoints/restores bit-identically;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio JSON-over-TCP command API behind ``repro serve`` /
  ``repro checkpoint --connect`` / ``repro resume``;
* :mod:`repro.service.warmstart` — checkpoint/resume for snapshot
  sweeps (:func:`sweep_with_checkpoint` / :func:`resume_sweep`).

The backbone guarantee, enforced by ``tests/test_service.py`` and the
``make bench-service`` parity gate: **resume ≡ never-stopped**, bit
for bit, across the packet engine and both max-min fluid kernels.
"""

from .checkpoint import (CHECKPOINT_FORMAT_VERSION, Checkpoint,
                         CheckpointError, CheckpointSpecError,
                         CheckpointVersionError, load_checkpoint,
                         read_checkpoint_header, save_checkpoint,
                         spec_fingerprint)
from .client import ServiceClient, ServiceClientError
from .driver import LiveSimulationService, ServiceError
from .server import ServiceServer, serve_forever
from .warmstart import checkpoint_sweep, resume_sweep, sweep_with_checkpoint

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointSpecError",
    "CheckpointVersionError",
    "LiveSimulationService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "checkpoint_sweep",
    "load_checkpoint",
    "read_checkpoint_header",
    "resume_sweep",
    "save_checkpoint",
    "serve_forever",
    "spec_fingerprint",
    "sweep_with_checkpoint",
]
