"""repro: a pure-Python reproduction of Hypatia (IMC 2020).

Hypatia is a framework for simulating and visualizing the network behaviour
of LEO mega-constellations (Starlink, Kuiper, Telesat).  This package
reimplements the full system from scratch:

* :mod:`repro.geo` / :mod:`repro.orbits` — geodesy and orbital mechanics
  (Keplerian propagation, TLE generation/parsing);
* :mod:`repro.constellations` — paper Table 1's shells and satellites;
* :mod:`repro.ground` — the 100-city ground segment and visibility;
* :mod:`repro.topology` / :mod:`repro.routing` — +Grid ISLs, GSLs,
  time-varying shortest-path forwarding state;
* :mod:`repro.simulation` / :mod:`repro.transport` — packet-level
  discrete-event simulation with TCP NewReno, TCP Vegas, UDP, ping;
* :mod:`repro.fluid` — flow-level max-min and AIMD engines;
* :mod:`repro.faults` — deterministic, seeded fault schedules (outages,
  link cuts, stochastic loss) applied across every engine;
* :mod:`repro.traffic` — gravity-model demand matrices and seeded
  stochastic flow workloads with flow-completion-time reporting;
* :mod:`repro.analysis` / :mod:`repro.viz` — the paper's metrics and
  visualization data exports;
* :mod:`repro.core` — the :class:`~repro.core.hypatia.Hypatia` facade.

Quickstart::

    from repro import Hypatia
    hypatia = Hypatia.from_shell_name("K1")
    rtt = hypatia.routing.pair_rtt_s(hypatia.snapshot(0.0),
                                     *hypatia.pair("Manila", "Dalian"))
"""

from .core.hypatia import Hypatia
from .core.workloads import (
    PAPER_FOCUS_PAIRS,
    pairs_by_name,
    random_permutation_pairs,
)
from .faults import FaultEvent, FaultKind, FaultSchedule
from .traffic import (
    FlowArrivalProcess,
    FlowRequest,
    TrafficMatrix,
    WorkloadSchedule,
    WorkloadSpawner,
)

__version__ = "1.0.0"

__all__ = [
    "Hypatia",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FlowArrivalProcess",
    "FlowRequest",
    "TrafficMatrix",
    "WorkloadSchedule",
    "WorkloadSpawner",
    "PAPER_FOCUS_PAIRS",
    "pairs_by_name",
    "random_permutation_pairs",
    "__version__",
]
