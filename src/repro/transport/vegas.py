"""TCP Vegas: delay-based congestion control.

Paper §4.2 / Fig. 5: Vegas keeps queues nearly empty, but on LEO paths it
misreads path-change-induced RTT increases as congestion, drastically cuts
its window, and its throughput collapses.  That failure mode needs no
special-casing here — it falls out of the standard Vegas rules:

* ``BaseRTT`` is the minimum RTT ever observed on the connection;
* once per RTT, Vegas estimates the backlog it keeps in queues as
  ``diff = cwnd * (RTT - BaseRTT) / RTT`` (in packets);
* it nudges cwnd to keep ``alpha <= diff <= beta``.

When satellite motion lengthens the path, ``RTT - BaseRTT`` grows with no
queueing whatsoever, ``diff`` exceeds ``beta``, and Vegas walks its window
down toward the floor — exactly the collapse of Fig. 5(b)/(c).

The algorithm itself lives in :class:`repro.cc.classic.VegasController`
(loss handling — fast retransmit / RTO — layers over the Reno base,
matching how Vegas implementations do); this class is the historical
flow-class spelling: :class:`~repro.transport.tcp.TcpFlow` pinned to a
``VegasController``, with the Vegas knobs re-exposed as properties.
"""

from __future__ import annotations

from ..cc.classic import VegasController
from .tcp import TcpFlow

__all__ = ["TcpVegasFlow"]


class TcpVegasFlow(TcpFlow):
    """A TCP Vegas flow (Brakmo-Peterson parameters by default).

    Args:
        alpha: Lower backlog target (packets).
        beta: Upper backlog target (packets).
        gamma: Slow-start exit threshold (packets).
        (remaining args as in :class:`~repro.transport.tcp.TcpFlow`)
    """

    MIN_CWND = VegasController.MIN_CWND

    def __init__(self, *args, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0, **kwargs) -> None:
        super().__init__(*args, controller=VegasController(
            alpha=alpha, beta=beta, gamma=gamma), **kwargs)

    # Historical attribute surface, now owned by the controller.

    @property
    def alpha(self) -> float:
        return self.controller.alpha

    @property
    def beta(self) -> float:
        return self.controller.beta

    @property
    def gamma(self) -> float:
        return self.controller.gamma

    @property
    def base_rtt_s(self) -> float:
        """Minimum RTT ever observed (Vegas ``BaseRTT``)."""
        return self.controller.base_rtt_s
