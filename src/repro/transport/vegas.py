"""TCP Vegas: delay-based congestion control.

Paper §4.2 / Fig. 5: Vegas keeps queues nearly empty, but on LEO paths it
misreads path-change-induced RTT increases as congestion, drastically cuts
its window, and its throughput collapses.  That failure mode needs no
special-casing here — it falls out of the standard Vegas rules:

* ``BaseRTT`` is the minimum RTT ever observed on the connection;
* once per RTT, Vegas estimates the backlog it keeps in queues as
  ``diff = cwnd * (RTT - BaseRTT) / RTT`` (in packets);
* it nudges cwnd to keep ``alpha <= diff <= beta``.

When satellite motion lengthens the path, ``RTT - BaseRTT`` grows with no
queueing whatsoever, ``diff`` exceeds ``beta``, and Vegas walks its window
down toward the floor — exactly the collapse of Fig. 5(b)/(c).

Loss handling (fast retransmit / RTO) is inherited from NewReno, matching
how Vegas implementations layer over a Reno base.
"""

from __future__ import annotations

import math
from typing import Optional

from ..obs.trace import FLOW_STATE
from .tcp import TcpNewRenoFlow

__all__ = ["TcpVegasFlow"]


class TcpVegasFlow(TcpNewRenoFlow):
    """A TCP Vegas flow (Brakmo-Peterson parameters by default).

    Args:
        alpha: Lower backlog target (packets).
        beta: Upper backlog target (packets).
        gamma: Slow-start exit threshold (packets).
        (remaining args as in :class:`TcpNewRenoFlow`)
    """

    MIN_CWND = 2.0

    def __init__(self, *args, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= alpha <= beta:
            raise ValueError(f"need 0 <= alpha <= beta, got {alpha}, {beta}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.base_rtt_s = math.inf
        self._window_min_rtt_s = math.inf
        self._next_adjust_s: Optional[float] = None
        self._in_vegas_slow_start = True
        self._grow_this_rtt = True  # Vegas doubles every *other* RTT

    def _on_rtt_sample(self, rtt_s: float) -> None:
        assert self.sim is not None
        self.base_rtt_s = min(self.base_rtt_s, rtt_s)
        self._window_min_rtt_s = min(self._window_min_rtt_s, rtt_s)
        now = self.sim.now
        if self._next_adjust_s is None:
            self._next_adjust_s = now + rtt_s
            return
        if now >= self._next_adjust_s:
            self._per_rtt_adjust(self._window_min_rtt_s)
            self._window_min_rtt_s = math.inf
            self._next_adjust_s = now + rtt_s

    def _per_rtt_adjust(self, rtt_s: float) -> None:
        if not math.isfinite(rtt_s) or rtt_s <= 0.0:
            return
        # Estimated packets this flow keeps queued in the network.
        diff = self.cwnd * (rtt_s - self.base_rtt_s) / rtt_s
        tracer = self._tracer
        if tracer.enabled:
            assert self.sim is not None
            # The backlog estimate is the signal Vegas acts on — the
            # quantity that misreads LEO path lengthening as congestion.
            tracer.emit(self.sim.now, FLOW_STATE, flow=self.flow_id,
                        value=diff, reason="vegas_backlog")
        if self._in_vegas_slow_start:
            if diff > self.gamma:
                self._in_vegas_slow_start = False
                self.ssthresh = min(self.ssthresh, self.cwnd)
                if tracer.enabled:
                    assert self.sim is not None
                    tracer.emit(self.sim.now, FLOW_STATE, flow=self.flow_id,
                                value=self.cwnd, reason="vegas_exit_ss")
            else:
                self._grow_this_rtt = not self._grow_this_rtt
            return
        if diff < self.alpha:
            self.cwnd += 1.0
        elif diff > self.beta:
            self.cwnd = max(self.cwnd - 1.0, self.MIN_CWND)

    def _increase_on_ack(self, newly_acked: int) -> None:
        if self._in_vegas_slow_start:
            if self._grow_this_rtt:
                self.cwnd += newly_acked
            return
        # Congestion avoidance growth is handled per RTT in
        # _per_rtt_adjust; per-ACK growth stays flat.

    def _enter_fast_recovery(self) -> None:
        super()._enter_fast_recovery()
        self._in_vegas_slow_start = False
