"""UDP: constant-rate paced datagram flows.

Paper §3.4: "each GS-pair sends each other constant-rate, paced UDP
traffic at the line rate, and goodput is calculated as the total rate of
network-wide payload arrivals."
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..obs.trace import FLOW_RTT
from ..simulation.packet import DEFAULT_MTU_BYTES, Packet
from ..simulation.simulator import PacketSimulator
from .base import Application

__all__ = ["UdpFlow"]


class UdpFlow(Application):
    """A unidirectional paced UDP flow between two ground stations.

    Args:
        src_gid: Sender.
        dst_gid: Receiver.
        rate_bps: Send rate, counted over wire bytes; the inter-packet gap
            is ``size * 8 / rate`` (perfect pacing).
        packet_bytes: Wire size of each datagram.
        start_s: First transmission time.
        stop_s: No datagrams are sent at or after this time.
        bin_s: Width of the receiver's goodput bins.

    Attributes:
        bytes_received: Payload bytes delivered so far.
        packets_sent / packets_received: Counters.
    """

    def __init__(self, src_gid: int, dst_gid: int, rate_bps: float,
                 packet_bytes: int = DEFAULT_MTU_BYTES,
                 start_s: float = 0.0, stop_s: float = math.inf,
                 bin_s: float = 0.1) -> None:
        super().__init__()
        if rate_bps <= 0.0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if src_gid == dst_gid:
            raise ValueError("source and destination must differ")
        self.src_gid = src_gid
        self.dst_gid = dst_gid
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.start_s = start_s
        self.stop_s = stop_s
        self.bin_s = bin_s
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self._bins: List[float] = []
        self._src_node = -1
        self._dst_node = -1
        self._interval_s = packet_bytes * 8.0 / rate_bps

    def _install(self, sim: PacketSimulator) -> None:
        self._src_node = sim.gs_node_id(self.src_gid)
        self._dst_node = sim.gs_node_id(self.dst_gid)
        sim.register_handler(self._dst_node, self.flow_id, self._on_receive)
        sim.scheduler.schedule_at(self.start_s, self._send_next)

    def _send_next(self) -> None:
        assert self.sim is not None
        now = self.sim.now
        if now >= self.stop_s:
            return
        packet = Packet(self.flow_id, self._src_node, self._dst_node,
                        size_bytes=self.packet_bytes, kind="data",
                        seq=self.packets_sent, sent_at_s=now)
        self.packets_sent += 1
        self.sim.send(packet)
        self.sim.scheduler.schedule(self._interval_s, self._send_next)

    def _on_receive(self, packet: Packet) -> None:
        assert self.sim is not None
        self.packets_received += 1
        self.bytes_received += packet.payload_bytes
        tracer = self._tracer
        if tracer.enabled and packet.sent_at_s >= 0.0:
            # One-way delay: UDP's only latency signal (reason marks it
            # as such, distinguishing it from round-trip samples).
            tracer.emit(self.sim.now, FLOW_RTT, flow=self.flow_id,
                        seq=packet.seq, value=self.sim.now - packet.sent_at_s,
                        reason="owd")
        bin_index = int(self.sim.now / self.bin_s)
        while len(self._bins) <= bin_index:
            self._bins.append(0.0)
        self._bins[bin_index] += packet.payload_bytes

    # ------------------------------------------------------------------

    def goodput_bps(self, duration_s: float) -> float:
        """Average payload goodput over ``duration_s`` (bits/second)."""
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        return self.bytes_received * 8.0 / duration_s

    def goodput_series_bps(self) -> np.ndarray:
        """(B,) payload goodput per ``bin_s`` bin (bits/second)."""
        return np.asarray(self._bins) * 8.0 / self.bin_s

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent datagrams not (yet) delivered."""
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent
