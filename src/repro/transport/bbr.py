"""TCP BBR (simplified v1): model-based congestion control.

Paper §4.2: "once a mature implementation of BBR is available, evaluating
its behavior on LEO networks would be of high interest".  This module
provides that evaluation vehicle — a simplified BBR v1:

* a windowed-max **bottleneck bandwidth** filter over delivery-rate
  samples;
* a windowed-min **RTT** filter (10 s window) — crucially, *old samples
  expire*, so a path-change RTT increase is adopted as the new base
  within one window instead of being misread as congestion forever
  (Vegas' LEO failure mode, Fig. 5);
* **paced** transmission at ``gain x BtlBw`` with the STARTUP / DRAIN /
  PROBE_BW gain machinery, and an in-flight cap of ``2 x BDP``;
* loss is repaired through the flow's SACK machinery but does not
  collapse the sending rate (BBR v1 semantics) — so reordering-induced
  spurious "losses" at path changes cost retransmissions, not throughput.

Simplifications vs full BBR: no PROBE_RTT state (the 0.75-gain phase of
PROBE_BW drains the queue enough to refresh min-RTT in this setting), and
the delivery rate is estimated from cumulative-ACK progress per smoothed
RTT rather than per-packet delivered counters.

The state machine and filters live in
:class:`repro.cc.classic.BbrController`; this class is the historical
flow-class spelling: :class:`~repro.transport.tcp.TcpFlow` pinned to a
``BbrController``, with the model internals re-exposed for inspection.
"""

from __future__ import annotations

from typing import Deque, Tuple

from ..cc.classic import (BW_WINDOW_ROUNDS, DRAIN_GAIN, MIN_RTT_WINDOW_S,
                          PROBE_BW_GAINS, STARTUP_GAIN, BbrController)
from .tcp import TcpFlow

__all__ = ["TcpBbrFlow"]


class TcpBbrFlow(TcpFlow):
    """A (simplified) BBR flow between two ground stations.

    Accepts the same arguments as :class:`~repro.transport.tcp.TcpFlow`.
    ``cwnd`` is maintained at BBR's in-flight cap (``2 x BtlBw x RTprop``
    in packets); sending is paced rather than window-burst.
    """

    MIN_CWND = BbrController.MIN_CWND

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, controller=BbrController(), **kwargs)

    # Historical inspection surface, now owned by the controller.

    @property
    def btl_bw_bps(self) -> float:
        """Current bottleneck-bandwidth estimate (windowed max)."""
        return self.controller.btl_bw_bps

    @property
    def rt_prop_s(self) -> float:
        """Current round-trip propagation estimate (windowed min)."""
        return self.controller.rt_prop_s

    @property
    def _mode(self) -> str:
        return self.controller._mode

    @property
    def _pacing_rate_bps(self) -> float:
        return self.controller._pacing_rate_bps

    @property
    def _bw_filter(self) -> Deque[Tuple[float, float]]:
        return self.controller._bw_filter

    @property
    def _rtt_filter(self) -> Deque[Tuple[float, float]]:
        return self.controller._rtt_filter
