"""TCP BBR (simplified v1): model-based congestion control.

Paper §4.2: "once a mature implementation of BBR is available, evaluating
its behavior on LEO networks would be of high interest".  This module
provides that evaluation vehicle — a simplified BBR v1:

* a windowed-max **bottleneck bandwidth** filter over delivery-rate
  samples;
* a windowed-min **RTT** filter (10 s window) — crucially, *old samples
  expire*, so a path-change RTT increase is adopted as the new base
  within one window instead of being misread as congestion forever
  (Vegas' LEO failure mode, Fig. 5);
* **paced** transmission at ``gain x BtlBw`` with the STARTUP / DRAIN /
  PROBE_BW gain machinery, and an in-flight cap of ``2 x BDP``;
* loss is repaired through the base class's SACK machinery but does not
  collapse the sending rate (BBR v1 semantics) — so reordering-induced
  spurious "losses" at path changes cost retransmissions, not throughput.

Simplifications vs full BBR: no PROBE_RTT state (the 0.75-gain phase of
PROBE_BW drains the queue enough to refresh min-RTT in this setting), and
the delivery rate is estimated from cumulative-ACK progress per smoothed
RTT rather than per-packet delivered counters.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from ..obs.trace import FLOW_STATE
from ..simulation.simulator import PacketSimulator
from .tcp import TcpNewRenoFlow

__all__ = ["TcpBbrFlow"]

#: STARTUP/DRAIN pacing gains (2/ln2 and its inverse).
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN

#: PROBE_BW gain cycle.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: Windows for the two filters.
BW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW_S = 10.0


class TcpBbrFlow(TcpNewRenoFlow):
    """A (simplified) BBR flow between two ground stations.

    Accepts the same arguments as :class:`TcpNewRenoFlow`.  The inherited
    ``cwnd`` is maintained at BBR's in-flight cap (``2 x BtlBw x RTprop``
    in packets); sending is paced rather than window-burst.
    """

    MIN_CWND = 4.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mode = "startup"
        self._pacing_rate_bps = 10.0 * self.packet_bytes * 8.0  # bootstrap
        self._bw_filter: Deque[Tuple[float, float]] = deque()
        self._rtt_filter: Deque[Tuple[float, float]] = deque()
        self._cycle_index = 0
        self._cycle_started_s = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._delivered_at_round_start = 0
        self._round_start_s = 0.0
        self._pacer_armed = False
        self._next_send_s = 0.0

    # ------------------------------------------------------------------
    # Filters and model
    # ------------------------------------------------------------------

    @property
    def btl_bw_bps(self) -> float:
        """Current bottleneck-bandwidth estimate (windowed max)."""
        if not self._bw_filter:
            return self._pacing_rate_bps
        return max(bw for _, bw in self._bw_filter)

    @property
    def rt_prop_s(self) -> float:
        """Current round-trip propagation estimate (windowed min)."""
        if not self._rtt_filter:
            return self.srtt if self.srtt is not None else 0.1
        return min(rtt for _, rtt in self._rtt_filter)

    def _bdp_packets(self) -> float:
        return max(1.0, self.btl_bw_bps * self.rt_prop_s
                   / (self.packet_bytes * 8.0))

    def _on_rtt_sample(self, rtt_s: float) -> None:
        assert self.sim is not None
        now = self.sim.now
        self._rtt_filter.append((now, rtt_s))
        while self._rtt_filter and \
                self._rtt_filter[0][0] < now - MIN_RTT_WINDOW_S:
            self._rtt_filter.popleft()
        # One delivery-rate sample per round trip.
        round_duration = now - self._round_start_s
        if round_duration >= (self.srtt or rtt_s):
            delivered_packets = self.snd_una - self._delivered_at_round_start
            if delivered_packets > 0 and round_duration > 0:
                bw = (delivered_packets * self.packet_bytes * 8.0
                      / round_duration)
                self._bw_filter.append((now, bw))
                window = BW_WINDOW_ROUNDS * max(self.srtt or rtt_s, 1e-3)
                while self._bw_filter and \
                        self._bw_filter[0][0] < now - window:
                    self._bw_filter.popleft()
                self._advance_state_machine(bw)
            self._delivered_at_round_start = self.snd_una
            self._round_start_s = now
        self._update_model()

    def _advance_state_machine(self, latest_bw_bps: float) -> None:
        assert self.sim is not None
        now = self.sim.now
        if self._mode == "startup":
            if latest_bw_bps > self._full_bw * 1.25:
                self._full_bw = latest_bw_bps
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._set_mode("drain")
        elif self._mode == "drain":
            if self.flight_size <= self._bdp_packets():
                self._set_mode("probe_bw")
                self._cycle_index = 0
                self._cycle_started_s = now
        elif self._mode == "probe_bw":
            if now - self._cycle_started_s >= self.rt_prop_s:
                self._cycle_index = (self._cycle_index + 1) \
                    % len(PROBE_BW_GAINS)
                self._cycle_started_s = now

    def _set_mode(self, mode: str) -> None:
        """Transition the BBR state machine, tracing the change."""
        self._mode = mode
        tracer = self._tracer
        if tracer.enabled:
            assert self.sim is not None
            tracer.emit(self.sim.now, FLOW_STATE, flow=self.flow_id,
                        value=self.btl_bw_bps, reason=f"bbr_{mode}")

    def _pacing_gain(self) -> float:
        if self._mode == "startup":
            return STARTUP_GAIN
        if self._mode == "drain":
            return DRAIN_GAIN
        return PROBE_BW_GAINS[self._cycle_index]

    def _update_model(self) -> None:
        self._pacing_rate_bps = max(
            self._pacing_gain() * self.btl_bw_bps,
            2.0 * self.packet_bytes * 8.0 / max(self.rt_prop_s, 1e-3))
        # In-flight cap: 2 x BDP (cwnd_gain = 2).
        self.cwnd = max(self.MIN_CWND, 2.0 * self._bdp_packets())
        self.ssthresh = self.cwnd  # keep the base's bookkeeping harmless

    # ------------------------------------------------------------------
    # Rate-based loss response (BBR ignores loss for its rate model)
    # ------------------------------------------------------------------

    def _increase_on_ack(self, newly_acked: int) -> None:
        pass  # the model, not ACK counting, sets cwnd

    def _enter_fast_recovery(self) -> None:
        # Keep the scoreboard/retransmission state machine, skip the
        # multiplicative decrease.
        self.fast_retransmits += 1
        self.recover_seq = self.snd_nxt - 1
        self.in_recovery = True

    def _on_ack(self, packet) -> None:
        super()._on_ack(packet)
        # Undo any cwnd mutation the base recovery/exit logic applied.
        self._update_model()

    def _on_rto(self, epoch: int) -> None:
        cwnd_before = self.cwnd
        super()._on_rto(epoch)
        if self.cwnd < cwnd_before:
            self.cwnd = max(self.MIN_CWND, cwnd_before / 2.0)

    # ------------------------------------------------------------------
    # Pacing
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        assert self.sim is not None
        if self.sim.now >= self.stop_s:
            return
        self._arm_pacer()
        self._arm_rto()

    def _arm_pacer(self) -> None:
        if self._pacer_armed:
            return
        assert self.sim is not None
        self._pacer_armed = True
        delay = max(0.0, self._next_send_s - self.sim.now)
        self.sim.scheduler.schedule(delay, self._pacer_fire)

    def _pacer_fire(self) -> None:
        assert self.sim is not None
        self._pacer_armed = False
        now = self.sim.now
        if now >= self.stop_s:
            return
        window = self._usable_window()
        pipe = self._pipe()
        sent = False
        if pipe < window:
            seq = self._next_retransmission()
            if seq is not None:
                self._transmit(seq, retransmit=True)
                sent = True
            elif (self.snd_nxt < self.max_packets
                  and self.snd_nxt - self.snd_una < self.rwnd_packets):
                self._transmit(self.snd_nxt, retransmit=False)
                self.snd_nxt += 1
                sent = True
        if sent:
            interval = self.packet_bytes * 8.0 / self._pacing_rate_bps
            self._next_send_s = now + interval
            self._arm_pacer()
            self._arm_rto()
        # If nothing was sendable, the pacer re-arms on the next ACK via
        # _try_send.
