"""Transport protocols and applications: ping, UDP, TCP NewReno, TCP Vegas."""

from .base import Application, TimeSeriesLog, allocate_flow_id
from .bbr import TcpBbrFlow
from .ping import PingSession
from .tcp import TcpNewRenoFlow
from .udp import UdpFlow
from .vegas import TcpVegasFlow

__all__ = [
    "Application",
    "TimeSeriesLog",
    "allocate_flow_id",
    "PingSession",
    "TcpBbrFlow",
    "TcpNewRenoFlow",
    "UdpFlow",
    "TcpVegasFlow",
]
