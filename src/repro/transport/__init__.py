"""Transport protocols and applications: ping, UDP, and TCP with
pluggable congestion control (NewReno, Vegas, BBR, and anything in the
:mod:`repro.cc` registry via ``TcpFlow(..., controller=name)``)."""

from .base import Application, TimeSeriesLog, allocate_flow_id
from .bbr import TcpBbrFlow
from .ping import PingSession
from .tcp import TcpFlow, TcpNewRenoFlow
from .udp import UdpFlow
from .vegas import TcpVegasFlow

__all__ = [
    "Application",
    "TimeSeriesLog",
    "allocate_flow_id",
    "PingSession",
    "TcpBbrFlow",
    "TcpFlow",
    "TcpNewRenoFlow",
    "UdpFlow",
    "TcpVegasFlow",
]
