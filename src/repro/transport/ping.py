"""Ping: periodic RTT probing between two ground stations.

Paper §4.1: "For each source-destination pair, the source sends the
destination a ping every 1 ms, and logs the response time."  Pings that
have not returned by the end of the measurement are reported with an
invalid RTT (the paper plots them as 0).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..obs.trace import FLOW_RTT
from ..simulation.packet import Packet
from ..simulation.simulator import PacketSimulator
from .base import Application

__all__ = ["PingSession"]

#: Wire size of a ping/pong packet (ICMP echo scale).
PING_PACKET_BYTES = 64


class PingSession(Application):
    """Bidirectional echo session measuring per-probe RTTs.

    Args:
        src_gid: Pinging ground station.
        dst_gid: Echoing ground station.
        interval_s: Probe period (paper uses 1 ms).
        start_s: First probe time.
        stop_s: No probes are sent at or after this time.

    After the simulation, :attr:`send_times_s` and :attr:`rtts_s` hold one
    entry per probe; unanswered probes have ``rtt = nan``.
    """

    def __init__(self, src_gid: int, dst_gid: int, interval_s: float = 0.001,
                 start_s: float = 0.0, stop_s: float = math.inf) -> None:
        super().__init__()
        if interval_s <= 0.0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        if src_gid == dst_gid:
            raise ValueError("source and destination must differ")
        self.src_gid = src_gid
        self.dst_gid = dst_gid
        self.interval_s = interval_s
        self.start_s = start_s
        self.stop_s = stop_s
        self._send_times: List[float] = []
        self._rtts: List[float] = []
        self._next_seq = 0
        self._src_node = -1
        self._dst_node = -1

    # ------------------------------------------------------------------

    def _install(self, sim: PacketSimulator) -> None:
        self._src_node = sim.gs_node_id(self.src_gid)
        self._dst_node = sim.gs_node_id(self.dst_gid)
        sim.register_handler(self._src_node, self.flow_id, self._on_pong)
        sim.register_handler(self._dst_node, self.flow_id, self._on_ping)
        sim.scheduler.schedule_at(self.start_s, self._send_probe)

    def _send_probe(self) -> None:
        assert self.sim is not None
        now = self.sim.now
        if now >= self.stop_s:
            return
        seq = self._next_seq
        self._next_seq += 1
        self._send_times.append(now)
        self._rtts.append(math.nan)
        packet = Packet(self.flow_id, self._src_node, self._dst_node,
                        size_bytes=PING_PACKET_BYTES, kind="ping",
                        seq=seq, sent_at_s=now)
        self.sim.send(packet)
        self.sim.scheduler.schedule(self.interval_s, self._send_probe)

    def _on_ping(self, packet: Packet) -> None:
        assert self.sim is not None
        pong = Packet(self.flow_id, self._dst_node, self._src_node,
                      size_bytes=PING_PACKET_BYTES, kind="pong",
                      seq=packet.seq, ts_echo=packet.sent_at_s)
        self.sim.send(pong)

    def _on_pong(self, packet: Packet) -> None:
        assert self.sim is not None
        rtt = self.sim.now - packet.ts_echo
        self._rtts[packet.seq] = rtt
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self.sim.now, FLOW_RTT, flow=self.flow_id,
                        seq=packet.seq, value=rtt)

    # ------------------------------------------------------------------

    @property
    def send_times_s(self) -> np.ndarray:
        """(P,) probe transmit times."""
        return np.asarray(self._send_times)

    @property
    def rtts_s(self) -> np.ndarray:
        """(P,) measured RTTs; nan where no response arrived (in time)."""
        return np.asarray(self._rtts)

    @property
    def loss_fraction(self) -> float:
        """Fraction of probes without a response."""
        if not self._rtts:
            return 0.0
        rtts = self.rtts_s
        return float(np.isnan(rtts).mean())

    def answered(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, rtts) of answered probes only."""
        times = self.send_times_s
        rtts = self.rtts_s
        mask = ~np.isnan(rtts)
        return times[mask], rtts[mask]
