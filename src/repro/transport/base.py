"""Application plumbing shared by all transports.

An application attaches to ground station endpoints of a
:class:`~repro.simulation.simulator.PacketSimulator` and exchanges packets
under a flow id.  Flow ids are allocated globally so that several
applications can coexist in one simulation (the constellation-wide
experiments of paper §5.4 run one TCP flow per GS pair).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..obs.metrics import TimeSeriesLog
from ..obs.trace import NULL_TRACER, Tracer
from ..simulation.simulator import PacketSimulator

__all__ = ["Application", "allocate_flow_id", "ensure_flow_ids_above",
           "TimeSeriesLog"]

_flow_ids = itertools.count(1)


def allocate_flow_id() -> int:
    """A process-wide unique flow id."""
    return next(_flow_ids)


def ensure_flow_ids_above(min_id: int) -> None:
    """Advance the allocator past ``min_id`` if it is not already.

    Restoring a checkpoint brings applications with already-allocated
    flow ids into a fresh process whose counter restarted at 1; the
    service calls this so workloads attached *after* the restore cannot
    collide with restored flows' handler registrations.
    """
    global _flow_ids
    probe = next(_flow_ids)
    _flow_ids = itertools.count(max(probe, min_id + 1))


class Application:
    """Base class of simulated applications.

    Subclasses implement :meth:`_start` (schedule their first action) and
    register packet handlers during :meth:`install`.

    Attributes:
        sim: The simulator, set by :meth:`install`.
        flow_id: This application's flow id.
        _tracer: The simulator's tracer after installation (the no-op
            ``NULL_TRACER`` before); transports guard flow-level events
            (cwnd, RTT, congestion-control state) behind its ``enabled``.
    """

    def __init__(self, flow_id: Optional[int] = None) -> None:
        self.flow_id = flow_id if flow_id is not None else allocate_flow_id()
        self.sim: Optional[PacketSimulator] = None
        self._tracer: Tracer = NULL_TRACER

    def install(self, sim: PacketSimulator) -> "Application":
        """Attach to a simulator; returns self for chaining."""
        if self.sim is not None:
            raise RuntimeError("application is already installed")
        self.sim = sim
        self._tracer = sim.tracer
        self._install(sim)
        return self

    def _install(self, sim: PacketSimulator) -> None:
        """Register handlers and schedule the start; subclass hook."""
        raise NotImplementedError
