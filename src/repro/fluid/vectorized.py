"""Vectorized max-min fairness over a flat flows-on-links incidence.

The pure-Python progressive-filling oracle
(:func:`repro.fluid.maxmin.max_min_fair_allocation`) walks dicts and sets
per freezing event — O(events x flows) Python work that caps the traffic
subsystem at a few thousand concurrent flows.  This module holds the
million-flow representation:

* :class:`FlowLinkMatrix` stores which links each flow traverses as a CSR
  incidence matrix.  Entries are kept *per traversal* in path order, so a
  loop path crossing a link twice carries an integer multiplicity of 2 —
  by construction the kernel can never allocate more than capacity on a
  repeated link (the bug the set-based allocator had).
* :func:`waterfill` runs progressive filling over flat arrays: per-link
  fill rates (traversal-weighted flow counts) and residual capacities are
  float64 vectors, each freezing event is one ``argmin`` over live links,
  and demand caps are consumed through one pre-sorted order.

The kernel is an exact replica of the oracle, not an approximation: link
columns are numbered in first-appearance order (the oracle's dict
insertion order), ``argmin`` breaks ties toward the first column exactly
like the oracle's strict ``<`` scan, and every floating-point update uses
the same operation sequence.  On identical inputs the two return
bit-identical rates — ``make bench-fluid-scale`` asserts exactly that
before timing anything.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

__all__ = [
    "FlowLinkMatrix",
    "waterfill",
    "max_min_fair_allocation_vectorized",
]


class FlowLinkMatrix:
    """Flows-on-links incidence in CSR form, one entry per traversal.

    Args:
        link_keys: Link key of every column, in column order.
        capacity_bps: (L,) per-link capacities.
        indptr: (F+1,) CSR row pointers into ``link_index``.
        link_index: (nnz,) column id of each traversal, row-major in path
            order.  Repeated ids within a row encode traversal
            multiplicity.
    """

    def __init__(self, link_keys: Sequence[Hashable],
                 capacity_bps: np.ndarray, indptr: np.ndarray,
                 link_index: np.ndarray) -> None:
        self.link_keys: List[Hashable] = list(link_keys)
        self.capacity_bps = np.asarray(capacity_bps, dtype=float)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.link_index = np.asarray(link_index, dtype=np.int64)
        if self.capacity_bps.shape != (len(self.link_keys),):
            raise ValueError("capacity_bps must have one entry per link")
        if (self.capacity_bps < 0.0).any():
            bad = int(np.flatnonzero(self.capacity_bps < 0.0)[0])
            raise ValueError(
                f"negative capacity on link {self.link_keys[bad]!r}")
        if self.indptr.ndim != 1 or self.indptr.size == 0 \
                or self.indptr[0] != 0 \
                or (np.diff(self.indptr) < 0).any() \
                or self.indptr[-1] != self.link_index.size:
            raise ValueError("malformed CSR row pointers")
        if self.link_index.size and (
                (self.link_index < 0).any()
                or (self.link_index >= len(self.link_keys)).any()):
            raise ValueError("link index out of range")

    @property
    def num_flows(self) -> int:
        return self.indptr.size - 1

    @property
    def num_links(self) -> int:
        return len(self.link_keys)

    @property
    def nnz(self) -> int:
        """Total traversal count (repeated links counted per crossing)."""
        return self.link_index.size

    @classmethod
    def from_paths(cls, link_capacity: Dict[Hashable, float],
                   flow_links: Sequence[Sequence[Hashable]]
                   ) -> "FlowLinkMatrix":
        """Build from the oracle's inputs (link-key dict + per-flow paths).

        Columns are numbered in first-appearance order over the flows'
        traversal sequences — exactly the oracle's link dict insertion
        order, which makes the kernel's tie-breaking identical.
        """
        keys: List[Hashable] = []
        index: Dict[Hashable, int] = {}
        cols: List[int] = []
        indptr = [0]
        for flow_index, links in enumerate(flow_links):
            for link in links:
                j = index.get(link)
                if j is None:
                    if link not in link_capacity:
                        raise ValueError(
                            f"flow {flow_index} uses unknown link {link!r}")
                    j = len(keys)
                    index[link] = j
                    keys.append(link)
                cols.append(j)
            indptr.append(len(cols))
        capacities = np.array([float(link_capacity[key]) for key in keys])
        return cls(keys, capacities,
                   np.asarray(indptr, dtype=np.int64),
                   np.asarray(cols, dtype=np.int64))

    def to_csr(self):
        """Canonical ``scipy.sparse`` view with summed integer
        multiplicities (one entry per flow-link pair)."""
        from scipy.sparse import csr_matrix
        matrix = csr_matrix(
            (np.ones(self.nnz, dtype=np.int64), self.link_index.copy(),
             self.indptr.copy()),
            shape=(self.num_flows, self.num_links))
        matrix.sum_duplicates()
        return matrix

    def link_loads(self, rates: np.ndarray,
                   active: Optional[np.ndarray] = None) -> np.ndarray:
        """(L,) per-link consumed bandwidth ``sum(rate * multiplicity)``.

        ``rates`` is aligned with ``active`` when given (else with all
        rows).  Additions happen in traversal order, matching the
        oracle-path accounting bit for bit.
        """
        loads = np.zeros(self.num_links)
        rows = np.arange(self.num_flows) if active is None else active
        cols, _, entry_rows = self._gather(np.asarray(rows, dtype=np.int64))
        np.add.at(loads, cols, np.asarray(rates, dtype=float)[entry_rows])
        return loads

    def _gather(self, rows: np.ndarray):
        """Concatenated traversal entries of ``rows``.

        Returns ``(cols, out_ptr, entry_rows)``: column ids in row-major
        path order, (len(rows)+1,) pointers into them, and each entry's
        local row position.
        """
        counts = self.indptr[rows + 1] - self.indptr[rows]
        out_ptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=out_ptr[1:])
        total = int(out_ptr[-1])
        if total == 0:
            return (np.empty(0, dtype=np.int64), out_ptr,
                    np.empty(0, dtype=np.int64))
        gather = (np.repeat(self.indptr[rows] - out_ptr[:-1], counts)
                  + np.arange(total, dtype=np.int64))
        entry_rows = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
        return self.link_index[gather], out_ptr, entry_rows


def waterfill(matrix: FlowLinkMatrix,
              demands: Optional[Sequence[float]] = None,
              active: Optional[np.ndarray] = None) -> np.ndarray:
    """Batched progressive filling over a :class:`FlowLinkMatrix`.

    Args:
        matrix: The incidence (capacities + traversals).
        demands: Optional per-flow rate caps aligned with the matrix rows
            (all flows, even when ``active`` restricts the solve).
        active: Optional ascending flow indices to allocate; other flows
            take no capacity.  ``None`` solves every row.

    Returns:
        Rates aligned with ``active`` (or with all rows when ``None``) —
        bit-identical to running the pure-Python oracle on the active
        flows' paths.
    """
    total_flows = matrix.num_flows
    if active is None:
        act = np.arange(total_flows, dtype=np.int64)
    else:
        act = np.asarray(active, dtype=np.int64)
    n = act.size
    rates = np.zeros(n)
    if n == 0:
        return rates

    if demands is None:
        dem = np.full(n, np.inf)
    else:
        dem = np.asarray(demands, dtype=float)
        if dem.shape[0] != total_flows:
            raise ValueError("demands length must match flow count")
        if (dem < 0.0).any():
            raise ValueError("demands must be non-negative")
        dem = dem[act]

    # Active traversal entries, compacted to first-appearance column
    # order over the active rows (== the oracle's dict order restricted
    # to these flows).
    cols, out_ptr, _ = matrix._gather(act)
    counts = np.diff(out_ptr)
    if cols.size:
        uniq, first_pos, inverse = np.unique(
            cols, return_index=True, return_inverse=True)
        order = np.argsort(first_pos, kind="stable")
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = np.arange(order.size, dtype=np.int64)
        lcol = rank[inverse.reshape(-1)]
        num_links = order.size
        residual = matrix.capacity_bps[uniq[order]].copy()
    else:
        lcol = cols
        num_links = 0
        residual = np.zeros(0)

    # Per-link fill weight: traversal count of unfrozen flows.
    weight = np.zeros(num_links)
    np.add.at(weight, lcol, 1.0)
    # Per-link flow groups (for freezing a bottleneck's flows).
    grp_order = np.argsort(lcol, kind="stable")
    grp_rows = np.repeat(np.arange(n, dtype=np.int64), counts)[grp_order]
    grp_ptr = np.zeros(num_links + 1, dtype=np.int64)
    if num_links:
        np.cumsum(np.bincount(lcol, minlength=num_links), out=grp_ptr[1:])

    frozen = np.zeros(n, dtype=bool)
    # Flows limited only by demand (no capacity-constrained links).
    nolink = np.flatnonzero(counts == 0)
    if nolink.size:
        finite = np.isfinite(dem[nolink])
        if not finite.all():
            bad = int(nolink[np.flatnonzero(~finite)[0]])
            raise ValueError(
                f"flow {bad} has no links and infinite demand")
        rates[nolink] = dem[nolink]
        frozen[nolink] = True

    demand_order = np.argsort(dem, kind="stable")
    pointer = 0
    unfrozen = int(n - frozen.sum())
    live = np.arange(num_links, dtype=np.int64)
    level = 0.0
    while unfrozen:
        live = live[weight[live] > 0.0]
        if live.size:
            shares = level + residual[live] / weight[live]
            k = int(np.argmin(shares))
            best = float(shares[k])
            bottleneck = int(live[k])
        else:
            best = np.inf
            bottleneck = -1
        while pointer < n and frozen[demand_order[pointer]]:
            pointer += 1
        capped = dem[demand_order[pointer]] if pointer < n else np.inf
        if capped < best:
            best = float(capped)
            bottleneck = -1

        if not np.isfinite(best):
            raise ValueError("some flows are unconstrained (infinite demand "
                             "and no saturating link)")

        increment = best - level
        if live.size:
            residual[live] = np.maximum(
                residual[live] - increment * weight[live], 0.0)

        newly: List[np.ndarray] = []
        if bottleneck >= 0:
            group = grp_rows[grp_ptr[bottleneck]:grp_ptr[bottleneck + 1]]
            group = group[~frozen[group]]
            if group.size:
                group = np.unique(group)
                rates[group] = np.minimum(best, dem[group])
                frozen[group] = True
                unfrozen -= int(group.size)
                newly.append(group)
        while pointer < n:
            flow = demand_order[pointer]
            if frozen[flow]:
                pointer += 1
                continue
            if dem[flow] <= best:
                rates[flow] = dem[flow]
                frozen[flow] = True
                unfrozen -= 1
                newly.append(np.array([flow], dtype=np.int64))
                pointer += 1
            else:
                break
        if newly:
            rows = np.concatenate(newly)
            widths = counts[rows]
            total = int(widths.sum())
            if total:
                prefix = np.zeros(rows.size, dtype=np.int64)
                np.cumsum(widths[:-1], out=prefix[1:])
                gather = (np.repeat(out_ptr[rows] - prefix, widths)
                          + np.arange(total, dtype=np.int64))
                np.subtract.at(weight, lcol[gather], 1.0)
        level = best
    return rates


def max_min_fair_allocation_vectorized(
        link_capacity: Dict[Hashable, float],
        flow_links: Sequence[Sequence[Hashable]],
        demands: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Drop-in vectorized twin of
    :func:`repro.fluid.maxmin.max_min_fair_allocation`.

    Same contract, same validation, bit-identical rates; only the
    representation (flat arrays instead of dicts) differs.
    """
    num_flows = len(flow_links)
    if num_flows == 0:
        return np.zeros(0)
    for link, capacity in link_capacity.items():
        if capacity < 0.0:
            raise ValueError(f"negative capacity on link {link!r}")
    if demands is not None and len(demands) != num_flows:
        raise ValueError("demands length must match flow count")
    matrix = FlowLinkMatrix.from_paths(link_capacity, flow_links)
    return waterfill(matrix, demands=demands)
