"""Fluid AIMD: TCP-like rate dynamics at flow granularity.

The max-min engine (:mod:`repro.fluid.engine`) computes the *equilibrium*
fair shares — by construction it leaves zero unused capacity on every
flow's bottleneck.  But paper Fig. 10 measures precisely the
*disequilibrium*: after satellite motion reshuffles which flows share a
link, real TCP needs many RTTs of additive increase to claim freed
capacity, and overshoots into multiplicative decrease when a link becomes
newly shared.  This module models those dynamics in fluid form:

* each flow holds a rate ``r_f``;
* each device holds a virtual drop-tail backlog: overload builds it up,
  spare capacity drains it, and while it is non-empty the device transmits
  at full capacity (this is why the paper's *static* baseline shows almost
  no unused bandwidth: the 1-BDP queue keeps the bottleneck busy straight
  through TCP's sawtooth);
* flows halve their rate when an on-path backlog overflows (multiplicative
  decrease, at most once per RTT), and otherwise climb at the AIMD slope
  of one MSS per RTT per RTT;
* a flow whose path *changes* also halves: the paper's §4.2 finding is
  that path shortening reorders packets, the duplicate ACKs are read as
  loss, and the window is cut with no drop at all (Fig. 4(c)); a flow that
  reconnects after disconnection restarts from the floor (slow-start
  restart after an RTO burst);
* paths follow the shortest-path schedule, so cross-traffic shifts exactly
  as in the packet model — and freed links stay underused for the many
  seconds additive increase needs to reclaim them (Fig. 10's effect).

Slight per-flow desynchronization of the additive slope avoids the
lockstep halving a perfectly symmetric fluid model would produce.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import spans
from ..obs.metrics import MetricsRegistry
from ..routing.engine import RoutingEngine
from ..topology.dynamic_state import snapshot_times
from ..topology.network import LeoNetwork
from .engine import FluidFlow, FluidResult, path_devices

__all__ = ["AimdFluidSimulation"]


class AimdFluidSimulation:
    """TCP-like AIMD rate evolution over shifting shortest paths.

    Args:
        network: The LEO network.
        flows: Long-running flows (demands cap their rates).
        link_capacity_bps: Uniform device capacity (paper: 10 Mbit/s).
        rtt_estimate_s: Representative RTT used for the AIMD slope and the
            decrease holdoff (paper scenario: ~100 ms).
        mss_bytes: Segment size for the additive-increase slope.
        freeze_topology_at_s: If set, routes are frozen at this time — the
            "static network" baseline (gray line of Fig. 10).
        metrics: Optional registry; when given, the run records the same
            per-snapshot series as :class:`~repro.fluid.engine.FluidSimulation`.
    """

    ENGINE = "aimd"

    def __init__(self, network: LeoNetwork, flows: Sequence[FluidFlow],
                 link_capacity_bps: float = 10_000_000.0,
                 rtt_estimate_s: float = 0.1,
                 mss_bytes: int = 1500,
                 queue_packets: int = 100,
                 freeze_topology_at_s: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not flows:
            raise ValueError("need at least one flow")
        if link_capacity_bps <= 0.0 or rtt_estimate_s <= 0.0:
            raise ValueError("capacity and RTT must be positive")
        if queue_packets < 0:
            raise ValueError("queue size must be non-negative")
        self.network = network
        self.flows = list(flows)
        self.link_capacity_bps = link_capacity_bps
        self.rtt_estimate_s = rtt_estimate_s
        self.mss_bytes = mss_bytes
        self.queue_bits = queue_packets * mss_bytes * 8.0
        self.freeze_topology_at_s = freeze_topology_at_s
        self.metrics = metrics
        self._engine = RoutingEngine(network)
        self._num_sats = network.num_satellites
        from ..simulation.positions import PositionService
        self._positions = PositionService(network, quantum_s=0.1)
        #: Minimum sending rate: one MSS per RTT (nominal).
        self.floor_bps = mss_bytes * 8.0 / rtt_estimate_s
        self._flow_pairs = [(flow.src_gid, flow.dst_gid)
                            for flow in self.flows]

    def _paths_at(self, time_s: float,
                  indices: Optional[Sequence[int]] = None
                  ) -> List[Optional[Tuple[int, ...]]]:
        snapshot = self.network.snapshot(time_s)
        # One batched Dijkstra covers every flow's destination tree, and
        # each distinct (src, dst) pair is extracted only once — gravity
        # workloads put thousands of flows on the same few city pairs.
        pairs = (self._flow_pairs if indices is None
                 else [self._flow_pairs[i] for i in indices])
        unique: Dict[Tuple[int, int], int] = {}
        for pair in pairs:
            unique.setdefault(pair, len(unique))
        node_paths = self._engine.paths_many(snapshot, list(unique))
        unique_paths = [tuple(path) if path is not None else None
                        for path in node_paths]
        paths = [unique_paths[unique[pair]] for pair in pairs]
        if indices is None:
            return paths
        full: List[Optional[Tuple[int, ...]]] = [None] * len(self.flows)
        for i, path in zip(indices, paths):
            full[i] = path
        return full

    def run(self, duration_s: float, step_s: float = 1.0) -> FluidResult:
        """Simulate ``duration_s`` at ``step_s`` granularity.

        Finite flows (``size_bytes`` set) integrate their residual at
        substep granularity: a flow entering at ``start_s`` begins at the
        rate floor (slow-start restart), transfers at its AIMD rate, and
        leaves the offered load once its residual reaches zero — the
        completion time lands on the substep grid (within one RTT).
        """
        wall_start = time.perf_counter()
        times = snapshot_times(duration_s, step_s)
        num_flows = len(self.flows)
        # Start every flow at its fair-share guess: capacity split by a
        # nominal contention of 2 (flows converge within a few steps).
        rates = np.full(num_flows, self.link_capacity_bps / 2.0)
        # Mild desynchronization of the additive slopes (+/-5%): drop-tail
        # queues substantially synchronize co-bottlenecked flows (the
        # classic global-synchronization effect), and that synchronization
        # is part of why utilization dips after loss events.
        slope_jitter = np.array([
            1.0 + 0.1 * ((i * 2654435761 % 1000) / 999.0 - 0.5)
            for i in range(num_flows)
        ])
        last_decrease = np.full(num_flows, -np.inf)

        out_rates = np.zeros((len(times), num_flows))
        all_paths: List[List[Optional[Tuple[int, ...]]]] = []
        all_loads: List[Dict[Hashable, float]] = []

        starts = np.array([flow.start_s for flow in self.flows])
        offered_bits = np.array([
            flow.size_bytes * 8.0 if flow.size_bytes is not None else np.inf
            for flow in self.flows])
        # Invariant per-flow rate ceiling (demand- and capacity-capped),
        # hoisted out of the sub-step loop.
        rate_cap = np.minimum(
            self.link_capacity_bps,
            np.array([flow.demand_bps for flow in self.flows]))
        residual_bits = offered_bits.copy()
        delivered_bits = np.zeros(num_flows)
        fct_s = np.full(num_flows, np.nan)
        dynamic = bool((starts > 0.0).any()
                       or np.isfinite(offered_bits).any())
        # Flows starting at 0 keep the legacy fair-share-guess init; later
        # arrivals enter at the rate floor when they activate.
        active_mask = starts <= 0.0

        frozen_paths: Optional[List[Optional[Tuple[int, ...]]]] = None
        if self.freeze_topology_at_s is not None:
            frozen_paths = self._paths_at(self.freeze_topology_at_s)

        backlog_bits: Dict[Hashable, float] = {}
        capacity = self.link_capacity_bps
        # AIMD and queue dynamics integrate at RTT granularity; paths only
        # change at the (coarser) snapshot step.
        dt = min(step_s, self.rtt_estimate_s)
        substeps = max(1, round(step_s / dt))
        dt = step_s / substeps

        previous_sat_sets: List[Optional[frozenset]] = [None] * num_flows
        flow_rtt = np.full(num_flows, self.rtt_estimate_s)
        faults = getattr(self.network, "fault_view", None)
        profiler = spans.ACTIVE
        run_span = profiler.begin("fluid.run") if profiler.enabled else -1
        for t_index, time_s in enumerate(times):
            step_span = (profiler.begin("fluid.aimd.step")
                         if profiler.enabled else -1)
            step_end = float(time_s) + step_s
            candidates = [i for i in range(num_flows)
                          if residual_bits[i] > 0.0
                          and starts[i] < step_end]
            if frozen_paths is not None:
                in_play = set(candidates)
                paths = [frozen_paths[i] if i in in_play else None
                         for i in range(num_flows)]
            else:
                path_span = (profiler.begin("fluid.paths")
                             if profiler.enabled else -1)
                paths = self._paths_at(float(time_s), candidates)
                if path_span != -1:
                    profiler.end(path_span)
            device_cache: Dict[Tuple[int, ...], Sequence[Hashable]] = {}
            devices: List[Optional[Sequence[Hashable]]] = []
            for path in paths:
                if path is None:
                    devices.append(None)
                    continue
                devs = device_cache.get(path)
                if devs is None:
                    devs = path_devices(path, self._num_sats)
                    device_cache[path] = devs
                devices.append(devs)
            # Per-device effective capacities under the fault schedule
            # (snapshot granularity): cut/outaged devices serve nothing —
            # their backlogs overflow and on-path flows halve — lossy
            # devices serve at the expected survival rate.
            dev_caps: Dict[Hashable, float] = {}
            if faults is not None:
                known = set(backlog_bits)
                for devs in devices:
                    if devs is not None:
                        known.update(devs)
                for dev in known:
                    factor = faults.capacity_factor(
                        dev, self._num_sats, float(time_s))
                    if factor < 1.0:
                        dev_caps[dev] = capacity * factor
            # Per-flow RTT from the current path geometry (propagation plus
            # a half-full bottleneck queue) drives each flow's AIMD slope:
            # long paths reclaim bandwidth slowly, exactly the paper's
            # "transport is often unable to use the available bandwidth".
            if self._positions is not None:
                rtt_cache: Dict[Tuple[int, ...], float] = {}
                for i, path in enumerate(paths):
                    if path is None:
                        continue
                    cached_rtt = rtt_cache.get(path)
                    if cached_rtt is None:
                        distance = 0.0
                        for a, b in zip(path, path[1:]):
                            distance += self._positions.distance_m(
                                a, b, float(time_s))
                        propagation_rtt = 2.0 * distance / 299_792_458.0
                        queueing = 0.5 * self.queue_bits / capacity
                        cached_rtt = max(propagation_rtt + queueing, 1e-3)
                        rtt_cache[path] = cached_rtt
                    flow_rtt[i] = cached_rtt
            # Reordering-induced decreases on path changes (paper §4.2).
            sat_set_cache: Dict[Tuple[int, ...], frozenset] = {}
            for i, path in enumerate(paths):
                if path is None:
                    sat_set = None
                else:
                    sat_set = sat_set_cache.get(path)
                    if sat_set is None:
                        sat_set = frozenset(
                            n for n in path if n < self._num_sats)
                        sat_set_cache[path] = sat_set
                previous = previous_sat_sets[i]
                if (path is not None and previous is not None
                        and sat_set != previous):
                    rates[i] = max(rates[i] / 2.0, self.floor_bps)
                    last_decrease[i] = float(time_s)
                previous_sat_sets[i] = sat_set
            # Flat per-step device incidence: one entry per (flow, device)
            # traversal, devices compacted to integer columns — the same
            # layout the max-min engine solves over.  Every sub-step below
            # is array arithmetic over these entries; the backlog dict is
            # scattered into an array here and gathered back after the
            # last sub-step.
            ent_flow_list: List[int] = []
            ent_dev_list: List[Hashable] = []
            for i, devs in enumerate(devices):
                if devs is None:
                    continue
                ent_flow_list.extend([i] * len(devs))
                ent_dev_list.extend(devs)
            dev_col: Dict[Hashable, int] = {}
            for dev in ent_dev_list:
                dev_col.setdefault(dev, len(dev_col))
            for dev in backlog_bits:
                dev_col.setdefault(dev, len(dev_col))
            dev_keys = list(dev_col)
            num_devs = len(dev_keys)
            ent_flow = np.fromiter(ent_flow_list, dtype=np.int64,
                                   count=len(ent_flow_list))
            ent_col = np.fromiter((dev_col[dev] for dev in ent_dev_list),
                                  dtype=np.int64, count=len(ent_dev_list))
            dev_cap_dt = np.full(num_devs, capacity * dt)
            for dev, cap_bps in dev_caps.items():
                col = dev_col.get(dev)
                if col is not None:
                    dev_cap_dt[col] = cap_bps * dt
            backlog = np.zeros(num_devs)
            for dev, bits in backlog_bits.items():
                backlog[dev_col[dev]] = bits
            served_bits_arr = np.zeros(num_devs)
            touched = np.zeros(num_devs, dtype=bool)
            no_dev = np.fromiter((devs is None for devs in devices),
                                 dtype=bool, count=num_flows)
            has_dev = ~no_dev
            # One MSS per RTT per RTT, at each flow's RTT (hoisted:
            # flow_rtt only changes at snapshot granularity).
            increase_dt = (self.mss_bytes * 8.0 / flow_rtt ** 2
                           * slope_jitter * dt)
            cand_arr = np.asarray(candidates, dtype=np.int64)
            finite_res = np.isfinite(residual_bits)
            sub_span = (profiler.begin("fluid.aimd.substeps")
                        if profiler.enabled else -1)
            for sub in range(substeps):
                sub_time = float(time_s) + sub * dt
                if dynamic:
                    # Activate flows whose start time has arrived; they
                    # enter at the floor (slow-start restart semantics).
                    newly = cand_arr[~active_mask[cand_arr]
                                     & (starts[cand_arr] <= sub_time)]
                    active_mask[newly] = True
                    rates[newly] = self.floor_bps
                # Offered load per device from current rates.
                ent_active = active_mask[ent_flow]
                act_cols = ent_col[ent_active]
                loads = np.zeros(num_devs)
                np.add.at(loads, act_cols, rates[ent_flow[ent_active]])
                loaded = np.zeros(num_devs, dtype=bool)
                loaded[act_cols] = True
                touched |= loaded | (backlog > 0.0)
                # Virtual drop-tail queues: overload builds backlog, spare
                # capacity drains it; hitting the cap signals drops.
                # Devices no flow uses anymore (zero load) still drain.
                arriving = backlog + loads * dt
                served = np.minimum(dev_cap_dt, arriving)
                leftover = arriving - served
                overflow = loaded & (leftover > self.queue_bits)
                backlog = np.minimum(leftover, self.queue_bits)
                served_bits_arr += served
                if dynamic:
                    # Residual-size integration: a finite flow transfers
                    # at its sending rate and completes (leaving the
                    # offered load) once its residual is gone.
                    act = cand_arr[active_mask[cand_arr]
                                   & has_dev[cand_arr]]
                    infinite = act[~finite_res[act]]
                    delivered_bits[infinite] += rates[infinite] * dt
                    finite = act[finite_res[act]]
                    if finite.size:
                        served_f = np.minimum(rates[finite] * dt,
                                              residual_bits[finite])
                        delivered_bits[finite] += served_f
                        residual_bits[finite] -= served_f
                        done_local = residual_bits[finite] <= 1e-3
                        done = finite[done_local]
                        if done.size:
                            residual_bits[done] = 0.0
                            done_rates = rates[done]
                            positive = done_rates > 0.0
                            safe = np.where(positive, done_rates, 1.0)
                            end_time = np.where(
                                positive,
                                sub_time + served_f[done_local] / safe,
                                sub_time + dt)
                            fct_s[done] = end_time - starts[done]
                            active_mask[done] = False
                # AIMD reaction.
                rates[no_dev] = self.floor_bps  # restart on reconnection
                react = active_mask & has_dev
                drop_hits = np.zeros(num_flows)
                np.maximum.at(drop_hits, ent_flow,
                              overflow[ent_col].astype(float))
                decrease = (react & (drop_hits > 0.0)
                            & (sub_time - last_decrease >= flow_rtt))
                rates[decrease] = np.maximum(rates[decrease] / 2.0,
                                             self.floor_bps)
                last_decrease[decrease] = sub_time
                grow = react & ~decrease
                rates[grow] += increase_dt[grow]
                rates[react] = np.minimum(rates[react], rate_cap[react])
            if sub_span != -1:
                profiler.end(sub_span)
            backlog_bits = {dev_keys[j]: float(backlog[j])
                            for j in np.flatnonzero(backlog > 0.0)}
            # Utilization over the step is what a 1 s monitor would report.
            utilization = {dev_keys[j]: float(served_bits_arr[j]) / step_s
                           for j in np.flatnonzero(touched)}
            recorded = rates.copy()
            recorded[no_dev | ~active_mask] = 0.0
            out_rates[t_index] = recorded
            all_paths.append(list(paths))
            all_loads.append(utilization)
            registry = self.metrics
            if registry is not None:
                connected = int((recorded > 0.0).sum())
                registry.series("fluid.connected_flows").append(
                    float(time_s), connected)
                registry.series("fluid.mean_rate_bps").append(
                    float(time_s),
                    float(recorded.mean()) if recorded.size else 0.0)
                peak = max(utilization.values()) if utilization else 0.0
                registry.series("fluid.peak_utilization").append(
                    float(time_s), peak / capacity)
                if dynamic:
                    registry.series("traffic.active_flows").append(
                        float(time_s), float(int(active_mask.sum())))
            if step_span != -1:
                profiler.end(step_span)
        if run_span != -1:
            profiler.end(run_span)

        wall = time.perf_counter() - wall_start
        return FluidResult(times_s=times, flow_rates_bps=out_rates,
                           flow_paths=all_paths,
                           device_load_bps=all_loads,
                           num_satellites=self._num_sats,
                           link_capacity_bps=self.link_capacity_bps,
                           engine=self.ENGINE,
                           perf={"wall_time_s": wall,
                                 "snapshots_computed": float(len(times))},
                           duration_s=float(duration_s),
                           flow_offered_bits=(offered_bits if dynamic
                                              else None),
                           flow_delivered_bits=(delivered_bits if dynamic
                                                else None),
                           flow_fct_s=fct_s if dynamic else None)
