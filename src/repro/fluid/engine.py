"""Fluid (flow-level) simulation of constellation-wide traffic.

The paper's §5.4 experiment — a fixed permutation of long-running TCP flows
between 100 cities over Kuiper — is packet-simulated in ns-3.  A faithful
pure-Python per-packet reproduction at that scale is computationally out of
reach, so this engine substitutes the standard fluid abstraction:

* at each forwarding-state snapshot, every flow follows its shortest path;
* flow rates are the max-min fair allocation over the same *device*
  capacities the packet simulator models (directional ISL devices, one
  shared GSL device per node);
* per-device utilization and per-pair unused bandwidth follow directly.

The substitution preserves what the experiment measures: how shortest-path
churn reshuffles which flows share which bottlenecks, yielding large
fluctuations in a path's unused bandwidth even under a static traffic
matrix (Fig. 10) and moving hotspots around the constellation
(Figs. 14/15).  The ablation bench ``test_ablation_fluid_vs_packet``
checks the two engines agree on small scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import spans
from ..obs.metrics import MetricsRegistry
from ..obs.report import RunReport, fluid_run_report
from ..routing.engine import RoutingEngine
from ..topology.dynamic_state import snapshot_times
from ..topology.network import LeoNetwork, TopologySnapshot
from .maxmin import max_min_fair_allocation
from .vectorized import FlowLinkMatrix, waterfill

__all__ = ["FluidFlow", "FluidResult", "FluidRunState", "FluidSimulation",
           "path_devices", "flatten_path_devices", "decode_device",
           "flow_link_matrix_from_paths"]

#: Demand cap for "elastic" flows: far above any single device, so the
#: allocation is capacity-limited, but finite so the solver terminates.
_ELASTIC_DEMAND_CAPACITIES = 100.0

#: Event-time tolerance of the intra-step churn loop (seconds) — also the
#: minimum sub-interval width, so the loop always advances.
_TIME_EPS_S = 1e-9
#: Residual below this many bits counts as a completed transfer (float
#: round-off from ``rate · (residual / rate)`` is far below a byte).
_RESIDUAL_EPS_BITS = 1e-3


@dataclass(frozen=True)
class FluidFlow:
    """One flow of the fluid model.

    Attributes:
        src_gid: Source ground station.
        dst_gid: Destination ground station.
        demand_bps: Rate cap (``inf`` models a greedy long-running TCP).
        size_bytes: Transfer size; ``None`` (default) is a long-running
            flow that never completes, a finite size makes the flow leave
            the allocation once its residual reaches zero.
        start_s: Arrival time; the flow takes no capacity before it.
    """

    src_gid: int
    dst_gid: int
    demand_bps: float = np.inf
    size_bytes: Optional[float] = None
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.src_gid == self.dst_gid:
            raise ValueError("flow endpoints must differ")
        # ``not (x > 0)`` also rejects NaN, which ``x <= 0`` lets through.
        if not (self.demand_bps > 0.0):
            raise ValueError(
                f"demand must be positive, got {self.demand_bps}")
        if self.size_bytes is not None and not (
                0.0 < self.size_bytes < float("inf")):
            raise ValueError(
                f"flow size must be positive and finite, "
                f"got {self.size_bytes}")
        if not (0.0 <= self.start_s < float("inf")):
            raise ValueError(
                f"start time must be finite and >= 0, got {self.start_s}")

    @property
    def is_finite(self) -> bool:
        """Whether the flow completes (has a finite size)."""
        return self.size_bytes is not None


def path_devices(path: Sequence[int], num_satellites: int
                 ) -> List[Hashable]:
    """The transmitting devices a path occupies, in DES-compatible keys.

    Satellite-to-satellite hops use the directed ISL device ``(a, b)``;
    any hop leaving node ``a`` toward a ground station — or leaving a
    ground station — uses that node's shared GSL device ``("gsl", a)``.
    """
    devices: List[Hashable] = []
    for a, b in zip(path, path[1:]):
        if a < num_satellites and b < num_satellites:
            devices.append((a, b))
        else:
            devices.append(("gsl", a))
    return devices


def flatten_path_devices(paths: Sequence[Optional[Sequence[int]]],
                         num_satellites: int, num_nodes: int
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`path_devices` over many paths at once.

    Encodes every transmitting device as one int64 code — ``a*N + b``
    for the directed ISL ``(a, b)``, ``N*N + a`` for the shared GSL
    device of node ``a`` (``N = num_nodes``) — and returns
    ``(codes, hop_counts)``: the concatenated per-hop device codes in
    path order, plus each path's hop count (0 for ``None`` paths).
    Decode with :func:`decode_device`.
    """
    num_paths = len(paths)
    lens = np.fromiter((len(p) if p is not None else 0 for p in paths),
                       dtype=np.int64, count=num_paths)
    total = int(lens.sum())
    hop_counts = np.maximum(lens - 1, 0)
    if total == 0:
        return np.empty(0, dtype=np.int64), hop_counts
    flat = np.fromiter(
        chain.from_iterable(p for p in paths if p is not None),
        dtype=np.int64, count=total)
    ends = np.cumsum(lens[lens > 0])
    keep_a = np.ones(total, dtype=bool)
    keep_a[ends - 1] = False          # drop each path's last node
    keep_b = np.ones(total, dtype=bool)
    keep_b[ends[:-1]] = False         # drop each path's first node
    keep_b[0] = False
    src = flat[keep_a]
    dst = flat[keep_b]
    isl = (src < num_satellites) & (dst < num_satellites)
    codes = np.where(isl, src * num_nodes + dst,
                     num_nodes * num_nodes + src)
    return codes, hop_counts


def decode_device(code: int, num_nodes: int) -> Hashable:
    """The :func:`path_devices`-style key of an encoded device."""
    code = int(code)
    if code < num_nodes * num_nodes:
        return (code // num_nodes, code % num_nodes)
    return ("gsl", code - num_nodes * num_nodes)


def flow_link_matrix_from_paths(
        paths: Sequence[Optional[Sequence[int]]], num_satellites: int,
        num_nodes: int, capacity_of) -> Tuple["FlowLinkMatrix", np.ndarray]:
    """Build one snapshot's flows-on-links CSR from node paths.

    Device codes are flattened in path order and columns numbered in
    first-appearance order over the traversal sequences — exactly the
    oracle's link dict insertion order, so :func:`repro.fluid.vectorized.
    waterfill` over the matrix reproduces ``max_min_fair_allocation``
    bit-for-bit.  A ``None`` path becomes an empty row.

    Args:
        paths: Per-flow node paths (``None`` for disconnected flows).
        num_satellites: Node-numbering split point.
        num_nodes: Total node count (satellites + ground stations).
        capacity_of: Callable mapping a device key to its capacity (bps).

    Returns:
        ``(matrix, hop_counts)`` — the incidence matrix and the (F,)
        per-flow device count (0 marks disconnected flows).
    """
    codes, hop_counts = flatten_path_devices(paths, num_satellites,
                                             num_nodes)
    indptr = np.zeros(len(paths) + 1, dtype=np.int64)
    np.cumsum(hop_counts, out=indptr[1:])
    if codes.size:
        uniq, first_pos, inverse = np.unique(
            codes, return_index=True, return_inverse=True)
        order = np.argsort(first_pos, kind="stable")
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = np.arange(order.size, dtype=np.int64)
        link_index = rank[inverse.reshape(-1)]
        step_codes = uniq[order]
    else:
        link_index = codes
        step_codes = codes
    keys = [decode_device(code, num_nodes) for code in step_codes]
    capacities = np.fromiter((capacity_of(key) for key in keys),
                             dtype=float, count=len(keys))
    matrix = FlowLinkMatrix(keys, capacities, indptr, link_index)
    return matrix, hop_counts


@dataclass
class FluidResult:
    """Output of a fluid simulation.

    Attributes:
        times_s: (T,) snapshot times.
        flow_rates_bps: (T, F) allocated rate of each flow over time;
            zero while a flow's endpoints are disconnected.
        flow_paths: ``flow_paths[t][f]`` node-id path or None.
        device_load_bps: per snapshot, mapping device-key -> allocated load.
        num_satellites: Node-numbering split point (satellites below it).
        link_capacity_bps: The uniform device capacity of the run.
        engine: Which engine produced the result ("maxmin" or "aimd").
        kernel: Allocation kernel the engine ran ("vectorized",
            "reference", or "" where the engine has only one).
        perf: Wall-clock accounting of the run (wall_time_s,
            snapshots_computed), filled by the engines.
        duration_s: Simulated horizon of the run.
        flow_offered_bits: (F,) per-flow offered volume — ``inf`` for
            long-running flows; ``None`` for fully static workloads.
        flow_delivered_bits: (F,) bits each flow actually transferred
            over the run; ``None`` for fully static workloads.
        flow_fct_s: (F,) flow completion time (completion − start);
            ``nan`` for flows that never completed; ``None`` for fully
            static workloads.
    """

    times_s: np.ndarray
    flow_rates_bps: np.ndarray
    flow_paths: List[List[Optional[Tuple[int, ...]]]]
    device_load_bps: List[Dict[Hashable, float]]
    num_satellites: int
    link_capacity_bps: float
    engine: str = "maxmin"
    kernel: str = ""
    perf: Dict[str, float] = field(default_factory=dict)
    duration_s: float = 0.0
    flow_offered_bits: Optional[np.ndarray] = None
    flow_delivered_bits: Optional[np.ndarray] = None
    flow_fct_s: Optional[np.ndarray] = None

    def fct_values(self) -> np.ndarray:
        """Completed flows' completion times (empty for static runs)."""
        if self.flow_fct_s is None:
            return np.empty(0)
        return self.flow_fct_s[np.isfinite(self.flow_fct_s)]

    def perf_summary(self) -> Dict[str, float]:
        """Flat performance/accounting summary (report-facing) — the
        fluid counterpart of :meth:`SimulationStats.perf_summary`."""
        num_snapshots = len(self.times_s)
        rates = self.flow_rates_bps
        connected = (rates > 0.0).any(axis=0).sum() if rates.size else 0
        summary: Dict[str, float] = {
            "snapshots": float(num_snapshots),
            "flows": float(rates.shape[1]) if rates.ndim == 2 else 0.0,
            "flows_ever_connected": float(connected),
            "mean_rate_bps": float(rates.mean()) if rates.size else 0.0,
            "link_capacity_bps": self.link_capacity_bps,
        }
        if self.device_load_bps:
            peak = max((max(loads.values()) if loads else 0.0)
                       for loads in self.device_load_bps)
            summary["peak_utilization"] = peak / self.link_capacity_bps
        if self.flow_fct_s is not None:
            fct = self.fct_values()
            summary["flows_completed"] = float(len(fct))
            if fct.size:
                summary["fct_mean_s"] = float(fct.mean())
                summary["fct_p50_s"] = float(np.percentile(fct, 50))
                summary["fct_p99_s"] = float(np.percentile(fct, 99))
                summary["fct_max_s"] = float(fct.max())
            if self.flow_offered_bits is not None:
                finite = np.isfinite(self.flow_offered_bits)
                summary["flows_finite"] = float(finite.sum())
                if self.duration_s > 0.0:
                    summary["offered_load_bps"] = float(
                        self.flow_offered_bits[finite].sum()
                    ) / self.duration_s
                    if self.flow_delivered_bits is not None:
                        summary["delivered_load_bps"] = float(
                            self.flow_delivered_bits[finite].sum()
                        ) / self.duration_s
        summary.update(self.perf)
        wall = self.perf.get("wall_time_s", 0.0)
        if wall > 0.0:
            summary["snapshots_per_wall_s"] = num_snapshots / wall
        return summary

    def report(self, registry: Optional[MetricsRegistry] = None
               ) -> RunReport:
        """The unified run report of this fluid run."""
        return fluid_run_report(self, registry=registry)

    def unused_bandwidth_bps(self, flow_index: int) -> np.ndarray:
        """Paper Fig. 10's metric for one flow's path over time.

        The path's link capacity minus the utilization of the most
        congested on-path device at each snapshot; ``nan`` while the flow
        is disconnected.
        """
        series = np.full(len(self.times_s), np.nan)
        for t in range(len(self.times_s)):
            path = self.flow_paths[t][flow_index]
            if path is None:
                continue
            devices = path_devices(path, self.num_satellites)
            loads = self.device_load_bps[t]
            worst = max(loads.get(device, 0.0) for device in devices)
            series[t] = max(0.0, self.link_capacity_bps - worst)
        return series

    def isl_utilization(self, t_index: int) -> Dict[Tuple[int, int], float]:
        """Directed ISL loads at one snapshot, as a fraction of capacity.

        The input of the paper's Fig. 14/15 congestion visualizations.
        """
        loads = self.device_load_bps[t_index]
        return {
            device: load / self.link_capacity_bps
            for device, load in loads.items()
            if isinstance(device, tuple) and device[0] != "gsl"
        }


@dataclass
class FluidRunState:
    """Resumable mid-run state of a :class:`FluidSimulation`.

    Everything the snapshot loop carries between steps, in picklable
    form, so a run can stop at any snapshot boundary, be checkpointed
    by :mod:`repro.service`, and continue in another process with
    bit-identical results.  Snapshot boundaries are the natural cut:
    the sub-event loop (intra-step arrivals/completions) is fully
    contained within one step, so no sub-event cursor survives a
    boundary — the residuals, delivered bits and FCTs *are* the cursor.

    Attributes:
        duration_s: Simulated horizon of the run.
        step_s: Snapshot granularity.
        times: (T,) snapshot times of the whole run.
        next_index: Index into ``times`` of the next unprocessed step;
            ``next_index == len(times)`` means the run is done.
        rates: (T, F) allocated rates (rows >= ``next_index`` unset).
        all_paths / all_loads: Per-processed-snapshot paths and loads.
        starts / offered_bits / residual_bits / delivered_bits / fct_s:
            (F,) per-flow workload cursors.
        demand_caps: (F,) invariant per-flow rate caps.
        dynamic: Whether the workload has arrivals or finite sizes.
        solves: Allocations solved so far.
        frozen_paths: Static-baseline paths (``freeze_topology_at_s``).
        wall_time_s: Wall-clock seconds accumulated across ``advance``
            calls (survives checkpoints; perf-only, excluded from
            parity comparisons).
    """

    duration_s: float
    step_s: float
    times: np.ndarray
    next_index: int
    rates: np.ndarray
    all_paths: List[List[Optional[Tuple[int, ...]]]]
    all_loads: List[Dict[Hashable, float]]
    starts: np.ndarray
    offered_bits: np.ndarray
    residual_bits: np.ndarray
    delivered_bits: np.ndarray
    fct_s: np.ndarray
    demand_caps: np.ndarray
    dynamic: bool
    solves: int
    frozen_paths: Optional[List[Optional[Tuple[int, ...]]]] = None
    wall_time_s: float = 0.0

    @property
    def done(self) -> bool:
        """Whether every snapshot step has been processed."""
        return self.next_index >= len(self.times)

    @property
    def time_s(self) -> float:
        """Simulated time reached so far (start of the next step)."""
        if self.done:
            return self.duration_s
        return float(self.times[self.next_index])


class FluidSimulation:
    """Max-min fluid traffic over the evolving shortest paths.

    Args:
        network: The LEO network.
        flows: The long-running flows.
        link_capacity_bps: Uniform device capacity (paper: 10 Mbit/s).
        freeze_topology_at_s: If not None, routes and geometry are frozen
            at this time — the "static network" baseline (gray line of
            Fig. 10).
        metrics: Optional registry; when given, the run records the
            per-snapshot series ``fluid.connected_flows``,
            ``fluid.mean_rate_bps`` and ``fluid.peak_utilization``.
        kernel: ``"vectorized"`` (default) solves each allocation over
            the flat :class:`~repro.fluid.vectorized.FlowLinkMatrix`
            incidence; ``"reference"`` keeps the pure-Python
            progressive-filling oracle.  The two produce bit-identical
            allocations (``make bench-fluid-scale`` asserts it); the
            vectorized kernel is the one that scales to 10^5+ concurrent
            flows per snapshot.
    """

    ENGINE = "maxmin"

    def __init__(self, network: LeoNetwork, flows: Sequence[FluidFlow],
                 link_capacity_bps: float = 10_000_000.0,
                 freeze_topology_at_s: Optional[float] = None,
                 capacity_overrides: Optional[
                     Dict[Hashable, float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 kernel: str = "vectorized") -> None:
        if not flows:
            raise ValueError("need at least one flow")
        if link_capacity_bps <= 0.0:
            raise ValueError("capacity must be positive")
        if kernel not in ("vectorized", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; "
                             f"use 'vectorized' or 'reference'")
        self.kernel = kernel
        self.network = network
        self.flows = list(flows)
        self.link_capacity_bps = link_capacity_bps
        self.freeze_topology_at_s = freeze_topology_at_s
        #: Per-device capacity overrides (paper §7's link heterogeneity);
        #: keys follow :func:`path_devices` — ``(a, b)`` for directed
        #: ISLs, ``("gsl", node)`` for GSL devices.
        self.capacity_overrides = dict(capacity_overrides or {})
        for capacity in self.capacity_overrides.values():
            if capacity <= 0.0:
                raise ValueError("override capacities must be positive")
        self.metrics = metrics
        self._engine = RoutingEngine(network)
        self._num_sats = network.num_satellites
        self._flow_pairs = [(flow.src_gid, flow.dst_gid)
                            for flow in self.flows]

    def _paths_at(self, snapshot: TopologySnapshot,
                  indices: Optional[Sequence[int]] = None
                  ) -> List[Optional[Tuple[int, ...]]]:
        # One batched Dijkstra covers every flow's destination tree, and
        # each distinct (src, dst) pair is extracted only once — gravity
        # workloads put thousands of flows on the same few city pairs.
        pairs = (self._flow_pairs if indices is None
                 else [self._flow_pairs[i] for i in indices])
        unique: Dict[Tuple[int, int], int] = {}
        for pair in pairs:
            unique.setdefault(pair, len(unique))
        node_paths = self._engine.paths_many(snapshot, list(unique))
        unique_paths = [tuple(path) if path is not None else None
                        for path in node_paths]
        paths = [unique_paths[unique[pair]] for pair in pairs]
        if indices is None:
            return paths
        full: List[Optional[Tuple[int, ...]]] = [None] * len(self.flows)
        for i, path in zip(indices, paths):
            full[i] = path
        return full

    def run(self, duration_s: float, step_s: float = 1.0) -> FluidResult:
        """Simulate ``duration_s`` at ``step_s`` granularity.

        A static workload (every flow starting at 0, no finite sizes)
        solves one allocation per snapshot, exactly as a long-running
        permutation run always has.  A dynamic workload additionally
        re-solves *within* a step at every flow arrival and predicted
        completion, integrating each finite flow's residual size through
        the sub-intervals so flows complete and leave the allocation;
        the recorded per-snapshot rates/loads are always the allocation
        at the snapshot instant.

        Composed of :meth:`start_run` → :meth:`advance` → :meth:`finish`,
        so an uninterrupted run and a checkpointed-and-resumed one go
        through the exact same code path (the determinism tests in
        ``tests/test_service.py`` assert bit-identical results).
        """
        state = self.start_run(duration_s, step_s)
        self.advance(state)
        return self.finish(state)

    def start_run(self, duration_s: float,
                  step_s: float = 1.0) -> FluidRunState:
        """Initialize a resumable run (no steps processed yet)."""
        times = snapshot_times(duration_s, step_s)
        num_flows = len(self.flows)
        starts = np.array([flow.start_s for flow in self.flows])
        offered_bits = np.array([
            flow.size_bytes * 8.0 if flow.size_bytes is not None else np.inf
            for flow in self.flows])
        dynamic = bool((starts > 0.0).any()
                       or np.isfinite(offered_bits).any())
        # Invariant per-flow rate caps, hoisted out of the sub-event loop
        # (elastic flows capped far above any device capacity).
        demand_caps = np.minimum(
            np.array([flow.demand_bps for flow in self.flows]),
            _ELASTIC_DEMAND_CAPACITIES * self.link_capacity_bps)

        frozen_paths: Optional[List[Optional[Tuple[int, ...]]]] = None
        if self.freeze_topology_at_s is not None:
            frozen_snapshot = self.network.snapshot(self.freeze_topology_at_s)
            frozen_paths = self._paths_at(frozen_snapshot)

        return FluidRunState(
            duration_s=float(duration_s), step_s=float(step_s),
            times=times, next_index=0,
            rates=np.zeros((len(times), num_flows)),
            all_paths=[], all_loads=[],
            starts=starts, offered_bits=offered_bits,
            residual_bits=offered_bits.copy(),
            delivered_bits=np.zeros(num_flows),
            fct_s=np.full(num_flows, np.nan),
            demand_caps=demand_caps, dynamic=dynamic, solves=0,
            frozen_paths=frozen_paths)

    def advance(self, state: FluidRunState,
                max_steps: Optional[int] = None) -> FluidRunState:
        """Process up to ``max_steps`` snapshot steps (all remaining by
        default); returns ``state`` for chaining.

        Each call picks up exactly where the previous one stopped, so
        ``advance(s, k)`` repeated to exhaustion is bit-identical to one
        ``advance(s)`` — and a ``state`` pickled between calls resumes
        identically in another process.
        """
        wall_start = time.perf_counter()
        num_flows = len(self.flows)
        stop = len(state.times)
        if max_steps is not None:
            if max_steps < 0:
                raise ValueError(f"max_steps must be >= 0, got {max_steps}")
            stop = min(stop, state.next_index + max_steps)
        faults = getattr(self.network, "fault_view", None)
        step = (self._step_vectorized if self.kernel == "vectorized"
                else self._step_reference)
        profiler = spans.ACTIVE
        run_span = profiler.begin("fluid.run") if profiler.enabled else -1
        residual_bits = state.residual_bits
        starts = state.starts
        frozen_paths = state.frozen_paths
        for t_index in range(state.next_index, stop):
            time_s = float(state.times[t_index])
            step_end = time_s + state.step_s
            # Flows that could take capacity somewhere in this step:
            # already or soon started, not yet fully transferred.
            candidates = np.flatnonzero((residual_bits > 0.0)
                                        & (starts < step_end))
            if frozen_paths is not None:
                in_play = set(candidates.tolist())
                paths: List[Optional[Tuple[int, ...]]] = [
                    frozen_paths[i] if i in in_play else None
                    for i in range(num_flows)]
            else:
                span = (profiler.begin("fluid.paths")
                        if profiler.enabled else -1)
                snapshot = self.network.snapshot(time_s)
                paths = self._paths_at(snapshot, candidates)
                if span != -1:
                    profiler.end(span)
            state.solves += step(
                t_index, time_s, step_end, paths, candidates,
                starts, state.demand_caps, residual_bits,
                state.delivered_bits, state.fct_s, state.rates,
                state.all_paths, state.all_loads, state.dynamic, faults)
            state.next_index = t_index + 1
        if run_span != -1:
            profiler.end(run_span)
        state.wall_time_s += time.perf_counter() - wall_start
        return state

    def finish(self, state: FluidRunState) -> FluidResult:
        """Package a fully-advanced run state as a :class:`FluidResult`."""
        if not state.done:
            raise RuntimeError(
                f"run has {len(state.times) - state.next_index} steps left; "
                f"advance() it to completion before finish()")
        dynamic = state.dynamic
        perf = {"wall_time_s": state.wall_time_s,
                "snapshots_computed": float(len(state.times))}
        if dynamic:
            perf["allocations_solved"] = float(state.solves)
        return FluidResult(times_s=state.times,
                           flow_rates_bps=state.rates,
                           flow_paths=state.all_paths,
                           device_load_bps=state.all_loads,
                           num_satellites=self._num_sats,
                           link_capacity_bps=self.link_capacity_bps,
                           engine=self.ENGINE,
                           kernel=self.kernel,
                           perf=perf,
                           duration_s=state.duration_s,
                           flow_offered_bits=(state.offered_bits if dynamic
                                              else None),
                           flow_delivered_bits=(state.delivered_bits
                                                if dynamic else None),
                           flow_fct_s=state.fct_s if dynamic else None)

    def _step_reference(self, t_index: int, time_s: float, step_end: float,
                        paths: List[Optional[Tuple[int, ...]]],
                        candidates: np.ndarray, starts: np.ndarray,
                        demand_caps: np.ndarray, residual_bits: np.ndarray,
                        delivered_bits: np.ndarray, fct_s: np.ndarray,
                        rates: np.ndarray, all_paths: list, all_loads: list,
                        dynamic: bool, faults) -> int:
        """One snapshot step through the pure-Python oracle allocator."""
        flow_links: Dict[int, List[Hashable]] = {
            i: path_devices(paths[i], self._num_sats)
            for i in candidates if paths[i] is not None}
        capacities: Dict[Hashable, float] = {}
        for links in flow_links.values():
            for link in links:
                capacity = self.capacity_overrides.get(
                    link, self.link_capacity_bps)
                if faults is not None:
                    # Cut/outaged devices are zero-capacity (flows
                    # over them — frozen-topology mode — get rate 0);
                    # lossy ones shrink to the expected goodput.
                    capacity *= faults.capacity_factor(
                        link, self._num_sats, time_s)
                capacities[link] = capacity

        # Sub-event loop: [time_s, step_end) split at every arrival
        # and predicted completion; one max-min solve per interval.
        profiler = spans.ACTIVE
        loop_span = (profiler.begin("fluid.subevents")
                     if profiler.enabled else -1)
        solves = 0
        tau = time_s
        recorded = False
        while True:
            active = [i for i in candidates
                      if starts[i] <= tau + _TIME_EPS_S
                      and residual_bits[i] > 0.0
                      and i in flow_links]
            links_list = [flow_links[i] for i in active]
            solve_span = (profiler.begin("fluid.maxmin_reference")
                          if profiler.enabled else -1)
            allocated = max_min_fair_allocation(
                capacities, links_list, demands=demand_caps[active])
            if solve_span != -1:
                profiler.end(solve_span)
            solves += 1
            if not recorded:
                loads: Dict[Hashable, float] = {}
                for links, rate in zip(links_list, allocated):
                    for link in links:
                        loads[link] = loads.get(link, 0.0) + rate
                for local_index, i in enumerate(active):
                    rates[t_index, i] = allocated[local_index]
                all_paths.append(list(paths))
                all_loads.append(loads)
                self._record_metrics(
                    time_s, rates[t_index], loads,
                    active_count=len(active) if dynamic else None)
                recorded = True
            next_tau = step_end
            for i in candidates:
                if tau + _TIME_EPS_S < starts[i] < next_tau:
                    next_tau = starts[i]
            for local_index, i in enumerate(active):
                rate = allocated[local_index]
                if rate > 0.0 and np.isfinite(residual_bits[i]):
                    done = tau + max(residual_bits[i] / rate,
                                     _TIME_EPS_S)
                    if done < next_tau:
                        next_tau = done
            dt = next_tau - tau
            if dt > 0.0:
                for local_index, i in enumerate(active):
                    rate = allocated[local_index]
                    if rate <= 0.0:
                        continue
                    served = min(rate * dt, residual_bits[i])
                    delivered_bits[i] += served
                    if np.isfinite(residual_bits[i]):
                        residual_bits[i] -= served
                        if residual_bits[i] <= _RESIDUAL_EPS_BITS:
                            residual_bits[i] = 0.0
                            fct_s[i] = next_tau - starts[i]
            tau = next_tau
            if tau >= step_end - _TIME_EPS_S:
                break
        if loop_span != -1:
            profiler.end(loop_span)
        return solves

    def _step_vectorized(self, t_index: int, time_s: float, step_end: float,
                         paths: List[Optional[Tuple[int, ...]]],
                         candidates: np.ndarray, starts: np.ndarray,
                         demand_caps: np.ndarray, residual_bits: np.ndarray,
                         delivered_bits: np.ndarray, fct_s: np.ndarray,
                         rates: np.ndarray, all_paths: list, all_loads: list,
                         dynamic: bool, faults) -> int:
        """One snapshot step on the flat incidence representation.

        The step's flows-on-links CSR is built once (int-encoded device
        codes in path order, so the column numbering matches the oracle's
        link dict order); every arrival/completion inside the step is a
        row activation over that fixed matrix, not a rebuild.
        """
        def capacity_of(key: Hashable) -> float:
            capacity = self.capacity_overrides.get(
                key, self.link_capacity_bps)
            if faults is not None:
                capacity *= faults.capacity_factor(
                    key, self._num_sats, time_s)
            return capacity

        profiler = spans.ACTIVE
        cand_paths = [paths[i] for i in candidates]
        build_span = (profiler.begin("fluid.matrix_build")
                      if profiler.enabled else -1)
        matrix, hop_counts = flow_link_matrix_from_paths(
            cand_paths, self._num_sats, self.network.num_nodes,
            capacity_of)
        if build_span != -1:
            profiler.end(build_span)
        keys = matrix.link_keys

        starts_c = starts[candidates]
        demands_c = demand_caps[candidates]
        has_path = hop_counts > 0
        loop_span = (profiler.begin("fluid.subevents")
                     if profiler.enabled else -1)
        solves = 0
        tau = time_s
        recorded = False
        while True:
            active = np.flatnonzero((starts_c <= tau + _TIME_EPS_S)
                                    & (residual_bits[candidates] > 0.0)
                                    & has_path)
            solve_span = (profiler.begin("fluid.waterfill")
                          if profiler.enabled else -1)
            allocated = waterfill(matrix, demands=demands_c, active=active)
            if solve_span != -1:
                profiler.end(solve_span)
            solves += 1
            global_active = candidates[active]
            if not recorded:
                cols, _, entry_rows = matrix._gather(active)
                load_arr = np.zeros(matrix.num_links)
                np.add.at(load_arr, cols, allocated[entry_rows])
                loads = {keys[j]: float(load_arr[j])
                         for j in np.unique(cols)}
                rates[t_index, global_active] = allocated
                all_paths.append(list(paths))
                all_loads.append(loads)
                self._record_metrics(
                    time_s, rates[t_index], loads,
                    active_count=len(active) if dynamic else None)
                recorded = True
            next_tau = step_end
            pending = starts_c[(starts_c > tau + _TIME_EPS_S)
                               & (starts_c < next_tau)]
            if pending.size:
                next_tau = float(pending.min())
            res_act = residual_bits[global_active]
            finishing = np.isfinite(res_act) & (allocated > 0.0)
            if finishing.any():
                done = tau + np.maximum(
                    res_act[finishing] / allocated[finishing], _TIME_EPS_S)
                earliest = float(done.min())
                if earliest < next_tau:
                    next_tau = earliest
            dt = next_tau - tau
            if dt > 0.0 and active.size:
                positive = allocated > 0.0
                g_pos = global_active[positive]
                served = np.minimum(allocated[positive] * dt,
                                    residual_bits[g_pos])
                delivered_bits[g_pos] += served
                finite = np.isfinite(residual_bits[g_pos])
                g_fin = g_pos[finite]
                residual_bits[g_fin] -= served[finite]
                completed = residual_bits[g_fin] <= _RESIDUAL_EPS_BITS
                g_done = g_fin[completed]
                residual_bits[g_done] = 0.0
                fct_s[g_done] = next_tau - starts[g_done]
            tau = next_tau
            if tau >= step_end - _TIME_EPS_S:
                break
        if loop_span != -1:
            profiler.end(loop_span)
        return solves

    def _record_metrics(self, time_s: float, rates_row: np.ndarray,
                        loads: Dict[Hashable, float],
                        active_count: Optional[int] = None) -> None:
        registry = self.metrics
        if registry is None:
            return
        connected = int((rates_row > 0.0).sum())
        registry.series("fluid.connected_flows").append(time_s, connected)
        registry.series("fluid.mean_rate_bps").append(
            time_s, float(rates_row.mean()) if rates_row.size else 0.0)
        peak = max(loads.values()) if loads else 0.0
        registry.series("fluid.peak_utilization").append(
            time_s, peak / self.link_capacity_bps)
        if active_count is not None:
            registry.series("traffic.active_flows").append(
                time_s, float(active_count))
