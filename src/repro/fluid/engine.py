"""Fluid (flow-level) simulation of constellation-wide traffic.

The paper's §5.4 experiment — a fixed permutation of long-running TCP flows
between 100 cities over Kuiper — is packet-simulated in ns-3.  A faithful
pure-Python per-packet reproduction at that scale is computationally out of
reach, so this engine substitutes the standard fluid abstraction:

* at each forwarding-state snapshot, every flow follows its shortest path;
* flow rates are the max-min fair allocation over the same *device*
  capacities the packet simulator models (directional ISL devices, one
  shared GSL device per node);
* per-device utilization and per-pair unused bandwidth follow directly.

The substitution preserves what the experiment measures: how shortest-path
churn reshuffles which flows share which bottlenecks, yielding large
fluctuations in a path's unused bandwidth even under a static traffic
matrix (Fig. 10) and moving hotspots around the constellation
(Figs. 14/15).  The ablation bench ``test_ablation_fluid_vs_packet``
checks the two engines agree on small scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.report import RunReport, fluid_run_report
from ..routing.engine import RoutingEngine
from ..topology.dynamic_state import snapshot_times
from ..topology.network import LeoNetwork, TopologySnapshot
from .maxmin import max_min_fair_allocation

__all__ = ["FluidFlow", "FluidResult", "FluidSimulation", "path_devices"]

#: Event-time tolerance of the intra-step churn loop (seconds) — also the
#: minimum sub-interval width, so the loop always advances.
_TIME_EPS_S = 1e-9
#: Residual below this many bits counts as a completed transfer (float
#: round-off from ``rate · (residual / rate)`` is far below a byte).
_RESIDUAL_EPS_BITS = 1e-3


@dataclass(frozen=True)
class FluidFlow:
    """One flow of the fluid model.

    Attributes:
        src_gid: Source ground station.
        dst_gid: Destination ground station.
        demand_bps: Rate cap (``inf`` models a greedy long-running TCP).
        size_bytes: Transfer size; ``None`` (default) is a long-running
            flow that never completes, a finite size makes the flow leave
            the allocation once its residual reaches zero.
        start_s: Arrival time; the flow takes no capacity before it.
    """

    src_gid: int
    dst_gid: int
    demand_bps: float = np.inf
    size_bytes: Optional[float] = None
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.src_gid == self.dst_gid:
            raise ValueError("flow endpoints must differ")
        # ``not (x > 0)`` also rejects NaN, which ``x <= 0`` lets through.
        if not (self.demand_bps > 0.0):
            raise ValueError(
                f"demand must be positive, got {self.demand_bps}")
        if self.size_bytes is not None and not (
                0.0 < self.size_bytes < float("inf")):
            raise ValueError(
                f"flow size must be positive and finite, "
                f"got {self.size_bytes}")
        if not (0.0 <= self.start_s < float("inf")):
            raise ValueError(
                f"start time must be finite and >= 0, got {self.start_s}")

    @property
    def is_finite(self) -> bool:
        """Whether the flow completes (has a finite size)."""
        return self.size_bytes is not None


def path_devices(path: Sequence[int], num_satellites: int
                 ) -> List[Hashable]:
    """The transmitting devices a path occupies, in DES-compatible keys.

    Satellite-to-satellite hops use the directed ISL device ``(a, b)``;
    any hop leaving node ``a`` toward a ground station — or leaving a
    ground station — uses that node's shared GSL device ``("gsl", a)``.
    """
    devices: List[Hashable] = []
    for a, b in zip(path, path[1:]):
        if a < num_satellites and b < num_satellites:
            devices.append((a, b))
        else:
            devices.append(("gsl", a))
    return devices


@dataclass
class FluidResult:
    """Output of a fluid simulation.

    Attributes:
        times_s: (T,) snapshot times.
        flow_rates_bps: (T, F) allocated rate of each flow over time;
            zero while a flow's endpoints are disconnected.
        flow_paths: ``flow_paths[t][f]`` node-id path or None.
        device_load_bps: per snapshot, mapping device-key -> allocated load.
        num_satellites: Node-numbering split point (satellites below it).
        link_capacity_bps: The uniform device capacity of the run.
        engine: Which engine produced the result ("maxmin" or "aimd").
        perf: Wall-clock accounting of the run (wall_time_s,
            snapshots_computed), filled by the engines.
        duration_s: Simulated horizon of the run.
        flow_offered_bits: (F,) per-flow offered volume — ``inf`` for
            long-running flows; ``None`` for fully static workloads.
        flow_delivered_bits: (F,) bits each flow actually transferred
            over the run; ``None`` for fully static workloads.
        flow_fct_s: (F,) flow completion time (completion − start);
            ``nan`` for flows that never completed; ``None`` for fully
            static workloads.
    """

    times_s: np.ndarray
    flow_rates_bps: np.ndarray
    flow_paths: List[List[Optional[Tuple[int, ...]]]]
    device_load_bps: List[Dict[Hashable, float]]
    num_satellites: int
    link_capacity_bps: float
    engine: str = "maxmin"
    perf: Dict[str, float] = field(default_factory=dict)
    duration_s: float = 0.0
    flow_offered_bits: Optional[np.ndarray] = None
    flow_delivered_bits: Optional[np.ndarray] = None
    flow_fct_s: Optional[np.ndarray] = None

    def fct_values(self) -> np.ndarray:
        """Completed flows' completion times (empty for static runs)."""
        if self.flow_fct_s is None:
            return np.empty(0)
        return self.flow_fct_s[np.isfinite(self.flow_fct_s)]

    def perf_summary(self) -> Dict[str, float]:
        """Flat performance/accounting summary (report-facing) — the
        fluid counterpart of :meth:`SimulationStats.perf_summary`."""
        num_snapshots = len(self.times_s)
        rates = self.flow_rates_bps
        connected = (rates > 0.0).any(axis=0).sum() if rates.size else 0
        summary: Dict[str, float] = {
            "snapshots": float(num_snapshots),
            "flows": float(rates.shape[1]) if rates.ndim == 2 else 0.0,
            "flows_ever_connected": float(connected),
            "mean_rate_bps": float(rates.mean()) if rates.size else 0.0,
            "link_capacity_bps": self.link_capacity_bps,
        }
        if self.device_load_bps:
            peak = max((max(loads.values()) if loads else 0.0)
                       for loads in self.device_load_bps)
            summary["peak_utilization"] = peak / self.link_capacity_bps
        if self.flow_fct_s is not None:
            fct = self.fct_values()
            summary["flows_completed"] = float(len(fct))
            if fct.size:
                summary["fct_mean_s"] = float(fct.mean())
                summary["fct_p50_s"] = float(np.percentile(fct, 50))
                summary["fct_p99_s"] = float(np.percentile(fct, 99))
                summary["fct_max_s"] = float(fct.max())
            if self.flow_offered_bits is not None:
                finite = np.isfinite(self.flow_offered_bits)
                summary["flows_finite"] = float(finite.sum())
                if self.duration_s > 0.0:
                    summary["offered_load_bps"] = float(
                        self.flow_offered_bits[finite].sum()
                    ) / self.duration_s
                    if self.flow_delivered_bits is not None:
                        summary["delivered_load_bps"] = float(
                            self.flow_delivered_bits[finite].sum()
                        ) / self.duration_s
        summary.update(self.perf)
        wall = self.perf.get("wall_time_s", 0.0)
        if wall > 0.0:
            summary["snapshots_per_wall_s"] = num_snapshots / wall
        return summary

    def report(self, registry: Optional[MetricsRegistry] = None
               ) -> RunReport:
        """The unified run report of this fluid run."""
        return fluid_run_report(self, registry=registry)

    def unused_bandwidth_bps(self, flow_index: int) -> np.ndarray:
        """Paper Fig. 10's metric for one flow's path over time.

        The path's link capacity minus the utilization of the most
        congested on-path device at each snapshot; ``nan`` while the flow
        is disconnected.
        """
        series = np.full(len(self.times_s), np.nan)
        for t in range(len(self.times_s)):
            path = self.flow_paths[t][flow_index]
            if path is None:
                continue
            devices = path_devices(path, self.num_satellites)
            loads = self.device_load_bps[t]
            worst = max(loads.get(device, 0.0) for device in devices)
            series[t] = max(0.0, self.link_capacity_bps - worst)
        return series

    def isl_utilization(self, t_index: int) -> Dict[Tuple[int, int], float]:
        """Directed ISL loads at one snapshot, as a fraction of capacity.

        The input of the paper's Fig. 14/15 congestion visualizations.
        """
        loads = self.device_load_bps[t_index]
        return {
            device: load / self.link_capacity_bps
            for device, load in loads.items()
            if isinstance(device, tuple) and device[0] != "gsl"
        }


class FluidSimulation:
    """Max-min fluid traffic over the evolving shortest paths.

    Args:
        network: The LEO network.
        flows: The long-running flows.
        link_capacity_bps: Uniform device capacity (paper: 10 Mbit/s).
        freeze_topology_at_s: If not None, routes and geometry are frozen
            at this time — the "static network" baseline (gray line of
            Fig. 10).
        metrics: Optional registry; when given, the run records the
            per-snapshot series ``fluid.connected_flows``,
            ``fluid.mean_rate_bps`` and ``fluid.peak_utilization``.
    """

    ENGINE = "maxmin"

    def __init__(self, network: LeoNetwork, flows: Sequence[FluidFlow],
                 link_capacity_bps: float = 10_000_000.0,
                 freeze_topology_at_s: Optional[float] = None,
                 capacity_overrides: Optional[
                     Dict[Hashable, float]] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not flows:
            raise ValueError("need at least one flow")
        if link_capacity_bps <= 0.0:
            raise ValueError("capacity must be positive")
        self.network = network
        self.flows = list(flows)
        self.link_capacity_bps = link_capacity_bps
        self.freeze_topology_at_s = freeze_topology_at_s
        #: Per-device capacity overrides (paper §7's link heterogeneity);
        #: keys follow :func:`path_devices` — ``(a, b)`` for directed
        #: ISLs, ``("gsl", node)`` for GSL devices.
        self.capacity_overrides = dict(capacity_overrides or {})
        for capacity in self.capacity_overrides.values():
            if capacity <= 0.0:
                raise ValueError("override capacities must be positive")
        self.metrics = metrics
        self._engine = RoutingEngine(network)
        self._num_sats = network.num_satellites

    def _paths_at(self, snapshot: TopologySnapshot,
                  indices: Optional[Sequence[int]] = None
                  ) -> List[Optional[Tuple[int, ...]]]:
        # One batched Dijkstra covers every flow's destination tree.
        flows = (self.flows if indices is None
                 else [self.flows[i] for i in indices])
        node_paths = self._engine.paths_many(
            snapshot, [(flow.src_gid, flow.dst_gid) for flow in flows])
        paths = [tuple(path) if path is not None else None
                 for path in node_paths]
        if indices is None:
            return paths
        full: List[Optional[Tuple[int, ...]]] = [None] * len(self.flows)
        for i, path in zip(indices, paths):
            full[i] = path
        return full

    def run(self, duration_s: float, step_s: float = 1.0) -> FluidResult:
        """Simulate ``duration_s`` at ``step_s`` granularity.

        A static workload (every flow starting at 0, no finite sizes)
        solves one allocation per snapshot, exactly as a long-running
        permutation run always has.  A dynamic workload additionally
        re-solves *within* a step at every flow arrival and predicted
        completion, integrating each finite flow's residual size through
        the sub-intervals so flows complete and leave the allocation;
        the recorded per-snapshot rates/loads are always the allocation
        at the snapshot instant.
        """
        wall_start = time.perf_counter()
        times = snapshot_times(duration_s, step_s)
        num_flows = len(self.flows)
        rates = np.zeros((len(times), num_flows))
        all_paths: List[List[Optional[Tuple[int, ...]]]] = []
        all_loads: List[Dict[Hashable, float]] = []

        starts = np.array([flow.start_s for flow in self.flows])
        offered_bits = np.array([
            flow.size_bytes * 8.0 if flow.size_bytes is not None else np.inf
            for flow in self.flows])
        residual_bits = offered_bits.copy()
        delivered_bits = np.zeros(num_flows)
        fct_s = np.full(num_flows, np.nan)
        dynamic = bool((starts > 0.0).any()
                       or np.isfinite(offered_bits).any())
        solves = 0

        frozen_paths: Optional[List[Optional[Tuple[int, ...]]]] = None
        if self.freeze_topology_at_s is not None:
            frozen_snapshot = self.network.snapshot(self.freeze_topology_at_s)
            frozen_paths = self._paths_at(frozen_snapshot)

        faults = getattr(self.network, "fault_view", None)
        for t_index, time_s in enumerate(times):
            time_s = float(time_s)
            step_end = time_s + step_s
            # Flows that could take capacity somewhere in this step:
            # already or soon started, not yet fully transferred.
            candidates = [i for i in range(num_flows)
                          if residual_bits[i] > 0.0
                          and starts[i] < step_end]
            if frozen_paths is not None:
                in_play = set(candidates)
                paths: List[Optional[Tuple[int, ...]]] = [
                    frozen_paths[i] if i in in_play else None
                    for i in range(num_flows)]
            else:
                snapshot = self.network.snapshot(time_s)
                paths = self._paths_at(snapshot, candidates)
            flow_links: Dict[int, List[Hashable]] = {
                i: path_devices(paths[i], self._num_sats)
                for i in candidates if paths[i] is not None}
            capacities: Dict[Hashable, float] = {}
            for links in flow_links.values():
                for link in links:
                    capacity = self.capacity_overrides.get(
                        link, self.link_capacity_bps)
                    if faults is not None:
                        # Cut/outaged devices are zero-capacity (flows
                        # over them — frozen-topology mode — get rate 0);
                        # lossy ones shrink to the expected goodput.
                        capacity *= faults.capacity_factor(
                            link, self._num_sats, time_s)
                    capacities[link] = capacity

            # Sub-event loop: [time_s, step_end) split at every arrival
            # and predicted completion; one max-min solve per interval.
            tau = time_s
            recorded = False
            while True:
                active = [i for i in candidates
                          if starts[i] <= tau + _TIME_EPS_S
                          and residual_bits[i] > 0.0
                          and i in flow_links]
                links_list = [flow_links[i] for i in active]
                allocated = max_min_fair_allocation(
                    capacities, links_list,
                    demands=[min(self.flows[i].demand_bps,
                                 100.0 * self.link_capacity_bps)
                             for i in active])
                solves += 1
                if not recorded:
                    loads: Dict[Hashable, float] = {}
                    for links, rate in zip(links_list, allocated):
                        for link in links:
                            loads[link] = loads.get(link, 0.0) + rate
                    for local_index, i in enumerate(active):
                        rates[t_index, i] = allocated[local_index]
                    all_paths.append(list(paths))
                    all_loads.append(loads)
                    self._record_metrics(
                        time_s, rates[t_index], loads,
                        active_count=len(active) if dynamic else None)
                    recorded = True
                next_tau = step_end
                for i in candidates:
                    if tau + _TIME_EPS_S < starts[i] < next_tau:
                        next_tau = starts[i]
                for local_index, i in enumerate(active):
                    rate = allocated[local_index]
                    if rate > 0.0 and np.isfinite(residual_bits[i]):
                        done = tau + max(residual_bits[i] / rate,
                                         _TIME_EPS_S)
                        if done < next_tau:
                            next_tau = done
                dt = next_tau - tau
                if dt > 0.0:
                    for local_index, i in enumerate(active):
                        rate = allocated[local_index]
                        if rate <= 0.0:
                            continue
                        served = min(rate * dt, residual_bits[i])
                        delivered_bits[i] += served
                        if np.isfinite(residual_bits[i]):
                            residual_bits[i] -= served
                            if residual_bits[i] <= _RESIDUAL_EPS_BITS:
                                residual_bits[i] = 0.0
                                fct_s[i] = next_tau - starts[i]
                tau = next_tau
                if tau >= step_end - _TIME_EPS_S:
                    break

        wall = time.perf_counter() - wall_start
        perf = {"wall_time_s": wall,
                "snapshots_computed": float(len(times))}
        if dynamic:
            perf["allocations_solved"] = float(solves)
        return FluidResult(times_s=times, flow_rates_bps=rates,
                           flow_paths=all_paths,
                           device_load_bps=all_loads,
                           num_satellites=self._num_sats,
                           link_capacity_bps=self.link_capacity_bps,
                           engine=self.ENGINE,
                           perf=perf,
                           duration_s=float(duration_s),
                           flow_offered_bits=(offered_bits if dynamic
                                              else None),
                           flow_delivered_bits=(delivered_bits if dynamic
                                                else None),
                           flow_fct_s=fct_s if dynamic else None)

    def _record_metrics(self, time_s: float, rates_row: np.ndarray,
                        loads: Dict[Hashable, float],
                        active_count: Optional[int] = None) -> None:
        registry = self.metrics
        if registry is None:
            return
        connected = int((rates_row > 0.0).sum())
        registry.series("fluid.connected_flows").append(time_s, connected)
        registry.series("fluid.mean_rate_bps").append(
            time_s, float(rates_row.mean()) if rates_row.size else 0.0)
        peak = max(loads.values()) if loads else 0.0
        registry.series("fluid.peak_utilization").append(
            time_s, peak / self.link_capacity_bps)
        if active_count is not None:
            registry.series("traffic.active_flows").append(
                time_s, float(active_count))
