"""Fluid (flow-level) simulation of constellation-wide traffic.

The paper's §5.4 experiment — a fixed permutation of long-running TCP flows
between 100 cities over Kuiper — is packet-simulated in ns-3.  A faithful
pure-Python per-packet reproduction at that scale is computationally out of
reach, so this engine substitutes the standard fluid abstraction:

* at each forwarding-state snapshot, every flow follows its shortest path;
* flow rates are the max-min fair allocation over the same *device*
  capacities the packet simulator models (directional ISL devices, one
  shared GSL device per node);
* per-device utilization and per-pair unused bandwidth follow directly.

The substitution preserves what the experiment measures: how shortest-path
churn reshuffles which flows share which bottlenecks, yielding large
fluctuations in a path's unused bandwidth even under a static traffic
matrix (Fig. 10) and moving hotspots around the constellation
(Figs. 14/15).  The ablation bench ``test_ablation_fluid_vs_packet``
checks the two engines agree on small scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.report import RunReport, fluid_run_report
from ..routing.engine import RoutingEngine
from ..topology.dynamic_state import snapshot_times
from ..topology.network import LeoNetwork, TopologySnapshot
from .maxmin import max_min_fair_allocation

__all__ = ["FluidFlow", "FluidResult", "FluidSimulation", "path_devices"]


@dataclass(frozen=True)
class FluidFlow:
    """One long-running flow of the fluid model.

    Attributes:
        src_gid: Source ground station.
        dst_gid: Destination ground station.
        demand_bps: Rate cap (``inf`` models a greedy long-running TCP).
    """

    src_gid: int
    dst_gid: int
    demand_bps: float = np.inf

    def __post_init__(self) -> None:
        if self.src_gid == self.dst_gid:
            raise ValueError("flow endpoints must differ")
        if self.demand_bps <= 0.0:
            raise ValueError("demand must be positive")


def path_devices(path: Sequence[int], num_satellites: int
                 ) -> List[Hashable]:
    """The transmitting devices a path occupies, in DES-compatible keys.

    Satellite-to-satellite hops use the directed ISL device ``(a, b)``;
    any hop leaving node ``a`` toward a ground station — or leaving a
    ground station — uses that node's shared GSL device ``("gsl", a)``.
    """
    devices: List[Hashable] = []
    for a, b in zip(path, path[1:]):
        if a < num_satellites and b < num_satellites:
            devices.append((a, b))
        else:
            devices.append(("gsl", a))
    return devices


@dataclass
class FluidResult:
    """Output of a fluid simulation.

    Attributes:
        times_s: (T,) snapshot times.
        flow_rates_bps: (T, F) allocated rate of each flow over time;
            zero while a flow's endpoints are disconnected.
        flow_paths: ``flow_paths[t][f]`` node-id path or None.
        device_load_bps: per snapshot, mapping device-key -> allocated load.
        num_satellites: Node-numbering split point (satellites below it).
        link_capacity_bps: The uniform device capacity of the run.
        engine: Which engine produced the result ("maxmin" or "aimd").
        perf: Wall-clock accounting of the run (wall_time_s,
            snapshots_computed), filled by the engines.
    """

    times_s: np.ndarray
    flow_rates_bps: np.ndarray
    flow_paths: List[List[Optional[Tuple[int, ...]]]]
    device_load_bps: List[Dict[Hashable, float]]
    num_satellites: int
    link_capacity_bps: float
    engine: str = "maxmin"
    perf: Dict[str, float] = field(default_factory=dict)

    def perf_summary(self) -> Dict[str, float]:
        """Flat performance/accounting summary (report-facing) — the
        fluid counterpart of :meth:`SimulationStats.perf_summary`."""
        num_snapshots = len(self.times_s)
        rates = self.flow_rates_bps
        connected = (rates > 0.0).any(axis=0).sum() if rates.size else 0
        summary: Dict[str, float] = {
            "snapshots": float(num_snapshots),
            "flows": float(rates.shape[1]) if rates.ndim == 2 else 0.0,
            "flows_ever_connected": float(connected),
            "mean_rate_bps": float(rates.mean()) if rates.size else 0.0,
            "link_capacity_bps": self.link_capacity_bps,
        }
        if self.device_load_bps:
            peak = max((max(loads.values()) if loads else 0.0)
                       for loads in self.device_load_bps)
            summary["peak_utilization"] = peak / self.link_capacity_bps
        summary.update(self.perf)
        wall = self.perf.get("wall_time_s", 0.0)
        if wall > 0.0:
            summary["snapshots_per_wall_s"] = num_snapshots / wall
        return summary

    def report(self, registry: Optional[MetricsRegistry] = None
               ) -> RunReport:
        """The unified run report of this fluid run."""
        return fluid_run_report(self, registry=registry)

    def unused_bandwidth_bps(self, flow_index: int) -> np.ndarray:
        """Paper Fig. 10's metric for one flow's path over time.

        The path's link capacity minus the utilization of the most
        congested on-path device at each snapshot; ``nan`` while the flow
        is disconnected.
        """
        series = np.full(len(self.times_s), np.nan)
        for t in range(len(self.times_s)):
            path = self.flow_paths[t][flow_index]
            if path is None:
                continue
            devices = path_devices(path, self.num_satellites)
            loads = self.device_load_bps[t]
            worst = max(loads.get(device, 0.0) for device in devices)
            series[t] = max(0.0, self.link_capacity_bps - worst)
        return series

    def isl_utilization(self, t_index: int) -> Dict[Tuple[int, int], float]:
        """Directed ISL loads at one snapshot, as a fraction of capacity.

        The input of the paper's Fig. 14/15 congestion visualizations.
        """
        loads = self.device_load_bps[t_index]
        return {
            device: load / self.link_capacity_bps
            for device, load in loads.items()
            if isinstance(device, tuple) and device[0] != "gsl"
        }


class FluidSimulation:
    """Max-min fluid traffic over the evolving shortest paths.

    Args:
        network: The LEO network.
        flows: The long-running flows.
        link_capacity_bps: Uniform device capacity (paper: 10 Mbit/s).
        freeze_topology_at_s: If not None, routes and geometry are frozen
            at this time — the "static network" baseline (gray line of
            Fig. 10).
        metrics: Optional registry; when given, the run records the
            per-snapshot series ``fluid.connected_flows``,
            ``fluid.mean_rate_bps`` and ``fluid.peak_utilization``.
    """

    ENGINE = "maxmin"

    def __init__(self, network: LeoNetwork, flows: Sequence[FluidFlow],
                 link_capacity_bps: float = 10_000_000.0,
                 freeze_topology_at_s: Optional[float] = None,
                 capacity_overrides: Optional[
                     Dict[Hashable, float]] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if not flows:
            raise ValueError("need at least one flow")
        if link_capacity_bps <= 0.0:
            raise ValueError("capacity must be positive")
        self.network = network
        self.flows = list(flows)
        self.link_capacity_bps = link_capacity_bps
        self.freeze_topology_at_s = freeze_topology_at_s
        #: Per-device capacity overrides (paper §7's link heterogeneity);
        #: keys follow :func:`path_devices` — ``(a, b)`` for directed
        #: ISLs, ``("gsl", node)`` for GSL devices.
        self.capacity_overrides = dict(capacity_overrides or {})
        for capacity in self.capacity_overrides.values():
            if capacity <= 0.0:
                raise ValueError("override capacities must be positive")
        self.metrics = metrics
        self._engine = RoutingEngine(network)
        self._num_sats = network.num_satellites

    def _paths_at(self, snapshot: TopologySnapshot
                  ) -> List[Optional[Tuple[int, ...]]]:
        # One batched Dijkstra covers every flow's destination tree.
        node_paths = self._engine.paths_many(
            snapshot, [(flow.src_gid, flow.dst_gid) for flow in self.flows])
        return [tuple(path) if path is not None else None
                for path in node_paths]

    def run(self, duration_s: float, step_s: float = 1.0) -> FluidResult:
        """Simulate ``duration_s`` at ``step_s`` granularity."""
        wall_start = time.perf_counter()
        times = snapshot_times(duration_s, step_s)
        num_flows = len(self.flows)
        rates = np.zeros((len(times), num_flows))
        all_paths: List[List[Optional[Tuple[int, ...]]]] = []
        all_loads: List[Dict[Hashable, float]] = []

        frozen_paths: Optional[List[Optional[Tuple[int, ...]]]] = None
        if self.freeze_topology_at_s is not None:
            frozen_snapshot = self.network.snapshot(self.freeze_topology_at_s)
            frozen_paths = self._paths_at(frozen_snapshot)

        faults = getattr(self.network, "fault_view", None)
        for t_index, time_s in enumerate(times):
            if frozen_paths is not None:
                paths = frozen_paths
            else:
                snapshot = self.network.snapshot(float(time_s))
                paths = self._paths_at(snapshot)
            flow_links: List[List[Hashable]] = []
            demands: List[float] = []
            connected: List[int] = []
            for i, path in enumerate(paths):
                if path is None:
                    continue
                connected.append(i)
                flow_links.append(path_devices(path, self._num_sats))
                demands.append(self.flows[i].demand_bps)
            capacities: Dict[Hashable, float] = {}
            for links in flow_links:
                for link in links:
                    capacity = self.capacity_overrides.get(
                        link, self.link_capacity_bps)
                    if faults is not None:
                        # Cut/outaged devices are zero-capacity (flows
                        # over them — frozen-topology mode — get rate 0);
                        # lossy ones shrink to the expected goodput.
                        capacity *= faults.capacity_factor(
                            link, self._num_sats, float(time_s))
                    capacities[link] = capacity
            allocated = max_min_fair_allocation(
                capacities, flow_links,
                demands=[min(d, 100.0 * self.link_capacity_bps)
                         for d in demands])
            loads: Dict[Hashable, float] = {}
            for links, rate in zip(flow_links, allocated):
                for link in links:
                    loads[link] = loads.get(link, 0.0) + rate
            for local_index, i in enumerate(connected):
                rates[t_index, i] = allocated[local_index]
            all_paths.append(list(paths))
            all_loads.append(loads)
            self._record_metrics(float(time_s), rates[t_index], loads)

        wall = time.perf_counter() - wall_start
        return FluidResult(times_s=times, flow_rates_bps=rates,
                           flow_paths=all_paths,
                           device_load_bps=all_loads,
                           num_satellites=self._num_sats,
                           link_capacity_bps=self.link_capacity_bps,
                           engine=self.ENGINE,
                           perf={"wall_time_s": wall,
                                 "snapshots_computed": float(len(times))})

    def _record_metrics(self, time_s: float, rates_row: np.ndarray,
                        loads: Dict[Hashable, float]) -> None:
        registry = self.metrics
        if registry is None:
            return
        connected = int((rates_row > 0.0).sum())
        registry.series("fluid.connected_flows").append(time_s, connected)
        registry.series("fluid.mean_rate_bps").append(
            time_s, float(rates_row.mean()) if rates_row.size else 0.0)
        peak = max(loads.values()) if loads else 0.0
        registry.series("fluid.peak_utilization").append(
            time_s, peak / self.link_capacity_bps)
