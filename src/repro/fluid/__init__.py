"""Fluid (flow-level) traffic engine: max-min fair shares over time."""

from .aimd import AimdFluidSimulation
from .engine import FluidFlow, FluidResult, FluidSimulation, path_devices
from .maxmin import max_min_fair_allocation

__all__ = [
    "AimdFluidSimulation",
    "FluidFlow",
    "FluidResult",
    "FluidSimulation",
    "path_devices",
    "max_min_fair_allocation",
]
