"""Fluid (flow-level) traffic engine: max-min fair shares over time."""

from .aimd import AimdFluidSimulation
from .engine import (FluidFlow, FluidResult, FluidRunState, FluidSimulation,
                     decode_device, flatten_path_devices,
                     flow_link_matrix_from_paths, path_devices)
from .maxmin import max_min_fair_allocation
from .vectorized import (FlowLinkMatrix, max_min_fair_allocation_vectorized,
                         waterfill)

__all__ = [
    "AimdFluidSimulation",
    "FlowLinkMatrix",
    "FluidFlow",
    "FluidResult",
    "FluidRunState",
    "FluidSimulation",
    "decode_device",
    "flatten_path_devices",
    "flow_link_matrix_from_paths",
    "path_devices",
    "max_min_fair_allocation",
    "max_min_fair_allocation_vectorized",
    "waterfill",
]
