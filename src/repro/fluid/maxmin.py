"""Max-min fair bandwidth allocation (progressive filling).

The fluid engine models long-running TCP flows as attaining the max-min
fair share of their paths — the classic idealization of TCP-like transport
("the goal of TCP-like transport is, after all, to fairly share bandwidth
across the flows traversing a bottleneck", paper §5.4).  Progressive
filling computes that allocation exactly: repeatedly find the link whose
equal split among its still-unfrozen flows is smallest, freeze those flows
at that rate, and continue.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["max_min_fair_allocation"]


def max_min_fair_allocation(
        link_capacity: Dict[Hashable, float],
        flow_links: Sequence[Sequence[Hashable]],
        demands: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Progressive-filling max-min fair rates.

    A flow listing the same link more than once (a loop path) consumes
    capacity once per traversal, so it is weighted by its traversal
    multiplicity in both the equal-share computation and the capacity
    decrement: per link, ``sum(rate * multiplicity) <= capacity`` always
    holds.

    Args:
        link_capacity: Capacity of every link (any hashable link key).
        flow_links: For each flow, the links it traverses, one entry per
            traversal.  A flow with no links is only limited by its
            demand.
        demands: Optional per-flow rate caps (e.g. an application's send
            rate); ``None`` means every flow is elastic (infinite demand).

    Returns:
        (F,) array of allocated rates.

    Raises:
        ValueError: On negative capacities/demands or links missing from
            ``link_capacity``.
    """
    num_flows = len(flow_links)
    rates = np.zeros(num_flows)
    if num_flows == 0:
        return rates
    for link, capacity in link_capacity.items():
        if capacity < 0.0:
            raise ValueError(f"negative capacity on link {link!r}")

    if demands is None:
        demand_arr = np.full(num_flows, np.inf)
    else:
        demand_arr = np.asarray(demands, dtype=float)
        if len(demand_arr) != num_flows:
            raise ValueError("demands length must match flow count")
        if (demand_arr < 0.0).any():
            raise ValueError("demands must be non-negative")

    # Build link membership with traversal multiplicities; verify link
    # keys.  ``flows_on_link[link]`` maps flow index -> times the flow
    # traverses the link (1 for ordinary simple paths).
    flows_on_link: Dict[Hashable, Dict[int, int]] = {}
    for flow_index, links in enumerate(flow_links):
        for link in links:
            if link not in link_capacity:
                raise ValueError(f"flow {flow_index} uses unknown link "
                                 f"{link!r}")
            members = flows_on_link.setdefault(link, {})
            members[flow_index] = members.get(flow_index, 0) + 1

    remaining = {link: float(link_capacity[link])
                 for link in flows_on_link}
    active_on_link = {link: dict(members) for link, members
                      in flows_on_link.items()}
    unfrozen = set(range(num_flows))

    # Flows limited only by demand (no capacity-constrained links).
    for flow_index in list(unfrozen):
        if not flow_links[flow_index]:
            rates[flow_index] = demand_arr[flow_index]
            if not np.isfinite(rates[flow_index]):
                raise ValueError(
                    f"flow {flow_index} has no links and infinite demand")
            unfrozen.discard(flow_index)

    current_level = 0.0
    while unfrozen:
        # The next freezing event: either a link saturates at its equal
        # share, or a flow reaches its demand cap.  A link's share grows
        # with slope 1/weight where weight is the total traversal count of
        # its unfrozen flows (a flow crossing twice drains it twice as
        # fast per unit of rate).
        best_share = np.inf
        bottleneck = None
        for link, members in active_on_link.items():
            if not members:
                continue
            weight = sum(members.values())
            share = current_level + remaining[link] / weight
            if share < best_share:
                best_share = share
                bottleneck = link
        capped = min((demand_arr[f] for f in unfrozen), default=np.inf)
        if capped < best_share:
            best_share = capped
            bottleneck = None

        if not np.isfinite(best_share):
            raise ValueError("some flows are unconstrained (infinite demand "
                             "and no saturating link)")

        increment = best_share - current_level
        to_freeze = set()
        if bottleneck is not None:
            to_freeze |= set(active_on_link[bottleneck])
        to_freeze |= {f for f in unfrozen if demand_arr[f] <= best_share}

        # Advance everyone to the new water level, then freeze.
        for flow_index in unfrozen:
            rates[flow_index] = min(best_share, demand_arr[flow_index])
        for link in list(active_on_link):
            members = active_on_link[link]
            remaining[link] -= increment * sum(members.values())
            if remaining[link] < 0.0:
                remaining[link] = 0.0
        for flow_index in to_freeze:
            unfrozen.discard(flow_index)
            for link in flow_links[flow_index]:
                active_on_link[link].pop(flow_index, None)
        for link in [l for l, members in active_on_link.items()
                     if not members]:
            del active_on_link[link]
        current_level = best_share
    return rates
