"""Shortest-path routing over topology snapshots.

Paper §3.1: for every time interval, Hypatia generates the network graph
(accounting for satellite positions and link lengths) and computes each
node's forwarding state with shortest-path routing.

This engine reproduces that computation with one single-source Dijkstra per
*destination* ground station (scipy's C implementation), exploiting two
structural facts:

* Only satellites — and, in bent-pipe mode, relay ground stations — may
  forward traffic.  Ordinary GSes are endpoints.  The engine therefore
  builds a "transit graph" of ISLs plus relay GSLs in which non-relay GS
  nodes are isolated, and attaches only the destination's own GSLs per
  query.  Paths can then never transit a third ground station.
* All links are symmetric, so the shortest-path tree rooted at the
  destination simultaneously yields (a) the distance from every satellite
  to the destination and (b) every satellite's next hop toward it — exactly
  the forwarding state the packet simulator installs.

A source GS's ingress satellite is chosen afterwards by minimizing
``uplink + satellite-to-destination`` over its visible satellites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..geo.constants import SPEED_OF_LIGHT_M_PER_S
from ..topology.gsl import GslEdges
from ..topology.network import LeoNetwork, TopologySnapshot

__all__ = ["DestinationRouting", "RoutingEngine", "UNREACHABLE"]

#: Marker used in next-hop arrays for "no route".
UNREACHABLE = -1


@dataclass(frozen=True)
class DestinationRouting:
    """Shortest-path state toward one destination GS at one instant.

    Attributes:
        dst_gid: Destination ground station id.
        dst_node: Its graph node id.
        distance_m: (num_nodes,) distance to the destination from every
            transit node (satellites and relays); ``inf`` where unreachable
            and for isolated non-relay GS nodes.
        next_hop: (num_nodes,) next node id on the shortest path toward the
            destination, ``UNREACHABLE`` where none exists.  For the last
            satellite before the destination this is ``dst_node`` itself
            (i.e. "send down the GSL").
    """

    dst_gid: int
    dst_node: int
    distance_m: np.ndarray
    next_hop: np.ndarray

    def source_ingress(self, source_edges: GslEdges
                       ) -> Tuple[Optional[int], float]:
        """Best ingress satellite for a source GS with the given GSLs.

        Returns:
            ``(satellite_id, total_distance_m)``; ``(None, inf)`` if the
            destination is unreachable from this source right now.
        """
        if not source_edges.is_connected:
            return None, float("inf")
        totals = (source_edges.lengths_m
                  + self.distance_m[source_edges.satellite_ids])
        best = int(np.argmin(totals))
        total = float(totals[best])
        if not np.isfinite(total):
            return None, float("inf")
        return int(source_edges.satellite_ids[best]), total


class RoutingEngine:
    """Computes shortest-path forwarding state over a network's snapshots.

    Args:
        network: The LEO network; its node-numbering convention is adopted.

    The engine is stateless across snapshots apart from the static edge
    index arrays (ISL endpoints, relay identities), which it precomputes
    once.
    """

    def __init__(self, network: LeoNetwork) -> None:
        self.network = network
        self._num_sats = network.num_satellites
        self._num_nodes = network.num_nodes
        self._relay_gids = [
            station.gid for station in network.ground_stations
            if station.is_relay
        ]

    # ------------------------------------------------------------------
    # Core per-destination computation
    # ------------------------------------------------------------------

    def route_to(self, snapshot: TopologySnapshot,
                 dst_gid: int) -> DestinationRouting:
        """Shortest-path state toward ``dst_gid`` at this snapshot."""
        rows, cols, data = self._transit_edges(snapshot)
        dst_node = snapshot.gs_node_id(dst_gid)
        dst_edges = snapshot.gsl_edges[dst_gid]
        if dst_edges.is_connected and dst_gid not in self._relay_gids:
            rows = np.concatenate(
                [rows, np.full(len(dst_edges.satellite_ids), dst_node)])
            cols = np.concatenate([cols, dst_edges.satellite_ids])
            data = np.concatenate([data, dst_edges.lengths_m])
        graph = csr_matrix((data, (rows, cols)),
                           shape=(self._num_nodes, self._num_nodes))
        distances, predecessors = dijkstra(
            graph, directed=False, indices=dst_node,
            return_predecessors=True)
        next_hop = predecessors.astype(np.int64)
        next_hop[next_hop < 0] = UNREACHABLE
        return DestinationRouting(
            dst_gid=dst_gid,
            dst_node=dst_node,
            distance_m=distances,
            next_hop=next_hop,
        )

    def _transit_edges(self, snapshot: TopologySnapshot
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge arrays of the transit graph (ISLs + relay GSLs)."""
        rows_list: List[np.ndarray] = [snapshot.isl_pairs[:, 0]]
        cols_list: List[np.ndarray] = [snapshot.isl_pairs[:, 1]]
        data_list: List[np.ndarray] = [snapshot.isl_lengths_m]
        for gid in self._relay_gids:
            edges = snapshot.gsl_edges[gid]
            if not edges.is_connected:
                continue
            node = snapshot.gs_node_id(gid)
            rows_list.append(np.full(len(edges.satellite_ids), node))
            cols_list.append(edges.satellite_ids)
            data_list.append(edges.lengths_m)
        return (np.concatenate(rows_list).astype(np.int64),
                np.concatenate(cols_list).astype(np.int64),
                np.concatenate(data_list).astype(np.float64))

    # ------------------------------------------------------------------
    # Pair-level queries
    # ------------------------------------------------------------------

    def pair_distance_m(self, snapshot: TopologySnapshot,
                        src_gid: int, dst_gid: int) -> float:
        """Shortest-path distance between two GSes; inf if disconnected."""
        routing = self.route_to(snapshot, dst_gid)
        _, distance = routing.source_ingress(snapshot.gsl_edges[src_gid])
        return distance

    def pair_rtt_s(self, snapshot: TopologySnapshot,
                   src_gid: int, dst_gid: int) -> float:
        """Propagation-only RTT between two GSes (paper's 'Computed' RTT)."""
        distance = self.pair_distance_m(snapshot, src_gid, dst_gid)
        return 2.0 * distance / SPEED_OF_LIGHT_M_PER_S

    def path(self, snapshot: TopologySnapshot, src_gid: int,
             dst_gid: int) -> Optional[List[int]]:
        """Node-id list of the shortest path, or None if disconnected.

        The list runs ``[src_node, ingress_sat, ..., egress_sat, dst_node]``
        and may include relay GS nodes in bent-pipe mode.
        """
        routing = self.route_to(snapshot, dst_gid)
        return self.path_via(routing, snapshot, src_gid)

    def path_via(self, routing: DestinationRouting,
                 snapshot: TopologySnapshot,
                 src_gid: int) -> Optional[List[int]]:
        """Like :meth:`path` but reusing an existing destination tree."""
        src_edges = snapshot.gsl_edges[src_gid]
        ingress, distance = routing.source_ingress(src_edges)
        if ingress is None or not np.isfinite(distance):
            return None
        nodes = [snapshot.gs_node_id(src_gid)]
        current = ingress
        # Walk the shortest-path tree; bounded by node count.
        for _ in range(self._num_nodes + 1):
            nodes.append(int(current))
            if current == routing.dst_node:
                return nodes
            current = routing.next_hop[current]
            if current == UNREACHABLE:
                return None
        raise RuntimeError("next-hop walk did not terminate; routing state "
                           "is inconsistent")

    def distances_to(self, snapshot: TopologySnapshot, dst_gid: int,
                     src_gids: Sequence[int]) -> np.ndarray:
        """Distances from many sources to one destination (meters)."""
        routing = self.route_to(snapshot, dst_gid)
        out = np.empty(len(src_gids))
        for i, src_gid in enumerate(src_gids):
            if src_gid == dst_gid:
                out[i] = 0.0
                continue
            _, out[i] = routing.source_ingress(snapshot.gsl_edges[src_gid])
        return out

    def all_pairs_distance_m(self, snapshot: TopologySnapshot,
                             gids: Optional[Sequence[int]] = None
                             ) -> np.ndarray:
        """(G, G) matrix of GS-to-GS shortest-path distances.

        Symmetric by construction (links are symmetric); entry ``[i, j]`` is
        ``inf`` where no path exists and 0 on the diagonal.
        """
        if gids is None:
            gids = range(self.network.num_ground_stations)
        gids = list(gids)
        matrix = np.zeros((len(gids), len(gids)))
        for j, dst_gid in enumerate(gids):
            distances = self.distances_to(snapshot, dst_gid, gids)
            matrix[:, j] = distances
            matrix[j, j] = 0.0
        return matrix
