"""Shortest-path routing over topology snapshots.

Paper §3.1: for every time interval, Hypatia generates the network graph
(accounting for satellite positions and link lengths) and computes each
node's forwarding state with shortest-path routing.

This engine reproduces that computation with one *batched* Dijkstra over
all destination ground stations (scipy's C implementation), exploiting two
structural facts:

* Only satellites — and, in bent-pipe mode, relay ground stations — may
  forward traffic.  Ordinary GSes are endpoints.  The engine therefore
  builds a "transit graph" of ISLs plus relay GSLs in which non-relay GS
  nodes are isolated, and attaches each destination's own GSLs as edges
  *directed out of* the destination node.  Trees are grown from the
  destinations, so a directed GSL can be the first hop of its own tree but
  can never be entered from another destination's tree — paths can then
  never transit a third ground station, even with every destination's
  GSLs present in one matrix.
* All links are symmetric, so the shortest-path tree rooted at the
  destination simultaneously yields (a) the distance from every satellite
  to the destination and (b) every satellite's next hop toward it — exactly
  the forwarding state the packet simulator installs.

The transit graph is the same for every destination at a given snapshot,
so its edge arrays are built once per :class:`TopologySnapshot` (cached on
the engine, invalidated by snapshot identity) and all destination trees of
one forwarding update come out of a single multi-index
``scipy.sparse.csgraph.dijkstra`` call (:meth:`RoutingEngine.route_to_many`).

A source GS's ingress satellite is chosen afterwards by minimizing
``uplink + satellite-to-destination`` over its visible satellites; with a
batched result this minimization is vectorized across destinations
(:meth:`MultiDestinationRouting.source_ingress_many`).

Next hops are *derived from the distances* rather than taken from the
Dijkstra run's predecessor bookkeeping: a node's next hop toward the
destination is its smallest-id neighbour ``u`` whose edge is *tight*
(``dist[u] + w(u, v) == dist[v]`` exactly, in the same float64 ops the
relaxation performed — see :func:`canonical_next_hops`).  The final
distance array of Dijkstra with positive weights is the unique fixed
point of ``dist[v] = min_u(dist[u] + w(u, v))`` regardless of heap
order, so any algorithm that reproduces the distances — in particular
the incremental repair in :mod:`repro.routing.incremental` — reproduces
the next hops bit-for-bit through the same derivation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..geo.constants import SPEED_OF_LIGHT_M_PER_S
from ..obs import spans
from ..obs.trace import NULL_TRACER, ROUTING_COMPUTE, Tracer
from ..topology.gsl import GslEdges
from ..topology.network import LeoNetwork, TopologySnapshot

__all__ = ["DestinationRouting", "MultiDestinationRouting",
           "RoutingEngine", "RoutingPerfCounters", "UNREACHABLE",
           "canonical_next_hops"]

#: Marker used in next-hop arrays for "no route".
UNREACHABLE = -1


def canonical_next_hops(rows: np.ndarray, cols: np.ndarray,
                        data: np.ndarray, distances: np.ndarray
                        ) -> np.ndarray:
    """Derive next-hop arrays from distance arrays, deterministically.

    For every directed edge ``u -> v`` of the routing graph, ``u`` is a
    valid next hop of ``v`` toward the tree root iff the edge is tight:
    ``dist[u] + w(u, v) == dist[v]`` with exact float64 equality — the
    relaxation that produced ``dist[v]`` performed this very addition, so
    at least one tight edge exists for every reachable non-root node.
    Among tight candidates the smallest node id wins, which makes the
    result a pure function of the distances: two routing computations
    that agree on distances (e.g. from-scratch and incremental repair)
    agree on next hops bit-for-bit.

    Args:
        rows / cols / data: COO arrays of the directed routing graph.
        distances: (D, num_nodes) distance rows, one per tree root.

    Returns:
        (D, num_nodes) int64 next hops; ``UNREACHABLE`` where no path
        exists and at each row's root itself (distance 0, no tight
        in-edge since all weights are positive).
    """
    num_trees, num_nodes = distances.shape
    next_hop = np.full((num_trees, num_nodes), UNREACHABLE, dtype=np.int64)
    sentinel = num_nodes  # greater than any node id
    for tree in range(num_trees):
        dist = distances[tree]
        tight = dist[rows] + data == dist[cols]
        tight &= np.isfinite(dist[cols])
        best = np.full(num_nodes, sentinel, dtype=np.int64)
        np.minimum.at(best, cols[tight], rows[tight])
        found = best != sentinel
        next_hop[tree, found] = best[found]
    return next_hop


@dataclass
class RoutingPerfCounters:
    """Lightweight accounting of the routing hot path.

    One instance is shared between a :class:`RoutingEngine` and whoever
    wants to report its cost (e.g. ``SimulationStats`` — the Fig. 2
    scalability benchmark records these alongside slowdown).

    Attributes:
        routing_compute_s: Wall-clock seconds spent computing trees.
        trees_computed: Destination trees computed (one per destination
            per forwarding update).
        dijkstra_calls: scipy ``dijkstra`` invocations (batched: one per
            update rather than one per destination).
        transit_builds: Times the transit edge arrays were actually
            (re)built from a snapshot.
        transit_cache_hits: Times they were reused from the snapshot cache.
    """

    routing_compute_s: float = 0.0
    trees_computed: int = 0
    dijkstra_calls: int = 0
    transit_builds: int = 0
    transit_cache_hits: int = 0

    @property
    def csr_rebuilds_avoided(self) -> int:
        """Transit-graph rebuilds the batched path saved.

        The pre-batching code rebuilt the transit arrays once per
        destination tree; the batched path builds them once per snapshot.
        """
        return self.trees_computed - self.transit_builds

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (the benchmark-facing hook)."""
        return {
            "routing_compute_s": self.routing_compute_s,
            "trees_computed": self.trees_computed,
            "dijkstra_calls": self.dijkstra_calls,
            "transit_builds": self.transit_builds,
            "transit_cache_hits": self.transit_cache_hits,
            "csr_rebuilds_avoided": self.csr_rebuilds_avoided,
        }


@dataclass(frozen=True)
class DestinationRouting:
    """Shortest-path state toward one destination GS at one instant.

    Attributes:
        dst_gid: Destination ground station id.
        dst_node: Its graph node id.
        distance_m: (num_nodes,) distance to the destination from every
            transit node (satellites and relays); ``inf`` where unreachable
            and for isolated non-relay GS nodes.
        next_hop: (num_nodes,) next node id on the shortest path toward the
            destination, ``UNREACHABLE`` where none exists.  For the last
            satellite before the destination this is ``dst_node`` itself
            (i.e. "send down the GSL").
    """

    dst_gid: int
    dst_node: int
    distance_m: np.ndarray
    next_hop: np.ndarray

    def source_ingress(self, source_edges: GslEdges
                       ) -> Tuple[Optional[int], float]:
        """Best ingress satellite for a source GS with the given GSLs.

        Returns:
            ``(satellite_id, total_distance_m)``; ``(None, inf)`` if the
            destination is unreachable from this source right now.
        """
        if not source_edges.is_connected:
            return None, float("inf")
        totals = (source_edges.lengths_m
                  + self.distance_m[source_edges.satellite_ids])
        best = int(np.argmin(totals))
        total = float(totals[best])
        if not np.isfinite(total):
            return None, float("inf")
        return int(source_edges.satellite_ids[best]), total


@dataclass(frozen=True)
class MultiDestinationRouting:
    """Shortest-path state toward many destinations at one instant.

    The batched result of :meth:`RoutingEngine.route_to_many`: row ``i``
    of the matrices is the destination tree of ``dst_gids[i]`` (duplicate
    input gids are deduplicated, first occurrence wins).

    Attributes:
        dst_gids: The (deduplicated) destination gids, in input order.
        dst_nodes: (D,) their graph node ids.
        distance_m: (D, num_nodes) distances toward each destination.
        next_hop: (D, num_nodes) next hops toward each destination,
            ``UNREACHABLE`` where none exists.
    """

    dst_gids: Tuple[int, ...]
    dst_nodes: np.ndarray
    distance_m: np.ndarray
    next_hop: np.ndarray
    _row_of: Dict[int, int] = field(repr=False, default_factory=dict)

    @property
    def num_destinations(self) -> int:
        return len(self.dst_gids)

    def routing_for(self, dst_gid: int) -> DestinationRouting:
        """The single-destination view of one row (zero-copy)."""
        row = self._row_of[int(dst_gid)]
        return DestinationRouting(
            dst_gid=int(dst_gid),
            dst_node=int(self.dst_nodes[row]),
            distance_m=self.distance_m[row],
            next_hop=self.next_hop[row],
        )

    def source_ingress_many(self, source_edges: GslEdges
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Best ingress satellite toward *every* destination, vectorized.

        Returns:
            ``(ingress, totals)`` — (D,) arrays where ``ingress[i]`` is the
            satellite id minimizing uplink + distance toward
            ``dst_gids[i]`` (``UNREACHABLE`` if none) and ``totals[i]``
            the resulting source-to-destination distance (``inf`` if
            disconnected).
        """
        num = self.num_destinations
        if not source_edges.is_connected:
            return (np.full(num, UNREACHABLE, dtype=np.int64),
                    np.full(num, np.inf))
        # (D, K): uplink length + per-destination satellite distance.
        totals = (source_edges.lengths_m[np.newaxis, :]
                  + self.distance_m[:, source_edges.satellite_ids])
        best = np.argmin(totals, axis=1)
        best_totals = totals[np.arange(num), best]
        ingress = source_edges.satellite_ids[best].astype(np.int64)
        ingress[~np.isfinite(best_totals)] = UNREACHABLE
        return ingress, best_totals


class RoutingEngine:
    """Computes shortest-path forwarding state over a network's snapshots.

    Args:
        network: The LEO network; its node-numbering convention is adopted.
        perf: Optional shared perf-counter sink; a private one is created
            when omitted (exposed as :attr:`perf`).

    Apart from the static edge index arrays (ISL endpoints, relay
    identities), which it precomputes once, the engine keeps exactly one
    piece of dynamic state: the transit edge arrays of the most recent
    snapshot, keyed by snapshot identity, so that the many destination
    trees of one forwarding update share a single graph construction.
    """

    def __init__(self, network: LeoNetwork,
                 perf: Optional[RoutingPerfCounters] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.network = network
        self.perf = perf if perf is not None else RoutingPerfCounters()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._num_sats = network.num_satellites
        self._num_nodes = network.num_nodes
        self._relay_gids = [
            station.gid for station in network.ground_stations
            if station.is_relay
        ]
        self._relay_gid_set = frozenset(self._relay_gids)
        self._cached_snapshot: Optional[TopologySnapshot] = None
        self._cached_transit: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Core batched computation
    # ------------------------------------------------------------------

    def route_to_many(self, snapshot: TopologySnapshot,
                      dst_gids: Sequence[int]) -> MultiDestinationRouting:
        """Shortest-path state toward every given destination, batched.

        Builds the transit graph once (cached per snapshot), appends all
        destinations' GSL edges — directed out of each destination node —
        into one sparse matrix, and computes every destination tree with a
        single multi-index Dijkstra call.
        """
        profiler = spans.ACTIVE
        span = (profiler.begin("routing.route_to_many")
                if profiler.enabled else -1)
        start = time.perf_counter()
        unique_gids = self._unique_gids(dst_gids)
        graph, dst_nodes = self.destination_graph(snapshot, unique_gids)
        distances, next_hop = self.solve_trees(graph, dst_nodes)
        elapsed = time.perf_counter() - start
        self.perf.trees_computed += len(unique_gids)
        self.perf.dijkstra_calls += 1
        self.perf.routing_compute_s += elapsed
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(float(snapshot.time_s), ROUTING_COMPUTE,
                        seq=len(unique_gids), value=elapsed)
        if span != -1:
            profiler.end(span)
        return MultiDestinationRouting(
            dst_gids=tuple(unique_gids),
            dst_nodes=dst_nodes,
            distance_m=distances,
            next_hop=next_hop,
            _row_of={gid: i for i, gid in enumerate(unique_gids)},
        )

    def route_to(self, snapshot: TopologySnapshot,
                 dst_gid: int) -> DestinationRouting:
        """Shortest-path state toward ``dst_gid`` at this snapshot."""
        multi = self.route_to_many(snapshot, [dst_gid])
        return multi.routing_for(dst_gid)

    @staticmethod
    def _unique_gids(dst_gids: Sequence[int]) -> List[int]:
        """Deduplicated int destination gids, first occurrence wins."""
        unique_gids: List[int] = []
        seen = set()
        for gid in dst_gids:
            gid = int(gid)
            if gid not in seen:
                seen.add(gid)
                unique_gids.append(gid)
        if not unique_gids:
            raise ValueError("need at least one destination gid")
        return unique_gids

    def destination_graph(self, snapshot: TopologySnapshot,
                          unique_gids: Sequence[int]
                          ) -> Tuple[csr_matrix, np.ndarray]:
        """The directed routing graph of one forwarding update.

        Transit edges (cached per snapshot) plus every destination's own
        GSLs directed out of the destination node, as one CSR matrix in
        canonical (row-major, column-sorted, duplicate-summed) form, so
        structurally identical updates produce byte-identical matrices.

        Returns:
            ``(graph, dst_nodes)`` — the (num_nodes, num_nodes) CSR
            matrix and the (D,) graph node ids of the destinations.
        """
        graph, dst_nodes, _ = self.destination_graph_coo(snapshot,
                                                         unique_gids)
        return graph, dst_nodes

    def destination_graph_coo(self, snapshot: TopologySnapshot,
                              unique_gids: Sequence[int]
                              ) -> Tuple[csr_matrix, np.ndarray,
                                         Tuple[np.ndarray, np.ndarray,
                                               np.ndarray]]:
        """:meth:`destination_graph` plus the canonical COO edge arrays.

        The CSR matrix is assembled directly from the edge triplets
        sorted by ``row * num_nodes + col`` — one argsort instead of
        scipy's generic COO machinery, which profiles several times
        slower on the per-snapshot hot path.  The sorted triplets are
        returned as well (they are what the incremental layer diffs), so
        callers never pay a ``tocoo`` round trip.  In the never-observed
        case of duplicate entries the build falls back to scipy's
        duplicate-summing constructor to preserve the canonical form.
        """
        num_nodes = self._num_nodes
        rows, cols, data = self._transit_arrays(snapshot)
        dst_nodes = np.array([snapshot.gs_node_id(gid)
                              for gid in unique_gids], dtype=np.int64)
        # Non-relay destinations contribute their own GSLs, directed
        # dst -> satellite so other trees cannot transit them; relay
        # destinations are already (symmetrically) in the transit graph.
        gsl_gids = [gid for gid in unique_gids
                    if gid not in self._relay_gid_set]
        gs_nodes, sat_ids, lengths = snapshot.gsl_edge_arrays(gsl_gids)
        if len(gs_nodes):
            rows = np.concatenate([rows, gs_nodes.astype(np.int64)])
            cols = np.concatenate([cols, sat_ids.astype(np.int64)])
            data = np.concatenate([data, lengths])
        order = np.argsort(rows * np.int64(num_nodes) + cols,
                           kind="stable")
        rows, cols, data = rows[order], cols[order], data[order]
        duplicates = (len(rows) > 1
                      and bool(np.any((rows[1:] == rows[:-1])
                                      & (cols[1:] == cols[:-1]))))
        if duplicates:
            graph = csr_matrix((data, (rows, cols)),
                               shape=(num_nodes, num_nodes))
            coo = graph.tocoo()
            rows = coo.row.astype(np.int64)
            cols = coo.col.astype(np.int64)
            data = coo.data
        else:
            counts = np.bincount(rows, minlength=num_nodes)
            indptr = np.concatenate(([0], np.cumsum(counts)))
            graph = csr_matrix((data, cols, indptr),
                               shape=(num_nodes, num_nodes))
        return graph, dst_nodes, (rows, cols, data)

    @staticmethod
    def solve_trees(graph: csr_matrix, dst_nodes: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """All destination trees of one update, from scratch.

        One multi-index C-level Dijkstra for the distances, then the
        canonical next-hop derivation (see :func:`canonical_next_hops`).
        """
        distances = np.atleast_2d(dijkstra(graph, directed=True,
                                           indices=dst_nodes))
        coo = graph.tocoo()
        next_hop = canonical_next_hops(coo.row.astype(np.int64),
                                       coo.col.astype(np.int64),
                                       coo.data, distances)
        return distances, next_hop

    def _transit_arrays(self, snapshot: TopologySnapshot
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed transit edge arrays, cached by snapshot identity.

        Transit links are symmetric, so each appears in both directions;
        the cache holds a strong reference to the snapshot, making
        identity comparison safe against id() reuse.
        """
        if snapshot is self._cached_snapshot:
            self.perf.transit_cache_hits += 1
            assert self._cached_transit is not None
            return self._cached_transit
        profiler = spans.ACTIVE
        span = (profiler.begin("routing.transit_build")
                if profiler.enabled else -1)
        rows, cols, data = self._transit_edges(snapshot)
        directed = (np.concatenate([rows, cols]),
                    np.concatenate([cols, rows]),
                    np.concatenate([data, data]))
        self._cached_snapshot = snapshot
        self._cached_transit = directed
        self.perf.transit_builds += 1
        if span != -1:
            profiler.end(span)
        return directed

    def _transit_edges(self, snapshot: TopologySnapshot
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One-way edge arrays of the transit graph (ISLs + relay GSLs)."""
        rows_list: List[np.ndarray] = [snapshot.isl_pairs[:, 0]]
        cols_list: List[np.ndarray] = [snapshot.isl_pairs[:, 1]]
        data_list: List[np.ndarray] = [snapshot.isl_lengths_m]
        relay_nodes, relay_sats, relay_lengths = snapshot.gsl_edge_arrays(
            self._relay_gids)
        if len(relay_nodes):
            rows_list.append(relay_nodes)
            cols_list.append(relay_sats)
            data_list.append(relay_lengths)
        return (np.concatenate(rows_list).astype(np.int64),
                np.concatenate(cols_list).astype(np.int64),
                np.concatenate(data_list).astype(np.float64))

    # ------------------------------------------------------------------
    # Pair-level queries
    # ------------------------------------------------------------------

    def pair_distance_m(self, snapshot: TopologySnapshot,
                        src_gid: int, dst_gid: int) -> float:
        """Shortest-path distance between two GSes; inf if disconnected.

        A station is at distance 0 from itself (consistent with
        :meth:`distances_to` and :meth:`all_pairs_distance_m`).
        """
        if src_gid == dst_gid:
            return 0.0
        routing = self.route_to(snapshot, dst_gid)
        _, distance = routing.source_ingress(snapshot.gsl_edges[src_gid])
        return distance

    def pair_rtt_s(self, snapshot: TopologySnapshot,
                   src_gid: int, dst_gid: int) -> float:
        """Propagation-only RTT between two GSes (paper's 'Computed' RTT)."""
        distance = self.pair_distance_m(snapshot, src_gid, dst_gid)
        return 2.0 * distance / SPEED_OF_LIGHT_M_PER_S

    def path(self, snapshot: TopologySnapshot, src_gid: int,
             dst_gid: int) -> Optional[List[int]]:
        """Node-id list of the shortest path, or None if disconnected.

        The list runs ``[src_node, ingress_sat, ..., egress_sat, dst_node]``
        and may include relay GS nodes in bent-pipe mode.
        """
        routing = self.route_to(snapshot, dst_gid)
        return self.path_via(routing, snapshot, src_gid)

    def path_via(self, routing: DestinationRouting,
                 snapshot: TopologySnapshot,
                 src_gid: int) -> Optional[List[int]]:
        """Like :meth:`path` but reusing an existing destination tree."""
        path, _ = self.path_and_distance_via(routing, snapshot, src_gid)
        return path

    def path_and_distance_via(self, routing: DestinationRouting,
                              snapshot: TopologySnapshot, src_gid: int
                              ) -> Tuple[Optional[List[int]], float]:
        """Shortest path *and* its distance, one ingress minimization.

        Like :meth:`path_via`, but also returns the source-to-destination
        distance the ingress choice already computed — callers that need
        both (the timeline inner loop) pay a single argmin over the
        source's GSLs instead of two.

        Returns:
            ``(path, distance_m)``; ``(None, inf)`` while disconnected.
        """
        src_edges = snapshot.gsl_edges[src_gid]
        ingress, distance = routing.source_ingress(src_edges)
        if ingress is None or not np.isfinite(distance):
            return None, float("inf")
        nodes = [snapshot.gs_node_id(src_gid)]
        current = ingress
        # Walk the shortest-path tree; bounded by node count.
        for _ in range(self._num_nodes + 1):
            nodes.append(int(current))
            if current == routing.dst_node:
                return nodes, distance
            current = routing.next_hop[current]
            if current == UNREACHABLE:
                return None, float("inf")
        raise RuntimeError("next-hop walk did not terminate; routing state "
                           "is inconsistent")

    def paths_many(self, snapshot: TopologySnapshot,
                   pairs: Sequence[Tuple[int, int]]
                   ) -> List[Optional[List[int]]]:
        """Shortest paths of many (src_gid, dst_gid) pairs, batched.

        All distinct destinations are routed in one Dijkstra call; pairs
        sharing a destination share its tree.  Returns one path (or None)
        per input pair, in order.
        """
        if not pairs:
            return []
        multi = self.route_to_many(snapshot, [dst for _, dst in pairs])
        return [
            self.path_via(multi.routing_for(dst_gid), snapshot, src_gid)
            for src_gid, dst_gid in pairs
        ]

    def distances_to(self, snapshot: TopologySnapshot, dst_gid: int,
                     src_gids: Sequence[int]) -> np.ndarray:
        """Distances from many sources to one destination (meters)."""
        routing = self.route_to(snapshot, dst_gid)
        out = np.empty(len(src_gids))
        for i, src_gid in enumerate(src_gids):
            if src_gid == dst_gid:
                out[i] = 0.0
                continue
            _, out[i] = routing.source_ingress(snapshot.gsl_edges[src_gid])
        return out

    def all_pairs_distance_m(self, snapshot: TopologySnapshot,
                             gids: Optional[Sequence[int]] = None
                             ) -> np.ndarray:
        """(G, G) matrix of GS-to-GS shortest-path distances.

        All destination trees come from one batched Dijkstra; each row is
        then a vectorized ingress minimization.  Symmetric by construction
        (links are symmetric); entry ``[i, j]`` is ``inf`` where no path
        exists and 0 wherever ``gids[i] == gids[j]``.
        """
        if gids is None:
            gids = range(self.network.num_ground_stations)
        gids = [int(g) for g in gids]
        multi = self.route_to_many(snapshot, gids)
        # Column -> batched row (distinct only if gids held duplicates).
        columns = [multi._row_of[gid] for gid in gids]
        matrix = np.zeros((len(gids), len(gids)))
        for i, src_gid in enumerate(gids):
            _, totals = multi.source_ingress_many(
                snapshot.gsl_edges[src_gid])
            matrix[i, :] = totals[columns]
        same = np.equal.outer(np.asarray(gids), np.asarray(gids))
        matrix[same] = 0.0
        return matrix
