"""Incremental shortest-path routing between consecutive snapshots.

Hypatia recomputes all forwarding state from scratch at every interval
(paper §3.1), yet consecutive snapshots often differ by a handful of
GSL/ISL edge changes — exactly the sparse delta the fault subsystem
produces when an outage begins or ends while satellite positions are
effectively unchanged.  This module exploits that sparsity:

* :func:`diff_graphs` extracts the edge delta (additions, removals,
  reweights) between two canonical routing graphs;
* :class:`IncrementalRouter` repairs the previous update's batched
  destination trees instead of recomputing them, via *affected-vertex
  repair*: invalidate the tree descendants of every worsened tree
  edge (pointer doubling over the parent arrays, all trees at once),
  seed the invalidated region from its intact boundary and every
  improved edge, then relax the seeds to the fixed point with batched
  frontier rounds shared across all destination trees;
* when the delta is large (every ISL length changes as satellites move,
  or the destination set changed), it falls back to the batched
  from-scratch :meth:`~repro.routing.engine.RoutingEngine.route_to_many`
  — the diff itself is a cheap vectorized merge, so fallback costs
  almost nothing on top of the full solve.

Bit-identical by construction: the final distance array of Dijkstra
with positive weights is the unique fixed point of
``dist[v] = min_u(dist[u] + w(u, v))`` over float64 — independent of
relaxation order — and the repair performs the same ``dist[u] + w``
additions the from-scratch run performs, so repaired distances equal
from-scratch distances bit-for-bit.  Next hops are a pure function of
the distances through the shared canonical rule
(:func:`repro.routing.engine.canonical_next_hops`); the repair
re-derives them only where an input of that rule changed, which yields
the same array bit-for-bit.  The property-style tests in
``tests/test_routing_incremental.py`` force the repair path on *dense*
deltas (every edge reweighted) and assert exact equality against the
from-scratch engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from ..obs import spans
from ..obs.trace import ROUTING_COMPUTE, Tracer
from ..topology.network import LeoNetwork, TopologySnapshot
from .engine import (MultiDestinationRouting, RoutingEngine,
                     RoutingPerfCounters, UNREACHABLE)

__all__ = ["GraphDelta", "IncrementalPerfCounters", "IncrementalRouter",
           "diff_graphs"]


@dataclass(frozen=True)
class GraphDelta:
    """The directed-edge delta between two canonical routing graphs.

    Symmetric transit links contribute both directions independently.
    ``worsened_*`` lists edges that vanished or got longer (they can only
    invalidate shortest paths), ``improved_*`` edges that appeared or got
    shorter (they can only create better paths); a reweighted edge lands
    in exactly one of the two.

    Attributes:
        worsened_u / worsened_v: Tail/head of removed or lengthened edges.
        improved_u / improved_v / improved_w: Tail/head/new weight of
            added or shortened edges.
        num_changed: Total changed directed edges.
        num_edges: Directed edge count of the *new* graph.
    """

    worsened_u: np.ndarray
    worsened_v: np.ndarray
    improved_u: np.ndarray
    improved_v: np.ndarray
    improved_w: np.ndarray
    num_changed: int
    num_edges: int

    @property
    def change_fraction(self) -> float:
        """Changed directed edges as a fraction of the new graph's."""
        return self.num_changed / max(self.num_edges, 1)


def diff_graphs(old_rows: np.ndarray, old_cols: np.ndarray,
                old_data: np.ndarray, new_rows: np.ndarray,
                new_cols: np.ndarray, new_data: np.ndarray,
                num_nodes: int) -> GraphDelta:
    """Edge delta between two canonical (lexsorted, coalesced) graphs.

    Both edge lists must be in canonical COO order — row-major with
    sorted columns and summed duplicates, which is exactly what
    ``csr_matrix(...).tocoo()`` yields — so the diff is one sorted merge
    over scalar ``row * num_nodes + col`` keys.
    """
    old_keys = old_rows * np.int64(num_nodes) + old_cols
    new_keys = new_rows * np.int64(num_nodes) + new_cols
    # Both key arrays are sorted and unique (canonical order), so the
    # merge is a single searchsorted — much cheaper than the argsort
    # np.intersect1d performs on the concatenation.
    if len(old_keys):
        pos = np.searchsorted(old_keys, new_keys)
        matched = (old_keys[np.minimum(pos, len(old_keys) - 1)]
                   == new_keys)
        old_idx = pos[matched]
        new_idx = np.nonzero(matched)[0]
    else:
        old_idx = np.empty(0, dtype=np.int64)
        new_idx = np.empty(0, dtype=np.int64)
    removed = np.ones(len(old_keys), dtype=bool)
    removed[old_idx] = False
    added = np.ones(len(new_keys), dtype=bool)
    added[new_idx] = False
    old_w = old_data[old_idx]
    new_w = new_data[new_idx]
    increased = new_w > old_w
    decreased = new_w < old_w
    worsened_u = np.concatenate([old_rows[removed], old_rows[old_idx][increased]])
    worsened_v = np.concatenate([old_cols[removed], old_cols[old_idx][increased]])
    improved_u = np.concatenate([new_rows[added], new_rows[new_idx][decreased]])
    improved_v = np.concatenate([new_cols[added], new_cols[new_idx][decreased]])
    improved_w = np.concatenate([new_data[added], new_w[decreased]])
    num_changed = (int(removed.sum()) + int(added.sum())
                   + int(increased.sum()) + int(decreased.sum()))
    return GraphDelta(
        worsened_u=worsened_u.astype(np.int64),
        worsened_v=worsened_v.astype(np.int64),
        improved_u=improved_u.astype(np.int64),
        improved_v=improved_v.astype(np.int64),
        improved_w=improved_w,
        num_changed=num_changed,
        num_edges=len(new_keys),
    )


@dataclass
class IncrementalPerfCounters:
    """Accounting of the incremental layer's decisions and work.

    Attributes:
        full_solves: From-scratch batched Dijkstra runs (first update,
            destination-set changes, and large-delta fallbacks).
        repairs: Updates served by affected-vertex repair.
        fallbacks_large_delta: Full solves forced by the delta exceeding
            the fallback fraction.
        snapshot_cache_hits: Updates answered from the per-snapshot
            result cache without any graph work.
        edges_changed: Directed edges changed across all diffed updates.
        vertices_invalidated: Tree vertices invalidated across repairs.
        repair_wall_s: Wall-clock seconds spent inside repairs (diff,
            invalidation, warm Dijkstra, next-hop rederivation).
    """

    full_solves: int = 0
    repairs: int = 0
    fallbacks_large_delta: int = 0
    snapshot_cache_hits: int = 0
    edges_changed: int = 0
    vertices_invalidated: int = 0
    repair_wall_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (benchmark-facing, like RoutingPerfCounters)."""
        return {
            "full_solves": self.full_solves,
            "repairs": self.repairs,
            "fallbacks_large_delta": self.fallbacks_large_delta,
            "snapshot_cache_hits": self.snapshot_cache_hits,
            "edges_changed": self.edges_changed,
            "vertices_invalidated": self.vertices_invalidated,
            "repair_wall_s": self.repair_wall_s,
        }


class IncrementalRouter(RoutingEngine):
    """A :class:`RoutingEngine` that repairs trees between snapshots.

    Drop-in replacement: every inherited query (``path_via``,
    ``paths_many``, ``all_pairs_distance_m``, ...) funnels through the
    overridden :meth:`route_to_many`, which diffs the new update's
    routing graph against the previous one and repairs the cached
    destination trees when the delta is sparse.

    Args:
        network: The LEO network (see :class:`RoutingEngine`).
        perf: Optional shared routing perf counters.
        tracer: Optional trace-event sink.
        fallback_fraction: Repair only while
            ``changed_edges <= fallback_fraction * num_edges``; larger
            deltas (every ISL length changes when satellites move) run
            the from-scratch batched Dijkstra instead.  Any value >= the
            maximum possible fraction (e.g. ``2.0``) forces the repair
            path always — correct but slow, used by the parity tests.
        inc_perf: Optional shared :class:`IncrementalPerfCounters`.
    """

    def __init__(self, network: LeoNetwork,
                 perf: Optional[RoutingPerfCounters] = None,
                 tracer: Optional[Tracer] = None,
                 fallback_fraction: float = 0.1,
                 inc_perf: Optional[IncrementalPerfCounters] = None) -> None:
        super().__init__(network, perf=perf, tracer=tracer)
        if fallback_fraction < 0.0:
            raise ValueError(
                f"fallback fraction must be >= 0, got {fallback_fraction}")
        self.fallback_fraction = fallback_fraction
        self.inc_perf = (inc_perf if inc_perf is not None
                         else IncrementalPerfCounters())
        self._prev_snapshot: Optional[TopologySnapshot] = None
        self._prev_gids: Optional[Tuple[int, ...]] = None
        self._prev_coo: Optional[Tuple[np.ndarray, np.ndarray,
                                       np.ndarray]] = None
        self._prev_result: Optional[MultiDestinationRouting] = None

    # ------------------------------------------------------------------
    # The incremental update
    # ------------------------------------------------------------------

    def route_to_many(self, snapshot: TopologySnapshot,
                      dst_gids: Sequence[int]) -> MultiDestinationRouting:
        """Forwarding state toward every destination, repaired when cheap.

        Bit-identical to
        :meth:`repro.routing.engine.RoutingEngine.route_to_many` on the
        same snapshot, whichever path (repair or fallback) runs.
        """
        unique_gids = self._unique_gids(dst_gids)
        if (self._prev_result is not None
                and snapshot is self._prev_snapshot
                and tuple(unique_gids) == self._prev_gids):
            self.inc_perf.snapshot_cache_hits += 1
            return self._prev_result
        profiler = spans.ACTIVE
        span = (profiler.begin("routing.route_to_many")
                if profiler.enabled else -1)
        start = time.perf_counter()
        graph, dst_nodes, (rows, cols, data) = self.destination_graph_coo(
            snapshot, unique_gids)
        delta = None
        if (self._prev_coo is not None
                and tuple(unique_gids) == self._prev_gids):
            prev_rows, prev_cols, prev_data = self._prev_coo
            delta = diff_graphs(prev_rows, prev_cols, prev_data,
                                rows, cols, data, self._num_nodes)
            self.inc_perf.edges_changed += delta.num_changed
            if delta.change_fraction > self.fallback_fraction:
                self.inc_perf.fallbacks_large_delta += 1
                delta = None
        if delta is None:
            distances, next_hop = self.solve_trees(graph, dst_nodes)
            self.inc_perf.full_solves += 1
            self.perf.dijkstra_calls += 1
        else:
            distances, next_hop = self._repair_trees(graph, delta)
            self.inc_perf.repairs += 1
        elapsed = time.perf_counter() - start
        self.perf.trees_computed += len(unique_gids)
        self.perf.routing_compute_s += elapsed
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(float(snapshot.time_s), ROUTING_COMPUTE,
                        seq=len(unique_gids), value=elapsed)
        result = MultiDestinationRouting(
            dst_gids=tuple(unique_gids),
            dst_nodes=dst_nodes,
            distance_m=distances,
            next_hop=next_hop,
            _row_of={gid: i for i, gid in enumerate(unique_gids)},
        )
        self._prev_snapshot = snapshot
        self._prev_gids = tuple(unique_gids)
        self._prev_coo = (rows, cols, data)
        self._prev_result = result
        if span != -1:
            profiler.end(span)
        return result

    def _repair_trees(self, graph: csr_matrix, delta: GraphDelta
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Repair every cached destination tree against ``delta``.

        Phases (each batched across all destination trees):

        1. *Invalidate*: a worsened edge ``u -> v`` that was ``v``'s tree
           edge (``prev_next_hop[v] == u``) strands ``v`` and its whole
           tree subtree — their old distances may no longer be
           achievable, so they reset to inf
           (:meth:`_invalidated_mask`).  Vertices whose tree path
           survived keep distances that remain achievable upper bounds.
        2. *Seed + settle*: every invalidated vertex is offered its best
           boundary value over still-finite in-neighbours, every
           improved edge offers ``dist[u] + w_new`` to its head, and
           frontier rounds relax the offers to the fixed point
           (:meth:`_settle`).
        3. *Next hops*: re-derived sparsely from the repaired distances
           (:meth:`_sparse_next_hops`).
        """
        profiler = spans.ACTIVE
        span = (profiler.begin("routing.incremental_repair")
                if profiler.enabled else -1)
        started = time.perf_counter()
        assert self._prev_result is not None
        prev = self._prev_result
        # Callers hold zero-copy views of the previous result's arrays:
        # repair fresh copies, never the cached matrices in place.
        distances = prev.distance_m.copy()
        csc = graph.tocsc()
        poison = self._invalidated_mask(prev.next_hop, delta, graph)
        self.inc_perf.vertices_invalidated += int(poison.sum())
        self._settle(distances, poison, delta, graph, csc)
        next_hop = self._sparse_next_hops(prev.next_hop, prev.distance_m,
                                          distances, delta, graph, csc)
        self.inc_perf.repair_wall_s += time.perf_counter() - started
        if span != -1:
            profiler.end(span)
        return distances, next_hop

    @staticmethod
    def _invalidated_mask(prev_next_hop: np.ndarray, delta: GraphDelta,
                          graph: csr_matrix) -> np.ndarray:
        """(D, num_nodes) bool: vertices whose old distance may be stale.

        A vertex is invalidated iff its previous-tree path to the root
        crosses a worsened tree edge.  The subtree closure descends from
        the seeds level by level over the *new* graph's adjacency, which
        is sound: a surviving tree edge ``v -> c`` is still in the new
        adjacency, and a deleted tree edge makes its child ``c`` a seed
        in its own right (the deleted edge is worsened and was ``c``'s
        tree edge).  Work is proportional to the stranded region, not to
        ``num_trees * num_nodes``.
        """
        num_trees, num_nodes = prev_next_hop.shape
        poison = np.zeros(num_trees * num_nodes, dtype=bool)
        if not len(delta.worsened_u):
            return poison.reshape(num_trees, num_nodes)
        # Seed: worsened edges that were tree edges, per tree.
        seeded = prev_next_hop[:, delta.worsened_v] == delta.worsened_u
        if not seeded.any():
            return poison.reshape(num_trees, num_nodes)
        tree_idx, edge_idx = np.nonzero(seeded)
        parents_flat = prev_next_hop.reshape(-1)
        frontier = _dedup(tree_idx * num_nodes
                          + delta.worsened_v[edge_idx])
        while len(frontier):
            poison[frontier] = True
            flat_idx, tree_rep, tail_rep = _gather_adjacency(
                graph.indptr, frontier // num_nodes, frontier % num_nodes)
            heads = graph.indices[flat_idx]
            keys = tree_rep * num_nodes + heads
            # Children: vertices whose previous tree edge came from the
            # frontier vertex.  Each child has one parent, so no
            # deduplication or revisit guard is needed.
            child = parents_flat[keys] == tail_rep
            frontier = keys[child]
        return poison.reshape(num_trees, num_nodes)

    @staticmethod
    def _settle(dist: np.ndarray, poison: np.ndarray, delta: GraphDelta,
                graph: csr_matrix, csc) -> None:
        """Drive ``dist`` (D, num_nodes) to the new graph's fixed point.

        Invalidated vertices reset to inf and are offered their best
        value over still-finite in-neighbours; improved edges offer
        ``dist[u] + w_new`` to their heads.  Batched frontier rounds
        (all trees at once, keyed by ``tree * num_nodes + vertex``) then
        relax every offer until no distance decreases.  Each update is
        the same float64 ``dist[u] + w`` a from-scratch Dijkstra
        performs, and the fixed point of
        ``dist[v] = min_u(dist[u] + w(u, v))`` with positive weights is
        unique and relaxation-order independent, so the settled
        distances are bit-identical to from-scratch.
        """
        num_trees, num_nodes = dist.shape
        flat = dist.reshape(-1)
        frontier_parts = []
        aff_keys = np.nonzero(poison.reshape(-1))[0]
        if len(aff_keys):
            flat[aff_keys] = np.inf
            flat_idx, tree_rep, head_rep = _gather_adjacency(
                csc.indptr, aff_keys // num_nodes, aff_keys % num_nodes)
            base = tree_rep * num_nodes
            offers = (flat[base + csc.indices[flat_idx]]
                      + csc.data[flat_idx])
            finite = np.isfinite(offers)
            keys = base[finite] + head_rep[finite]
            np.minimum.at(flat, keys, offers[finite])
            frontier_parts.append(keys)
        if len(delta.improved_u):
            offers = (dist[:, delta.improved_u]
                      + delta.improved_w).reshape(-1)
            keys = (np.arange(num_trees)[:, np.newaxis] * num_nodes
                    + delta.improved_v).reshape(-1)
            finite = np.isfinite(offers)
            keys, offers = keys[finite], offers[finite]
            before = flat[keys]
            np.minimum.at(flat, keys, offers)
            frontier_parts.append(keys[flat[keys] < before])
        if not frontier_parts:
            return
        frontier = _dedup(np.concatenate(frontier_parts))
        while len(frontier):
            flat_idx, tree_rep, tail_rep = _gather_adjacency(
                graph.indptr, frontier // num_nodes, frontier % num_nodes)
            if not len(flat_idx):
                return
            base = tree_rep * num_nodes
            offers = flat[base + tail_rep] + graph.data[flat_idx]
            keys = base + graph.indices[flat_idx]
            before = flat[keys]
            np.minimum.at(flat, keys, offers)
            frontier = _dedup(keys[flat[keys] < before])

    @staticmethod
    def _sparse_next_hops(prev_next_hop: np.ndarray, old_dist: np.ndarray,
                          new_dist: np.ndarray, delta: GraphDelta,
                          graph: csr_matrix, csc) -> np.ndarray:
        """Next hops for ``new_dist``, re-derived only where they can move.

        ``next_hop[v]`` is a pure function of ``dist[v]``, the in-edges
        of ``v``, and the in-neighbours' distances
        (:func:`~repro.routing.engine.canonical_next_hops`): the smallest
        tail id whose edge is tight.  Copying the previous next hops and
        re-deriving exactly the vertices where one of those inputs
        changed — distance-changed vertices, their graph out-neighbours
        (an in-neighbour's distance moved), and the heads of
        added/removed/reweighted edges — therefore reproduces the full
        derivation bit-for-bit.
        """
        num_trees, num_nodes = new_dist.shape
        next_hop = prev_next_hop.copy()
        new_flat = new_dist.reshape(-1)
        changed_keys = np.nonzero((new_dist != old_dist).reshape(-1))[0]
        parts = []
        if len(changed_keys):
            parts.append(changed_keys)
            flat_idx, tree_rep, _ = _gather_adjacency(
                graph.indptr, changed_keys // num_nodes,
                changed_keys % num_nodes)
            parts.append(tree_rep * num_nodes + graph.indices[flat_idx])
        changed_heads = _dedup(np.concatenate([delta.worsened_v,
                                               delta.improved_v]))
        if len(changed_heads):
            parts.append((np.arange(num_trees)[:, np.newaxis] * num_nodes
                          + changed_heads).reshape(-1))
        if not parts:
            return next_hop
        keys = _dedup(np.concatenate(parts))
        flat_idx, tree_rep, head_rep = _gather_adjacency(
            csc.indptr, keys // num_nodes, keys % num_nodes)
        tails = csc.indices[flat_idx]
        base = tree_rep * num_nodes
        head_keys = base + head_rep
        head_d = new_flat[head_keys]
        tight = ((new_flat[base + tails] + csc.data[flat_idx] == head_d)
                 & np.isfinite(head_d))
        sentinel = num_nodes  # greater than any node id
        best = np.full(num_trees * num_nodes, sentinel, dtype=np.int64)
        np.minimum.at(best, head_keys[tight], tails[tight])
        chosen = best[keys]
        next_hop.reshape(-1)[keys] = np.where(chosen == sentinel,
                                              UNREACHABLE, chosen)
        return next_hop


def _dedup(keys: np.ndarray) -> np.ndarray:
    """Sorted unique values of an int64 key array.

    Sort-based rather than ``np.unique``: the hash path numpy picks for
    small integer arrays is an order of magnitude slower than sorting at
    the sizes the repair loop sees (hundreds to a few thousand keys).
    """
    if len(keys) <= 1:
        return keys
    keys = np.sort(keys)
    keep = np.empty(len(keys), dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    return keys[keep]


def _gather_adjacency(indptr: np.ndarray, tree_idx: np.ndarray,
                      vertex_idx: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat adjacency positions of many (tree, vertex) pairs at once.

    Returns ``(flat_idx, tree_rep, vertex_rep)``: ``flat_idx`` indexes
    the CSR/CSC ``indices``/``data`` arrays with every incident edge of
    every requested vertex, and the ``*_rep`` arrays repeat each input
    pair once per such edge.
    """
    starts = indptr[vertex_idx].astype(np.int64)
    lengths = indptr[vertex_idx + 1].astype(np.int64) - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    flat_idx = np.repeat(starts - offsets, lengths) + np.arange(total)
    return flat_idx, np.repeat(tree_idx, lengths), np.repeat(vertex_idx,
                                                             lengths)
