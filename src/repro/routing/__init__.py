"""Shortest-path routing and forwarding state over topology snapshots."""

from .engine import (
    UNREACHABLE,
    DestinationRouting,
    MultiDestinationRouting,
    RoutingEngine,
    RoutingPerfCounters,
    canonical_next_hops,
)
from .incremental import (
    GraphDelta,
    IncrementalPerfCounters,
    IncrementalRouter,
    diff_graphs,
)
from .multipath import (
    edge_disjoint_paths,
    edge_disjoint_paths_many,
    k_shortest_paths,
    k_shortest_paths_many,
    path_distance_m,
)

__all__ = [
    "UNREACHABLE",
    "DestinationRouting",
    "MultiDestinationRouting",
    "RoutingEngine",
    "RoutingPerfCounters",
    "canonical_next_hops",
    "GraphDelta",
    "IncrementalPerfCounters",
    "IncrementalRouter",
    "diff_graphs",
    "edge_disjoint_paths",
    "edge_disjoint_paths_many",
    "k_shortest_paths",
    "k_shortest_paths_many",
    "path_distance_m",
]
