"""Shortest-path routing and forwarding state over topology snapshots."""

from .engine import (
    UNREACHABLE,
    DestinationRouting,
    MultiDestinationRouting,
    RoutingEngine,
    RoutingPerfCounters,
)
from .multipath import edge_disjoint_paths, k_shortest_paths, path_distance_m

__all__ = [
    "UNREACHABLE",
    "DestinationRouting",
    "MultiDestinationRouting",
    "RoutingEngine",
    "RoutingPerfCounters",
    "edge_disjoint_paths",
    "k_shortest_paths",
    "path_distance_m",
]
