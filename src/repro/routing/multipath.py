"""Multipath routing (paper §7: "work on multi-path routing ... will
require some modifications to Hypatia").

Two primitives over a topology snapshot:

* :func:`k_shortest_paths` — Yen-style loopless k-shortest paths between
  two ground stations (via networkx over the GS-transit-excluded graph);
* :func:`edge_disjoint_paths` — greedy edge-disjoint path set, the
  building block for traffic-splitting schemes that avoid shared
  bottlenecks (the paper's §5.4/TE takeaway).

Both honor the framework's rule that only satellites (and relays) forward:
other ground stations are removed from the search graph.
"""

from __future__ import annotations

from itertools import islice
from typing import List, Optional, Tuple

import networkx as nx

from ..topology.network import TopologySnapshot

__all__ = ["k_shortest_paths", "edge_disjoint_paths", "path_distance_m"]


def _search_graph(snapshot: TopologySnapshot, src_gid: int,
                  dst_gid: int) -> nx.Graph:
    """The snapshot graph with third-party (non-relay) GSes removed."""
    graph = snapshot.to_networkx()
    keep = {snapshot.gs_node_id(src_gid), snapshot.gs_node_id(dst_gid)}
    for gid in range(snapshot.num_ground_stations):
        node = snapshot.gs_node_id(gid)
        if node not in keep and not graph.nodes[node].get("is_relay", False):
            graph.remove_node(node)
    return graph


def path_distance_m(graph: nx.Graph, path: List[int]) -> float:
    """Total length of a path in the snapshot graph."""
    return sum(graph[a][b]["distance_m"] for a, b in zip(path, path[1:]))


def k_shortest_paths(snapshot: TopologySnapshot, src_gid: int,
                     dst_gid: int, k: int
                     ) -> List[Tuple[List[int], float]]:
    """The ``k`` shortest loopless paths between two ground stations.

    Args:
        snapshot: The topology at one instant.
        src_gid / dst_gid: Endpoints.
        k: Number of paths requested.

    Returns:
        Up to ``k`` ``(node-id path, distance_m)`` tuples, sorted by
        distance; empty if the pair is disconnected.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if src_gid == dst_gid:
        raise ValueError("endpoints must differ")
    graph = _search_graph(snapshot, src_gid, dst_gid)
    src = snapshot.gs_node_id(src_gid)
    dst = snapshot.gs_node_id(dst_gid)
    try:
        generator = nx.shortest_simple_paths(graph, src, dst,
                                             weight="distance_m")
        paths = list(islice(generator, k))
    except nx.NetworkXNoPath:
        return []
    return [(path, path_distance_m(graph, path)) for path in paths]


def edge_disjoint_paths(snapshot: TopologySnapshot, src_gid: int,
                        dst_gid: int, max_paths: int = 4
                        ) -> List[Tuple[List[int], float]]:
    """Greedy shortest edge-disjoint paths between two ground stations.

    Repeatedly takes the current shortest path and removes its edges;
    stops when the pair disconnects or ``max_paths`` is reached.  Greedy
    disjoint routing is the classic baseline for multipath TE: no two
    returned paths share any ISL or GSL, so splitting traffic across them
    cannot self-contend.
    """
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")
    graph = _search_graph(snapshot, src_gid, dst_gid)
    src = snapshot.gs_node_id(src_gid)
    dst = snapshot.gs_node_id(dst_gid)
    found: List[Tuple[List[int], float]] = []
    for _ in range(max_paths):
        try:
            path = nx.shortest_path(graph, src, dst, weight="distance_m")
        except nx.NetworkXNoPath:
            break
        found.append((path, path_distance_m(graph, path)))
        graph.remove_edges_from(list(zip(path, path[1:])))
    return found
