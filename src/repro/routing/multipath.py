"""Multipath routing (paper §7: "work on multi-path routing ... will
require some modifications to Hypatia").

Two primitives over a topology snapshot:

* :func:`k_shortest_paths` — Yen-style loopless k-shortest paths between
  two ground stations (via networkx over the GS-transit-excluded graph);
* :func:`edge_disjoint_paths` — greedy edge-disjoint path set, the
  building block for traffic-splitting schemes that avoid shared
  bottlenecks (the paper's §5.4/TE takeaway).

Both honor the framework's rule that only satellites (and relays) forward:
other ground stations are removed from the search graph.

At sweep scale, use the batched :func:`k_shortest_paths_many` /
:func:`edge_disjoint_paths_many` precompute: they materialize the
snapshot graph once and evaluate every pair through
:func:`networkx.restricted_view` (an O(1) overlay hiding third-party
ground stations and consumed edges), instead of rebuilding and pruning
the full graph per pair.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..topology.network import TopologySnapshot

__all__ = ["k_shortest_paths", "edge_disjoint_paths", "path_distance_m",
           "k_shortest_paths_many", "edge_disjoint_paths_many"]

PairKey = Tuple[int, int]
PathSet = List[Tuple[List[int], float]]


def _validate_pair(src_gid: int, dst_gid: int) -> None:
    if src_gid == dst_gid:
        raise ValueError("endpoints must differ")


def _search_graph(snapshot: TopologySnapshot, src_gid: int,
                  dst_gid: int) -> nx.Graph:
    """The snapshot graph with third-party (non-relay) GSes removed."""
    graph = snapshot.to_networkx()
    keep = {snapshot.gs_node_id(src_gid), snapshot.gs_node_id(dst_gid)}
    for gid in range(snapshot.num_ground_stations):
        node = snapshot.gs_node_id(gid)
        if node not in keep and not graph.nodes[node].get("is_relay", False):
            graph.remove_node(node)
    return graph


def _hidden_gs_nodes(snapshot: TopologySnapshot, graph: nx.Graph,
                     src_gid: int, dst_gid: int) -> List[int]:
    """Third-party non-relay GS nodes to hide for one pair's search."""
    keep = {snapshot.gs_node_id(src_gid), snapshot.gs_node_id(dst_gid)}
    return [
        node for gid in range(snapshot.num_ground_stations)
        if (node := snapshot.gs_node_id(gid)) not in keep
        and not graph.nodes[node].get("is_relay", False)
    ]


def path_distance_m(graph: nx.Graph, path: List[int]) -> float:
    """Total length of a path in the snapshot graph."""
    return sum(graph[a][b]["distance_m"] for a, b in zip(path, path[1:]))


def k_shortest_paths(snapshot: TopologySnapshot, src_gid: int,
                     dst_gid: int, k: int
                     ) -> List[Tuple[List[int], float]]:
    """The ``k`` shortest loopless paths between two ground stations.

    Args:
        snapshot: The topology at one instant.
        src_gid / dst_gid: Endpoints.
        k: Number of paths requested.

    Returns:
        Up to ``k`` ``(node-id path, distance_m)`` tuples, sorted by
        distance; empty if the pair is disconnected.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    _validate_pair(src_gid, dst_gid)
    graph = _search_graph(snapshot, src_gid, dst_gid)
    return _k_shortest_in(graph, snapshot.gs_node_id(src_gid),
                          snapshot.gs_node_id(dst_gid), k)


def _k_shortest_in(graph: nx.Graph, src: int, dst: int, k: int) -> PathSet:
    try:
        generator = nx.shortest_simple_paths(graph, src, dst,
                                             weight="distance_m")
        paths = list(islice(generator, k))
    except nx.NetworkXNoPath:
        return []
    return [(path, path_distance_m(graph, path)) for path in paths]


def edge_disjoint_paths(snapshot: TopologySnapshot, src_gid: int,
                        dst_gid: int, max_paths: int = 4
                        ) -> List[Tuple[List[int], float]]:
    """Greedy shortest edge-disjoint paths between two ground stations.

    Repeatedly takes the current shortest path and removes its edges;
    stops when the pair disconnects or ``max_paths`` is reached.  Greedy
    disjoint routing is the classic baseline for multipath TE: no two
    returned paths share any ISL or GSL, so splitting traffic across them
    cannot self-contend.
    """
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")
    # Equal endpoints used to slip through here and return ``max_paths``
    # copies of the degenerate single-node path [src] at distance 0
    # (nothing removes an edge, so the "shortest path" never changes).
    _validate_pair(src_gid, dst_gid)
    graph = _search_graph(snapshot, src_gid, dst_gid)
    src = snapshot.gs_node_id(src_gid)
    dst = snapshot.gs_node_id(dst_gid)
    found: PathSet = []
    for _ in range(max_paths):
        try:
            path = nx.shortest_path(graph, src, dst, weight="distance_m")
        except nx.NetworkXNoPath:
            break
        found.append((path, path_distance_m(graph, path)))
        graph.remove_edges_from(list(zip(path, path[1:])))
    return found


def k_shortest_paths_many(snapshot: TopologySnapshot,
                          pairs: Sequence[PairKey], k: int
                          ) -> Dict[PairKey, PathSet]:
    """Batched :func:`k_shortest_paths` over many pairs of one snapshot.

    Builds the snapshot graph once and searches each pair through a
    :func:`networkx.restricted_view` overlay hiding that pair's
    third-party ground stations — the per-pair graph rebuild (the
    dominant cost at sweep scale) is paid a single time.  Results match
    :func:`k_shortest_paths` pair for pair.

    Args:
        snapshot: The topology at one instant.
        pairs: (src_gid, dst_gid) pairs; duplicates are computed once.
        k: Number of paths requested per pair.

    Returns:
        pair -> up to ``k`` ``(node-id path, distance_m)`` tuples.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    graph = snapshot.to_networkx()
    results: Dict[PairKey, PathSet] = {}
    for src_gid, dst_gid in pairs:
        pair = (int(src_gid), int(dst_gid))
        if pair in results:
            continue
        _validate_pair(*pair)
        view = nx.restricted_view(
            graph, _hidden_gs_nodes(snapshot, graph, *pair), ())
        results[pair] = _k_shortest_in(
            view, snapshot.gs_node_id(pair[0]),
            snapshot.gs_node_id(pair[1]), k)
    return results


def edge_disjoint_paths_many(snapshot: TopologySnapshot,
                             pairs: Sequence[PairKey], max_paths: int = 4
                             ) -> Dict[PairKey, PathSet]:
    """Batched :func:`edge_disjoint_paths` over many pairs of one snapshot.

    One graph build serves every pair; each pair's greedy elimination
    runs over a :func:`networkx.restricted_view` that hides its
    third-party ground stations plus the edges its earlier paths
    consumed (edge hiding is symmetric on undirected graphs), so the
    base graph is never mutated.  Results match
    :func:`edge_disjoint_paths` pair for pair.

    Args:
        snapshot: The topology at one instant.
        pairs: (src_gid, dst_gid) pairs; duplicates are computed once.
        max_paths: Per-pair cap on the disjoint set size.

    Returns:
        pair -> edge-disjoint ``(node-id path, distance_m)`` tuples.
    """
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")
    graph = snapshot.to_networkx()
    results: Dict[PairKey, PathSet] = {}
    for src_gid, dst_gid in pairs:
        pair = (int(src_gid), int(dst_gid))
        if pair in results:
            continue
        _validate_pair(*pair)
        hidden = _hidden_gs_nodes(snapshot, graph, *pair)
        src = snapshot.gs_node_id(pair[0])
        dst = snapshot.gs_node_id(pair[1])
        consumed: List[Tuple[int, int]] = []
        found: PathSet = []
        for _ in range(max_paths):
            view = nx.restricted_view(graph, hidden, consumed)
            try:
                path = nx.shortest_path(view, src, dst,
                                        weight="distance_m")
            except nx.NetworkXNoPath:
                break
            found.append((path, path_distance_m(graph, path)))
            consumed.extend(zip(path, path[1:]))
        results[pair] = found
    return results
