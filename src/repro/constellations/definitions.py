"""Shell configurations of the three largest proposed constellations.

These are the rows of paper Table 1, taken from the operators' FCC and ITU
filings, together with the minimum elevation angles the paper uses in §5:
Starlink 25 deg, Kuiper 30 deg (the filings say "20(min)/30/35/45"), and
Telesat 10 deg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..orbits.shell import Shell

__all__ = [
    "ConstellationSpec",
    "STARLINK_SHELLS",
    "KUIPER_SHELLS",
    "TELESAT_SHELLS",
    "STARLINK_S1",
    "KUIPER_K1",
    "TELESAT_T1",
    "ALL_SHELLS",
    "FIRST_SHELLS",
    "shell_by_name",
    "geostationary_belt",
    "GEO_ALTITUDE_M",
]


@dataclass(frozen=True)
class ConstellationSpec:
    """A named constellation: its shells plus connectivity parameters.

    Attributes:
        name: Operator name ("Starlink", "Kuiper", "Telesat").
        shells: The shells being deployed, in deployment order.
        min_elevation_deg: Minimum angle of elevation ``l`` below which a
            ground station cannot communicate with a satellite (paper §2.1).
        isls_per_satellite: Number of laser inter-satellite links each
            satellite carries; 4 for all modeled systems (paper §3.1).
    """

    name: str
    shells: Tuple[Shell, ...]
    min_elevation_deg: float
    isls_per_satellite: int = 4

    @property
    def total_satellites(self) -> int:
        """Total satellites across all shells."""
        return sum(shell.total_satellites for shell in self.shells)

    def first_shell(self) -> Shell:
        """The first-deployed shell (S1 / K1 / T1), used throughout §4-§5."""
        return self.shells[0]


def _shell(name: str, altitude_km: float, num_orbits: int,
           satellites_per_orbit: int, inclination_deg: float) -> Shell:
    """Shell from Table 1 units (km altitude)."""
    return Shell(
        name=name,
        num_orbits=num_orbits,
        satellites_per_orbit=satellites_per_orbit,
        altitude_m=altitude_km * 1000.0,
        inclination_deg=inclination_deg,
    )


# Starlink first phase: 4,409 satellites over 5 shells (Table 1).
STARLINK_S1 = _shell("S1", 550.0, 72, 22, 53.0)
STARLINK_SHELLS = ConstellationSpec(
    name="Starlink",
    shells=(
        STARLINK_S1,
        _shell("S2", 1110.0, 32, 50, 53.8),
        _shell("S3", 1130.0, 8, 50, 74.0),
        _shell("S4", 1275.0, 5, 75, 81.0),
        _shell("S5", 1325.0, 6, 75, 70.0),
    ),
    min_elevation_deg=25.0,
)

# Kuiper: 3,236 satellites over 3 shells (Table 1).
KUIPER_K1 = _shell("K1", 630.0, 34, 34, 51.9)
KUIPER_SHELLS = ConstellationSpec(
    name="Kuiper",
    shells=(
        KUIPER_K1,
        _shell("K2", 610.0, 36, 36, 42.0),
        _shell("K3", 590.0, 28, 28, 33.0),
    ),
    min_elevation_deg=30.0,
)

# Telesat: 1,671 satellites over 2 shells (Table 1; the paper's T1/T2 rows
# sum to fewer because spares are excluded from the orbital description).
TELESAT_T1 = _shell("T1", 1015.0, 27, 13, 98.98)
TELESAT_SHELLS = ConstellationSpec(
    name="Telesat",
    shells=(
        TELESAT_T1,
        _shell("T2", 1325.0, 40, 33, 50.88),
    ),
    min_elevation_deg=10.0,
)

#: All constellations by operator name.
ALL_SHELLS: Dict[str, ConstellationSpec] = {
    spec.name: spec
    for spec in (STARLINK_SHELLS, KUIPER_SHELLS, TELESAT_SHELLS)
}

#: The first-deployed shell of each operator — the workhorses of §4-§5.
FIRST_SHELLS: Dict[str, Shell] = {
    name: spec.first_shell() for name, spec in ALL_SHELLS.items()
}


#: Geostationary altitude (paper §2.4: GEO constellations like HughesNet /
#: Viasat operate at 35,786 km and incur hundreds of ms of latency).
GEO_ALTITUDE_M = 35_786_000.0


def geostationary_belt(num_satellites: int = 3,
                       name: str = "GEO") -> Shell:
    """A belt of equally spaced geostationary satellites.

    Modeled as a single equatorial orbit at GEO altitude; its orbital
    period matches the sidereal day, so the satellites are stationary in
    the Earth-fixed frame — exactly the GEO behaviour of paper §2.4
    ("their GEO satellites are, by definition, stationary with respect to
    the Earth, and thus do not feature LEO dynamics").  Paper §7 lists
    GEO-LEO connectivity as a straightforward extension; this shell plugs
    into :class:`~repro.constellations.builder.Constellation` like any
    other.
    """
    if num_satellites < 1:
        raise ValueError("need at least one satellite")
    return Shell(
        name=name,
        num_orbits=1,
        satellites_per_orbit=num_satellites,
        altitude_m=GEO_ALTITUDE_M,
        inclination_deg=0.0,
    )


def shell_by_name(shell_name: str) -> Shell:
    """Look up any Table 1 shell by its label (``"S1"`` ... ``"T2"``).

    Raises:
        KeyError: If no shell carries that label.
    """
    for spec in ALL_SHELLS.values():
        for shell in spec.shells:
            if shell.name == shell_name:
                return shell
    raise KeyError(f"unknown shell {shell_name!r}; "
                   f"known: S1-S5, K1-K3, T1-T2")
