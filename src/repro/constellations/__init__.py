"""Constellation definitions (paper Table 1) and satellite instantiation."""

from .builder import Constellation, Satellite
from .definitions import (
    ALL_SHELLS,
    FIRST_SHELLS,
    ConstellationSpec,
    KUIPER_K1,
    KUIPER_SHELLS,
    STARLINK_S1,
    STARLINK_SHELLS,
    TELESAT_T1,
    TELESAT_SHELLS,
    shell_by_name,
)

__all__ = [
    "Constellation",
    "Satellite",
    "ALL_SHELLS",
    "FIRST_SHELLS",
    "ConstellationSpec",
    "KUIPER_K1",
    "KUIPER_SHELLS",
    "STARLINK_S1",
    "STARLINK_SHELLS",
    "TELESAT_T1",
    "TELESAT_SHELLS",
    "shell_by_name",
]
