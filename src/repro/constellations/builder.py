"""Constellation construction: shells -> concrete satellites over time.

A :class:`Constellation` instantiates every satellite of one or more shells,
assigns global satellite ids, and computes all satellite positions at any
time with a single vectorized evaluation.  Positions are what the rest of
the framework consumes: ISL lengths, GSL visibility, and per-packet delays
are all derived from them.

The vectorized path exploits that every modeled shell is circular (e = 0):
the argument of latitude then advances linearly in time, so an entire
constellation's ECEF positions at time ``t`` cost a handful of numpy
operations.  Elliptical elements remain supported through the scalar
propagator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.constants import EARTH_ROTATION_RATE_RAD_PER_S
from ..orbits.kepler import KeplerianElements
from ..orbits.propagation import propagate_to_ecef
from ..orbits.shell import SatelliteIndex, Shell
from ..orbits.tle import TLE, generate_tle

__all__ = ["Satellite", "Constellation"]


@dataclass(frozen=True)
class Satellite:
    """One satellite of a constellation.

    Attributes:
        satellite_id: Global id, unique across all shells of the
            constellation; shells occupy consecutive id ranges.
        shell_name: Label of the owning shell (e.g. ``"K1"``).
        index: Orbit / in-orbit position within the shell.
        elements: Osculating Keplerian elements at the epoch.
    """

    satellite_id: int
    shell_name: str
    index: SatelliteIndex
    elements: KeplerianElements

    @property
    def name(self) -> str:
        """Human-readable satellite name, also used in generated TLEs."""
        return (f"{self.shell_name}-{self.index.orbit}"
                f"-{self.index.position_in_orbit}")


class Constellation:
    """All satellites of one or more shells, with fast position queries.

    Args:
        shells: Shells to instantiate, in order; global satellite ids are
            assigned shell by shell.
        name: Constellation name used in exports; defaults to the joined
            shell labels.

    Example:
        >>> from repro.constellations import KUIPER_K1
        >>> constellation = Constellation([KUIPER_K1])
        >>> positions = constellation.positions_ecef_m(10.0)
        >>> positions.shape
        (1156, 3)
    """

    def __init__(self, shells: Sequence[Shell],
                 name: Optional[str] = None,
                 epoch_offset_s: float = 0.0) -> None:
        if not shells:
            raise ValueError("a constellation needs at least one shell")
        names = [shell.name for shell in shells]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shell names: {names}")
        self.shells: Tuple[Shell, ...] = tuple(shells)
        self.name = name or "+".join(names)
        #: Simulation time 0 corresponds to this many seconds of satellite
        #: motion past the nominal epoch — lets experiments window around
        #: connectivity events without changing the schedule.
        self.epoch_offset_s = epoch_offset_s
        self._shell_id_offset: Dict[str, int] = {}
        self.satellites: List[Satellite] = []
        for shell in self.shells:
            self._shell_id_offset[shell.name] = len(self.satellites)
            for index in shell.iter_indices():
                self.satellites.append(Satellite(
                    satellite_id=len(self.satellites),
                    shell_name=shell.name,
                    index=index,
                    elements=shell.elements_for(index),
                ))
        self._build_vectorized_state()

    def _build_vectorized_state(self) -> None:
        """Cache per-satellite arrays for the vectorized circular path."""
        n = len(self.satellites)
        self._radius_m = np.empty(n)
        self._raan_rad = np.empty(n)
        self._inclination_rad = np.empty(n)
        self._anomaly_rad = np.empty(n)
        self._mean_motion = np.empty(n)
        self._all_circular = True
        for i, sat in enumerate(self.satellites):
            el = sat.elements
            if el.eccentricity != 0.0:
                self._all_circular = False
            self._radius_m[i] = el.semi_major_axis_m
            self._raan_rad[i] = el.raan_rad
            self._inclination_rad[i] = el.inclination_rad
            # For circular orbits the argument of latitude at the epoch is
            # the mean anomaly plus the argument of periapsis.
            self._anomaly_rad[i] = el.mean_anomaly_rad + el.arg_periapsis_rad
            self._mean_motion[i] = el.mean_motion_rad_per_s

    def __len__(self) -> int:
        return len(self.satellites)

    @property
    def num_satellites(self) -> int:
        """Total number of satellites across all shells."""
        return len(self.satellites)

    def satellite(self, satellite_id: int) -> Satellite:
        """The satellite with the given global id."""
        return self.satellites[satellite_id]

    def satellite_id(self, shell_name: str, index: SatelliteIndex) -> int:
        """Global id of a (shell, orbit, position) satellite."""
        offset = self._shell_id_offset[shell_name]
        shell = next(s for s in self.shells if s.name == shell_name)
        return offset + shell.satellite_id(index)

    def shell_of(self, satellite_id: int) -> Shell:
        """The shell that owns the given satellite id."""
        shell_name = self.satellites[satellite_id].shell_name
        return next(s for s in self.shells if s.name == shell_name)

    def positions_eci_m(self, time_s: float) -> np.ndarray:
        """(N, 3) ECI positions of all satellites at ``time_s``."""
        time_s = time_s + self.epoch_offset_s
        if not self._all_circular:
            return np.array([
                _scalar_eci(sat.elements, time_s) for sat in self.satellites])
        u = self._anomaly_rad + self._mean_motion * time_s
        r = self._radius_m
        cos_u, sin_u = np.cos(u), np.sin(u)
        cos_o, sin_o = np.cos(self._raan_rad), np.sin(self._raan_rad)
        cos_i, sin_i = (np.cos(self._inclination_rad),
                        np.sin(self._inclination_rad))
        x_orb = r * cos_u
        y_orb = r * sin_u
        return np.column_stack([
            x_orb * cos_o - y_orb * cos_i * sin_o,
            x_orb * sin_o + y_orb * cos_i * cos_o,
            y_orb * sin_i,
        ])

    def positions_ecef_m(self, time_s: float) -> np.ndarray:
        """(N, 3) ECEF positions of all satellites at ``time_s``."""
        eci = self.positions_eci_m(time_s)
        theta = EARTH_ROTATION_RATE_RAD_PER_S * (time_s
                                                 + self.epoch_offset_s)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        x = eci[:, 0] * cos_t + eci[:, 1] * sin_t
        y = -eci[:, 0] * sin_t + eci[:, 1] * cos_t
        return np.column_stack([x, y, eci[:, 2]])

    def position_ecef_m(self, satellite_id: int, time_s: float) -> np.ndarray:
        """ECEF position of a single satellite at ``time_s``."""
        sat = self.satellites[satellite_id]
        if sat.elements.eccentricity == 0.0:
            return self.positions_ecef_m(time_s)[satellite_id]
        return propagate_to_ecef(sat.elements,
                                 time_s + self.epoch_offset_s).position_m

    def generate_tles(self, epoch_year: int = 2000,
                      epoch_day: float = 1.0) -> List[TLE]:
        """TLEs for every satellite, in global-id order (paper §3.1)."""
        return [
            generate_tle(sat.elements, name=sat.name,
                         catalog_number=sat.satellite_id,
                         epoch_year=epoch_year, epoch_day=epoch_day)
            for sat in self.satellites
        ]

    def describe(self) -> str:
        """A short multi-line summary, one line per shell."""
        lines = [f"Constellation {self.name}: "
                 f"{self.num_satellites} satellites, {len(self.shells)} shell(s)"]
        for shell in self.shells:
            lines.append(
                f"  {shell.name}: {shell.num_orbits} orbits x "
                f"{shell.satellites_per_orbit} sats @ {shell.altitude_km:.0f} km, "
                f"i={shell.inclination_deg:.2f} deg")
        return "\n".join(lines)


def _scalar_eci(elements: KeplerianElements, time_s: float) -> np.ndarray:
    """Scalar ECI position used on the (rare) elliptical fallback path."""
    from ..orbits.propagation import propagate_to_eci
    return propagate_to_eci(elements, time_s).position_m
