"""Ground observer's sky view (paper §6, Fig. 12).

For a given GS location and constellation: which satellites are where in
the sky (azimuth along the horizon, elevation above it), which of them are
above the minimum elevation angle, and how that evolves — including the
reachability gaps that explain St. Petersburg's intermittent Kuiper
connectivity (Fig. 3(a)'s shaded disruption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..constellations.builder import Constellation
from ..ground.stations import GroundStation
from ..ground.visibility import azimuth_elevation_deg

__all__ = ["SkySnapshot", "sky_snapshot", "reachability_timeline"]


@dataclass(frozen=True)
class SkySnapshot:
    """Sky state above one GS at one instant.

    Attributes:
        time_s: Snapshot time.
        azimuths_deg: (K,) azimuth of each above-horizon satellite
            (0 = North, 90 = East).
        elevations_deg: (K,) elevation of each above-horizon satellite.
        satellite_ids: (K,) their ids.
        connectable: (K,) bool, elevation >= the minimum angle.
    """

    time_s: float
    azimuths_deg: np.ndarray
    elevations_deg: np.ndarray
    satellite_ids: np.ndarray
    connectable: np.ndarray

    @property
    def num_above_horizon(self) -> int:
        return len(self.satellite_ids)

    @property
    def num_connectable(self) -> int:
        return int(self.connectable.sum())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form for external plotting."""
        return {
            "time_s": self.time_s,
            "satellites": [
                {
                    "id": int(sid),
                    "azimuth_deg": float(az),
                    "elevation_deg": float(el),
                    "connectable": bool(ok),
                }
                for sid, az, el, ok in zip(
                    self.satellite_ids, self.azimuths_deg,
                    self.elevations_deg, self.connectable)
            ],
        }


def sky_snapshot(constellation: Constellation, station: GroundStation,
                 min_elevation_deg: float, time_s: float) -> SkySnapshot:
    """The Fig. 12 view: all above-horizon satellites from one GS."""
    positions = constellation.positions_ecef_m(time_s)
    azimuths, elevations = azimuth_elevation_deg(station, positions)
    above = np.nonzero(elevations > 0.0)[0]
    return SkySnapshot(
        time_s=time_s,
        azimuths_deg=azimuths[above],
        elevations_deg=elevations[above],
        satellite_ids=above.astype(np.int64),
        connectable=elevations[above] >= min_elevation_deg,
    )


def reachability_timeline(constellation: Constellation,
                          station: GroundStation,
                          min_elevation_deg: float,
                          duration_s: float,
                          step_s: float = 1.0) -> Dict[str, np.ndarray]:
    """How many satellites a GS can connect to over time.

    Returns:
        Dict with ``times_s``, ``num_connectable`` and ``num_above_horizon``
        arrays.  Zero-connectable stretches are the outage windows of
        Fig. 12(b).
    """
    if duration_s <= 0.0 or step_s <= 0.0:
        raise ValueError("duration and step must be positive")
    times = np.arange(0.0, duration_s, step_s)
    connectable = np.zeros(len(times), dtype=np.int64)
    above = np.zeros(len(times), dtype=np.int64)
    for i, time_s in enumerate(times):
        snapshot = sky_snapshot(constellation, station, min_elevation_deg,
                                float(time_s))
        connectable[i] = snapshot.num_connectable
        above[i] = snapshot.num_above_horizon
    return {"times_s": times, "num_connectable": connectable,
            "num_above_horizon": above}
