"""End-end path evolution export (paper §6, Fig. 13).

Turns a pair's path timeline into render-ready geography: for each distinct
path the pair used, the geodetic coordinates of every node on it, the RTT
it offered, and when it was active.  The paper's Paris-Luanda example shows
why this view matters: the 117 ms and 85 ms paths differ by how many
zig-zag hops they need to exit the chosen orbit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..geo.constants import SPEED_OF_LIGHT_M_PER_S
from ..geo.coordinates import ecef_to_geodetic
from ..topology.dynamic_state import PairTimeline
from ..topology.network import LeoNetwork

__all__ = ["PathEpisode", "path_episodes", "episode_geography"]


@dataclass(frozen=True)
class PathEpisode:
    """One contiguous stretch during which a pair used one path.

    Attributes:
        start_s / end_s: Active interval (end exclusive).
        path: Node-id tuple, or None for a disconnection episode.
        min_rtt_s / max_rtt_s: RTT range while this path was active.
    """

    start_s: float
    end_s: float
    path: Optional[Tuple[int, ...]]
    min_rtt_s: float
    max_rtt_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def hops(self) -> Optional[int]:
        return None if self.path is None else len(self.path) - 1


def path_episodes(timeline: PairTimeline) -> List[PathEpisode]:
    """Collapse a pair timeline into its distinct path episodes."""
    episodes: List[PathEpisode] = []
    times = timeline.times_s
    rtts = timeline.rtts_s
    if len(times) == 0:
        return episodes
    step = float(times[1] - times[0]) if len(times) > 1 else 0.0

    start = 0
    for i in range(1, len(times) + 1):
        is_boundary = (i == len(times)
                       or timeline.paths[i] != timeline.paths[start])
        if not is_boundary:
            continue
        window = rtts[start:i]
        finite = window[np.isfinite(window)]
        episodes.append(PathEpisode(
            start_s=float(times[start]),
            end_s=float(times[i - 1]) + step,
            path=timeline.paths[start],
            min_rtt_s=float(finite.min()) if finite.size else float("inf"),
            max_rtt_s=float(finite.max()) if finite.size else float("inf"),
        ))
        start = i
    return episodes


def episode_geography(episode: PathEpisode, network: LeoNetwork
                      ) -> Dict[str, Any]:
    """Geodetic waypoints of an episode's path at its midpoint time.

    Returns:
        JSON-friendly dict with per-node latitude/longitude/kind plus the
        episode's timing and RTT range.  Disconnection episodes yield an
        empty waypoint list.
    """
    waypoints: List[Dict[str, Any]] = []
    if episode.path is not None:
        mid_time = (episode.start_s + episode.end_s) / 2.0
        positions = network.constellation.positions_ecef_m(mid_time)
        for node in episode.path:
            if node < network.num_satellites:
                geo = ecef_to_geodetic(positions[node])
                waypoints.append({
                    "node": int(node),
                    "kind": "satellite",
                    "latitude_deg": geo.latitude_deg,
                    "longitude_deg": geo.longitude_deg,
                })
            else:
                station = network.ground_stations[
                    node - network.num_satellites]
                waypoints.append({
                    "node": int(node),
                    "kind": "relay" if station.is_relay else "gs",
                    "name": station.name,
                    "latitude_deg": station.latitude_deg,
                    "longitude_deg": station.longitude_deg,
                })
    return {
        "start_s": episode.start_s,
        "end_s": episode.end_s,
        "hops": episode.hops,
        "min_rtt_ms": episode.min_rtt_s * 1000.0,
        "max_rtt_ms": episode.max_rtt_s * 1000.0,
        "waypoints": waypoints,
    }
