"""Link-utilization map export (paper §6, Figs. 14-15).

Turns per-ISL utilization (from the fluid engine or the packet simulator's
device counters) into a geographic line set: each used ISL becomes a
segment with endpoint coordinates and a load fraction, ready to be drawn
thick/warm when congested, thin/green when idle — the paper's rendering.
Unused ISLs are excluded, as in Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..geo.coordinates import ecef_to_geodetic
from ..obs.metrics import MetricsRegistry
from ..obs.probes import isl_utilization_from_registry

__all__ = ["UtilizationSegment", "utilization_map",
           "utilization_map_from_registry", "hotspot_summary"]


@dataclass(frozen=True)
class UtilizationSegment:
    """One rendered ISL with its load.

    Attributes:
        sat_a / sat_b: Satellite endpoints.
        lat_a / lon_a / lat_b / lon_b: Geodetic endpoints (degrees).
        utilization: Load as a fraction of capacity (may exceed 1 briefly
            in fluid overload transients; clamp when rendering).
    """

    sat_a: int
    sat_b: int
    lat_a: float
    lon_a: float
    lat_b: float
    lon_b: float
    utilization: float


def utilization_map(constellation: Constellation,
                    isl_utilization: Dict[Tuple[int, int], float],
                    time_s: float) -> List[UtilizationSegment]:
    """Render-ready ISL segments at one instant.

    Args:
        constellation: For satellite positions.
        isl_utilization: Directed ISL (a, b) -> load fraction; the two
            directions of a link are merged by maximum.
        time_s: Geometry time.
    """
    positions = constellation.positions_ecef_m(time_s)
    merged: Dict[Tuple[int, int], float] = {}
    for (a, b), load in isl_utilization.items():
        key = (min(a, b), max(a, b))
        merged[key] = max(merged.get(key, 0.0), load)
    segments: List[UtilizationSegment] = []
    for (a, b), load in sorted(merged.items()):
        if load <= 0.0:
            continue  # Fig. 15 excludes ISLs with no traffic
        geo_a = ecef_to_geodetic(positions[a])
        geo_b = ecef_to_geodetic(positions[b])
        segments.append(UtilizationSegment(
            sat_a=a, sat_b=b,
            lat_a=geo_a.latitude_deg, lon_a=geo_a.longitude_deg,
            lat_b=geo_b.latitude_deg, lon_b=geo_b.longitude_deg,
            utilization=float(load),
        ))
    return segments


def utilization_map_from_registry(constellation: Constellation,
                                  registry: MetricsRegistry,
                                  time_s: float
                                  ) -> List[UtilizationSegment]:
    """Render-ready ISL segments straight from a probe's sampled series.

    The packet-simulator path of Figs. 14/15: attach a
    :class:`~repro.obs.probes.SimulatorProbe` to the run and hand its
    registry here — no private device plumbing involved.  Uses the latest
    utilization sample at or before ``time_s``; geometry is evaluated at
    ``time_s`` itself.
    """
    return utilization_map(
        constellation, isl_utilization_from_registry(registry, time_s),
        time_s)


def hotspot_summary(segments: List[UtilizationSegment],
                    hot_threshold: float = 0.8) -> Dict[str, Any]:
    """Where the congested ISLs are (Fig. 15's trans-Atlantic finding).

    Returns:
        Counts of used and hot ISLs, and the mean midpoint coordinates of
        the hot ones — a crude but test-friendly "center of congestion".
    """
    if not 0.0 < hot_threshold <= 1.0:
        raise ValueError("hot threshold must be in (0, 1]")
    hot = [seg for seg in segments if seg.utilization >= hot_threshold]
    summary: Dict[str, Any] = {
        "num_used_isls": len(segments),
        "num_hot_isls": len(hot),
        "hot_threshold": hot_threshold,
    }
    if hot:
        summary["hot_center_lat_deg"] = float(np.mean(
            [(seg.lat_a + seg.lat_b) / 2.0 for seg in hot]))
        summary["hot_center_lon_deg"] = float(np.mean(
            [(seg.lon_a + seg.lon_b) / 2.0 for seg in hot]))
    return summary
