"""Link-utilization map export (paper §6, Figs. 14-15).

Turns per-ISL utilization (from the fluid engine or the packet simulator's
device counters) into a geographic line set: each used ISL becomes a
segment with endpoint coordinates and a load fraction, ready to be drawn
thick/warm when congested, thin/green when idle — the paper's rendering.
Unused ISLs are excluded, as in Fig. 15 — except links faulted at the
render instant (see :mod:`repro.faults`), which are always included and
flagged so a renderer can draw them dashed/grey.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..geo.coordinates import ecef_to_geodetic
from ..obs.metrics import MetricsRegistry
from ..obs.probes import isl_utilization_from_registry

if TYPE_CHECKING:
    from ..faults.schedule import FaultSchedule

__all__ = ["UtilizationSegment", "utilization_map",
           "utilization_map_from_registry", "hotspot_summary"]


@dataclass(frozen=True)
class UtilizationSegment:
    """One rendered ISL with its load.

    Attributes:
        sat_a / sat_b: Satellite endpoints.
        lat_a / lon_a / lat_b / lon_b: Geodetic endpoints (degrees).
        utilization: Load as a fraction of capacity (may exceed 1 briefly
            in fluid overload transients; clamp when rendering).
        faulted: The link is cut — or touches an outaged satellite — at
            the render instant (drawn dashed/grey rather than by load).
    """

    sat_a: int
    sat_b: int
    lat_a: float
    lon_a: float
    lat_b: float
    lon_b: float
    utilization: float
    faulted: bool = False


def _faulted_pairs(faults: Optional["FaultSchedule"],
                   isl_pairs: Optional[Sequence[Tuple[int, int]]],
                   time_s: float) -> frozenset:
    """Normalized ISL pairs faulted at ``time_s``: explicit cuts, plus —
    when the interconnect's pair list is given — every ISL touching an
    outaged satellite."""
    if faults is None:
        return frozenset()
    marked = set(faults.cut_isls_at(time_s))
    outaged = faults.failed_satellites_at(time_s)
    if outaged and isl_pairs is not None:
        for a, b in isl_pairs:
            a, b = int(a), int(b)
            if a in outaged or b in outaged:
                marked.add((min(a, b), max(a, b)))
    return frozenset(marked)


def utilization_map(constellation: Constellation,
                    isl_utilization: Dict[Tuple[int, int], float],
                    time_s: float,
                    faults: Optional["FaultSchedule"] = None,
                    isl_pairs: Optional[Sequence[Tuple[int, int]]] = None,
                    ) -> List[UtilizationSegment]:
    """Render-ready ISL segments at one instant.

    Args:
        constellation: For satellite positions.
        isl_utilization: Directed ISL (a, b) -> load fraction; the two
            directions of a link are merged by maximum.
        time_s: Geometry time.
        faults: Optional fault schedule; links faulted at ``time_s`` are
            flagged, and included even when carrying no load.
        isl_pairs: The interconnect's pair list (e.g.
            ``network.isl_pairs``) — needed to mark the ISLs of an
            *outaged satellite*, whose links the schedule does not list
            individually.
    """
    positions = constellation.positions_ecef_m(time_s)
    merged: Dict[Tuple[int, int], float] = {}
    for (a, b), load in isl_utilization.items():
        key = (min(a, b), max(a, b))
        merged[key] = max(merged.get(key, 0.0), load)
    faulted = _faulted_pairs(faults, isl_pairs, time_s)
    for key in faulted:
        merged.setdefault(key, 0.0)
    segments: List[UtilizationSegment] = []
    for (a, b), load in sorted(merged.items()):
        is_faulted = (a, b) in faulted
        if load <= 0.0 and not is_faulted:
            continue  # Fig. 15 excludes ISLs with no traffic
        geo_a = ecef_to_geodetic(positions[a])
        geo_b = ecef_to_geodetic(positions[b])
        segments.append(UtilizationSegment(
            sat_a=a, sat_b=b,
            lat_a=geo_a.latitude_deg, lon_a=geo_a.longitude_deg,
            lat_b=geo_b.latitude_deg, lon_b=geo_b.longitude_deg,
            utilization=float(load),
            faulted=is_faulted,
        ))
    return segments


def utilization_map_from_registry(constellation: Constellation,
                                  registry: MetricsRegistry,
                                  time_s: float,
                                  faults: Optional["FaultSchedule"] = None,
                                  isl_pairs: Optional[
                                      Sequence[Tuple[int, int]]] = None,
                                  ) -> List[UtilizationSegment]:
    """Render-ready ISL segments straight from a probe's sampled series.

    The packet-simulator path of Figs. 14/15: attach a
    :class:`~repro.obs.probes.SimulatorProbe` to the run and hand its
    registry here — no private device plumbing involved.  Uses the latest
    utilization sample at or before ``time_s``; geometry is evaluated at
    ``time_s`` itself.  ``faults``/``isl_pairs`` mark faulted links as in
    :func:`utilization_map`.
    """
    return utilization_map(
        constellation, isl_utilization_from_registry(registry, time_s),
        time_s, faults=faults, isl_pairs=isl_pairs)


def hotspot_summary(segments: List[UtilizationSegment],
                    hot_threshold: float = 0.8) -> Dict[str, Any]:
    """Where the congested ISLs are (Fig. 15's trans-Atlantic finding).

    Returns:
        Counts of used, hot, and faulted ISLs, and the mean midpoint
        coordinates of the hot ones — a crude but test-friendly "center
        of congestion".
    """
    if not 0.0 < hot_threshold <= 1.0:
        raise ValueError("hot threshold must be in (0, 1]")
    hot = [seg for seg in segments if seg.utilization >= hot_threshold]
    summary: Dict[str, Any] = {
        "num_used_isls": len([s for s in segments if s.utilization > 0.0]),
        "num_hot_isls": len(hot),
        "num_faulted_isls": len([s for s in segments if s.faulted]),
        "hot_threshold": hot_threshold,
    }
    if hot:
        summary["hot_center_lat_deg"] = float(np.mean(
            [(seg.lat_a + seg.lat_b) / 2.0 for seg in hot]))
        summary["hot_center_lon_deg"] = float(np.mean(
            [(seg.lon_a + seg.lon_b) / 2.0 for seg in hot]))
    return summary
