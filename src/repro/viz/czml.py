"""CZML export of satellite trajectories (paper §6, Fig. 11).

Hypatia renders its visualizations with Cesium; CZML is Cesium's native
JSON document format for time-dynamic scenes.  This module produces CZML
documents describing every satellite's trajectory (sampled positions in a
fixed frame) and the orbits' ground tracks, so the output can be dropped
into any Cesium viewer — while also being plain structured data that tests
and downstream tooling can inspect.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..constellations.builder import Constellation
from ..geo.coordinates import ecef_to_geodetic

__all__ = ["constellation_czml", "trajectory_samples",
           "constellation_summary", "write_czml"]


def trajectory_samples(constellation: Constellation, duration_s: float,
                       step_s: float) -> Dict[str, Any]:
    """Sampled ECEF positions of every satellite.

    Returns:
        Dict with ``times_s`` (T,) and ``positions_m`` (T, N, 3) arrays.
    """
    if duration_s <= 0.0 or step_s <= 0.0:
        raise ValueError("duration and step must be positive")
    times = np.arange(0.0, duration_s, step_s)
    positions = np.stack([
        constellation.positions_ecef_m(float(t)) for t in times
    ])
    return {"times_s": times, "positions_m": positions}


def constellation_czml(constellation: Constellation, duration_s: float,
                       step_s: float = 10.0,
                       name: Optional[str] = None) -> List[Dict[str, Any]]:
    """A CZML document (list of packets) for a constellation's motion.

    The first packet is the document header with the scene clock; each
    satellite contributes one packet whose ``position`` property carries
    time-tagged Cartesian samples (Cesium interpolates between them).

    Args:
        constellation: The satellites to render.
        duration_s: Scene duration.
        step_s: Position sampling interval.
        name: Document name; defaults to the constellation name.
    """
    samples = trajectory_samples(constellation, duration_s, step_s)
    times = samples["times_s"]
    positions = samples["positions_m"]
    document: List[Dict[str, Any]] = [{
        "id": "document",
        "name": name or constellation.name,
        "version": "1.0",
        "clock": {
            "interval": f"T0/T{duration_s:.0f}",
            "currentTime": "T0",
            "multiplier": 10,
        },
    }]
    for sat in constellation.satellites:
        cartesian: List[float] = []
        for t_index, time_s in enumerate(times):
            x, y, z = positions[t_index, sat.satellite_id]
            cartesian.extend([float(time_s), float(x), float(y), float(z)])
        document.append({
            "id": f"satellite-{sat.satellite_id}",
            "name": sat.name,
            "availability": f"T0/T{duration_s:.0f}",
            "point": {"pixelSize": 3, "color": {"rgba": [0, 0, 0, 255]}},
            "position": {
                "interpolationAlgorithm": "LAGRANGE",
                "interpolationDegree": 2,
                "epoch": "T0",
                "cartesian": cartesian,
            },
        })
    return document


def constellation_summary(constellation: Constellation,
                          time_s: float = 0.0) -> Dict[str, Any]:
    """Scalar facts about a constellation snapshot (Fig. 11 captions).

    Includes per-shell geometry and the latitude coverage extent: the
    highest latitude any satellite reaches is bounded by the shell's
    inclination, which is why low-inclination designs (Kuiper) skip the
    poles while Telesat's near-polar T1 covers them (paper §6).
    """
    positions = constellation.positions_ecef_m(time_s)
    latitudes = [
        ecef_to_geodetic(positions[i]).latitude_deg
        for i in range(len(positions))
    ]
    return {
        "name": constellation.name,
        "num_satellites": constellation.num_satellites,
        "shells": [
            {
                "name": shell.name,
                "orbits": shell.num_orbits,
                "satellites_per_orbit": shell.satellites_per_orbit,
                "altitude_km": shell.altitude_km,
                "inclination_deg": shell.inclination_deg,
            }
            for shell in constellation.shells
        ],
        "max_abs_latitude_deg": float(np.max(np.abs(latitudes))),
    }


def write_czml(document: Sequence[Dict[str, Any]], path: str) -> None:
    """Serialize a CZML document to a file."""
    with open(path, "w") as handle:
        json.dump(list(document), handle, indent=1)
