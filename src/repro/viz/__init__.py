"""Visualization exporters: CZML trajectories, sky views, paths, hotspots."""

from .czml import (
    constellation_czml,
    constellation_summary,
    trajectory_samples,
    write_czml,
)
from .ground_view import SkySnapshot, reachability_timeline, sky_snapshot
from .paths_viz import PathEpisode, episode_geography, path_episodes
from .utilization_map import (
    UtilizationSegment,
    hotspot_summary,
    utilization_map,
    utilization_map_from_registry,
)

__all__ = [
    "constellation_czml",
    "constellation_summary",
    "trajectory_samples",
    "write_czml",
    "SkySnapshot",
    "reachability_timeline",
    "sky_snapshot",
    "PathEpisode",
    "episode_geography",
    "path_episodes",
    "UtilizationSegment",
    "hotspot_summary",
    "utilization_map",
    "utilization_map_from_registry",
]
