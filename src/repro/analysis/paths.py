"""Path-structure statistics across GS pairs (paper §5.2, Fig. 8).

For each pair's path timeline: the number of path changes (different
satellite membership between successive snapshots), and the range of hop
counts the pair's paths take over the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..topology.dynamic_state import (
    DynamicState,
    PairTimeline,
    count_path_changes,
)

__all__ = ["PairPathStats", "pair_path_stats", "pair_path_stats_over_time"]


@dataclass(frozen=True)
class PairPathStats:
    """Path-structure summary of one GS pair.

    Attributes:
        src_gid / dst_gid: The pair.
        num_path_changes: Snapshot-to-snapshot changes in the path's
            satellite membership (Fig. 8(a)).
        min_hops / max_hops: Extremes of the path hop count (edges,
            including the up- and down-GSL) over connected snapshots.
    """

    src_gid: int
    dst_gid: int
    num_path_changes: int
    min_hops: int
    max_hops: int

    @property
    def hop_spread(self) -> int:
        """Fig. 8(b)'s max - min hop count."""
        return self.max_hops - self.min_hops

    @property
    def hop_ratio(self) -> float:
        """Fig. 8(c)'s max / min hop count."""
        return self.max_hops / self.min_hops


def pair_path_stats(timelines: Dict[Tuple[int, int], PairTimeline],
                    num_satellites: int) -> List[PairPathStats]:
    """Summarize path evolution of every tracked pair.

    Pairs that never had a path are skipped.
    """
    stats: List[PairPathStats] = []
    for (src_gid, dst_gid), timeline in timelines.items():
        hop_counts = timeline.hop_counts()
        connected = hop_counts[hop_counts > 0]
        if connected.size == 0:
            continue
        sets = timeline.satellite_sets(num_satellites)
        stats.append(PairPathStats(
            src_gid=src_gid,
            dst_gid=dst_gid,
            num_path_changes=count_path_changes(sets),
            min_hops=int(connected.min()),
            max_hops=int(connected.max()),
        ))
    return stats


def pair_path_stats_over_time(network, pairs: Sequence[Tuple[int, int]],
                              duration_s: float, step_s: float = 0.1
                              ) -> List[PairPathStats]:
    """Path-structure stats straight from a network (Fig. 8 end-to-end).

    Walks the snapshot schedule with the batched routing path (all
    destination trees of a snapshot come from one
    ``RoutingEngine.route_to_many`` call) and summarizes each pair.
    """
    state = DynamicState(network, pairs, duration_s=duration_s,
                         step_s=step_s)
    return pair_path_stats(state.compute(), network.num_satellites)
