"""GSL contact windows and handoff rates (paper §2.3).

"As satellites travel fast across GSes, GS-satellite links can only be
maintained for a few minutes, after which they require a handoff."  This
module measures exactly that: for a ground station, the contiguous
intervals during which each satellite stays above the minimum elevation,
and the implied handoff rate for a single-link terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..constellations.builder import Constellation
from ..ground.stations import GroundStation
from ..ground.visibility import elevation_angles_deg

__all__ = ["ContactWindow", "contact_windows", "contact_statistics"]


@dataclass(frozen=True)
class ContactWindow:
    """One contiguous visibility interval of one satellite from one GS.

    Attributes:
        satellite_id: The satellite.
        start_s / end_s: Interval bounds (end exclusive); windows clipped
            by the observation span carry ``truncated=True``.
        truncated: Whether the window touches the observation boundary
            (its true duration is longer than measured).
    """

    satellite_id: int
    start_s: float
    end_s: float
    truncated: bool

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def contact_windows(constellation: Constellation, station: GroundStation,
                    min_elevation_deg: float, duration_s: float,
                    step_s: float = 5.0) -> List[ContactWindow]:
    """All GS-satellite contact windows over an observation span.

    Args:
        constellation: The satellites.
        station: The observing ground station.
        min_elevation_deg: Connectivity threshold.
        duration_s: Observation span.
        step_s: Sampling interval (window bounds are step-quantized).
    """
    if duration_s <= 0.0 or step_s <= 0.0:
        raise ValueError("duration and step must be positive")
    times = np.arange(0.0, duration_s, step_s)
    visible_at: List[set] = []
    for t in times:
        positions = constellation.positions_ecef_m(float(t))
        elevations = elevation_angles_deg(station, positions)
        visible_at.append(set(np.nonzero(
            elevations >= min_elevation_deg)[0].tolist()))

    windows: List[ContactWindow] = []
    open_since: Dict[int, float] = {}
    for i, t in enumerate(times):
        now_visible = visible_at[i]
        for sat in list(open_since):
            if sat not in now_visible:
                windows.append(ContactWindow(
                    satellite_id=sat, start_s=open_since.pop(sat),
                    end_s=float(t), truncated=False))
        for sat in now_visible:
            if sat not in open_since:
                open_since[sat] = float(t)
    end = float(times[-1]) + step_s
    for sat, start in open_since.items():
        windows.append(ContactWindow(satellite_id=sat, start_s=start,
                                     end_s=end, truncated=True))
    # Mark windows that began at t=0 as truncated too.
    return [
        ContactWindow(w.satellite_id, w.start_s, w.end_s,
                      truncated=w.truncated or w.start_s == 0.0)
        for w in windows
    ]


def contact_statistics(windows: Sequence[ContactWindow]) -> Dict[str, float]:
    """Summary of complete (untruncated) contact windows.

    Returns:
        Dict with ``num_contacts``, ``median_duration_s``,
        ``max_duration_s`` and ``handoffs_per_hour`` (complete contacts
        ending per observed hour, a lower bound on single-link terminal
        handoff rate).
    """
    complete = [w for w in windows if not w.truncated]
    if not complete:
        return {"num_contacts": 0, "median_duration_s": float("nan"),
                "max_duration_s": float("nan"),
                "handoffs_per_hour": float("nan")}
    durations = np.array([w.duration_s for w in complete])
    span = (max(w.end_s for w in windows)
            - min(w.start_s for w in windows))
    return {
        "num_contacts": len(complete),
        "median_duration_s": float(np.median(durations)),
        "max_duration_s": float(durations.max()),
        "handoffs_per_hour": len(complete) / (span / 3600.0),
    }
