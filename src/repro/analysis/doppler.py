"""Doppler analysis of inter-satellite links.

Paper §7: "it would be useful to model the impact of the Doppler effect on
the bandwidth and reliability of ISLs".  The quantity that matters is the
radial (line-of-sight) velocity between linked satellites: the optical
carrier's fractional frequency shift is ``-v_radial / c``, and the rate of
change of link length drives pointing/tracking requirements.

Within one +Grid shell, same-orbit neighbors keep constant separation
(zero Doppler), while cross-orbit neighbors oscillate — they converge near
the highest latitudes and diverge over the Equator (paper §2.3).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..geo.constants import SPEED_OF_LIGHT_M_PER_S

__all__ = ["isl_radial_velocities_m_per_s", "doppler_shift_hz",
           "max_isl_doppler_summary"]


def isl_radial_velocities_m_per_s(constellation: Constellation,
                                  isl_pairs: np.ndarray, time_s: float,
                                  dt_s: float = 0.1) -> np.ndarray:
    """Rate of change of each ISL's length at ``time_s`` (m/s).

    Positive values mean the endpoints are separating.  Computed by
    central differencing of link lengths, which is exact to O(dt^2) and
    robust for any propagation backend.
    """
    pairs = np.asarray(isl_pairs)
    if pairs.size == 0:
        return np.empty(0)
    if dt_s <= 0.0:
        raise ValueError(f"dt must be positive, got {dt_s}")
    before = constellation.positions_ecef_m(time_s - dt_s)
    after = constellation.positions_ecef_m(time_s + dt_s)
    length_before = np.linalg.norm(
        before[pairs[:, 0]] - before[pairs[:, 1]], axis=1)
    length_after = np.linalg.norm(
        after[pairs[:, 0]] - after[pairs[:, 1]], axis=1)
    return (length_after - length_before) / (2.0 * dt_s)


def doppler_shift_hz(carrier_hz: float,
                     radial_velocity_m_per_s: np.ndarray) -> np.ndarray:
    """First-order Doppler shift of a carrier over closing/receding links.

    Receding links (positive radial velocity) shift the received carrier
    down in frequency.
    """
    if carrier_hz <= 0.0:
        raise ValueError("carrier frequency must be positive")
    return -carrier_hz * np.asarray(radial_velocity_m_per_s) \
        / SPEED_OF_LIGHT_M_PER_S


def max_isl_doppler_summary(constellation: Constellation,
                            isl_pairs: np.ndarray,
                            carrier_hz: float = 193.4e12,  # 1550 nm laser
                            sample_times_s: Tuple[float, ...] = (
                                0.0, 300.0, 600.0, 900.0, 1200.0),
                            ) -> Dict[str, float]:
    """Worst-case ISL closing speed and Doppler shift over sample times.

    Defaults to the 1550 nm optical carrier typical of laser ISLs.
    """
    worst_speed = 0.0
    for time_s in sample_times_s:
        velocities = isl_radial_velocities_m_per_s(
            constellation, isl_pairs, float(time_s))
        if velocities.size:
            worst_speed = max(worst_speed, float(np.abs(velocities).max()))
    worst_shift = float(abs(doppler_shift_hz(
        carrier_hz, np.array([worst_speed]))[0]))
    return {
        "max_radial_speed_m_per_s": worst_speed,
        "max_doppler_shift_hz": worst_shift,
        "carrier_hz": carrier_hz,
    }
