"""Forwarding-state time-step granularity study (paper §5.3, Fig. 9).

Hypatia recomputes forwarding state at a fixed granularity.  Coarser steps
are cheaper (each step costs shortest-path computations over the whole
network) but *miss* path changes: if the shortest path changed twice within
one interval, a coarse schedule observes at most one change.

Given satellite-set sequences sampled at a fine base step, this module
derives what coarser schedules would have observed by subsampling, and
reports the paper's two metrics:

* the number of path changes observed per time step, across time steps;
* per pair, how many changes a coarse step missed relative to the base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..topology.dynamic_state import PairTimeline, count_path_changes

__all__ = ["subsample_satellite_sets", "changes_per_step",
           "missed_changes", "TimestepComparison", "compare_timesteps"]


def subsample_satellite_sets(sets: Sequence[frozenset],
                             factor: int) -> List[frozenset]:
    """Every ``factor``-th entry of a satellite-set sequence.

    Models recomputing forwarding state ``factor`` times less often.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return list(sets[::factor])


def changes_per_step(per_pair_sets: Sequence[Sequence[frozenset]]
                     ) -> np.ndarray:
    """Network-wide path changes in each time step (Fig. 9(a)).

    Args:
        per_pair_sets: For each pair, its satellite-set sequence (all the
            same length T).

    Returns:
        (T-1,) count of pairs whose path changed at each step boundary.
    """
    if not per_pair_sets:
        return np.empty(0, dtype=np.int64)
    lengths = {len(sets) for sets in per_pair_sets}
    if len(lengths) != 1:
        raise ValueError(f"sequences have differing lengths: {lengths}")
    steps = lengths.pop() - 1
    counts = np.zeros(steps, dtype=np.int64)
    for sets in per_pair_sets:
        for i in range(steps):
            if sets[i + 1] != sets[i]:
                counts[i] += 1
    return counts


def missed_changes(fine_sets: Sequence[frozenset], factor: int) -> int:
    """Path changes a ``factor``-times-coarser schedule fails to observe.

    A change is "missed" when several changes fall inside one coarse
    interval: the coarse schedule sees at most one change there.
    """
    fine = count_path_changes(list(fine_sets))
    coarse = count_path_changes(subsample_satellite_sets(fine_sets, factor))
    return max(0, fine - coarse)


@dataclass(frozen=True)
class TimestepComparison:
    """Fig. 9(b)'s summary for one coarse step.

    Attributes:
        factor: Coarse step as a multiple of the base step.
        missed_per_pair: Missed change count for each pair.
    """

    factor: int
    missed_per_pair: np.ndarray

    def fraction_missing_at_least(self, count: int) -> float:
        """Fraction of pairs that missed >= ``count`` changes."""
        if len(self.missed_per_pair) == 0:
            return 0.0
        return float((self.missed_per_pair >= count).mean())


def compare_timesteps(timelines: Dict[Tuple[int, int], PairTimeline],
                      num_satellites: int,
                      factors: Sequence[int] = (2, 20),
                      ) -> List[TimestepComparison]:
    """Fig. 9(b): missed path changes at coarser forwarding-state steps.

    Args:
        timelines: Pair timelines computed at the *base* step (the paper
            uses 50 ms as the base).
        num_satellites: Node-numbering split point.
        factors: Coarse steps as multiples of the base (paper: 2 for
            100 ms, 20 for 1000 ms).
    """
    per_pair_sets = [
        timeline.satellite_sets(num_satellites)
        for timeline in timelines.values()
    ]
    comparisons: List[TimestepComparison] = []
    for factor in factors:
        missed = np.array([
            missed_changes(sets, factor) for sets in per_pair_sets
        ])
        comparisons.append(TimestepComparison(factor=factor,
                                              missed_per_pair=missed))
    return comparisons
