"""Post-processing analyses reproducing the paper's §4-§5 metrics."""

from .bandwidth import UnusedBandwidthStats, unused_bandwidth_stats
from .contacts import ContactWindow, contact_statistics, contact_windows
from .coverage import LatitudeCoverage, coverage_by_latitude
from .doppler import (
    doppler_shift_hz,
    isl_radial_velocities_m_per_s,
    max_isl_doppler_summary,
)
from .paths import PairPathStats, pair_path_stats, pair_path_stats_over_time
from .rtt import (
    MIN_PAIR_SEPARATION_M,
    PairRttStats,
    ecdf,
    pair_rtt_stats,
    pair_rtt_stats_over_time,
)
from .timestep import (
    TimestepComparison,
    changes_per_step,
    compare_timesteps,
    missed_changes,
    subsample_satellite_sets,
)

__all__ = [
    "ContactWindow",
    "contact_statistics",
    "contact_windows",
    "LatitudeCoverage",
    "coverage_by_latitude",
    "doppler_shift_hz",
    "isl_radial_velocities_m_per_s",
    "max_isl_doppler_summary",
    "UnusedBandwidthStats",
    "unused_bandwidth_stats",
    "PairPathStats",
    "pair_path_stats",
    "pair_path_stats_over_time",
    "MIN_PAIR_SEPARATION_M",
    "PairRttStats",
    "ecdf",
    "pair_rtt_stats",
    "pair_rtt_stats_over_time",
    "TimestepComparison",
    "changes_per_step",
    "compare_timesteps",
    "missed_changes",
    "subsample_satellite_sets",
]
