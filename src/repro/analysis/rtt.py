"""RTT statistics across GS pairs (paper §5.1, Figs. 6-7).

Given per-pair RTT timelines, computes the distributions the paper reports:

* max-RTT / geodesic-RTT ratio (Fig. 6) — how close the constellation gets
  to the speed-of-light lower bound;
* max RTT, max-min RTT, and max/min RTT across pairs (Fig. 7) — how large
  and how variable latencies are.

Pairs closer than 500 km are excluded, as in the paper ("we already
exclude end-point pairs that are within 500 km of each other").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import geodesic_rtt_s, great_circle_distance_m
from ..ground.stations import GroundStation
from ..topology.dynamic_state import DynamicState, PairTimeline

__all__ = ["PairRttStats", "pair_rtt_stats", "pair_rtt_stats_over_time",
           "ecdf", "MIN_PAIR_SEPARATION_M"]

#: Paper §5.1: pairs closer than this are excluded from RTT distributions.
MIN_PAIR_SEPARATION_M = 500_000.0


@dataclass(frozen=True)
class PairRttStats:
    """RTT summary of one GS pair over a simulation.

    Attributes:
        src_gid / dst_gid: The pair.
        min_rtt_s: Minimum RTT over connected snapshots.
        max_rtt_s: Maximum RTT over connected snapshots.
        geodesic_rtt_s: Great-circle speed-of-light RTT between endpoints.
        connected_fraction: Fraction of snapshots with a path.
    """

    src_gid: int
    dst_gid: int
    min_rtt_s: float
    max_rtt_s: float
    geodesic_rtt_s: float
    connected_fraction: float

    @property
    def max_over_geodesic(self) -> float:
        """Fig. 6's ratio."""
        return self.max_rtt_s / self.geodesic_rtt_s

    @property
    def rtt_spread_s(self) -> float:
        """Fig. 7(b)'s max - min RTT."""
        return self.max_rtt_s - self.min_rtt_s

    @property
    def max_over_min(self) -> float:
        """Fig. 7(c)'s max / min RTT."""
        return self.max_rtt_s / self.min_rtt_s


def pair_rtt_stats(timelines: Dict[Tuple[int, int], PairTimeline],
                   stations: Sequence[GroundStation],
                   min_separation_m: float = MIN_PAIR_SEPARATION_M,
                   require_always_connected: bool = False,
                   ) -> List[PairRttStats]:
    """Summarize RTT behaviour of every tracked pair.

    Args:
        timelines: Output of :meth:`DynamicState.compute`.
        stations: Ground stations, indexed by gid.
        min_separation_m: Exclude pairs closer than this (paper: 500 km).
        require_always_connected: Drop pairs that were ever disconnected
            (otherwise their stats cover connected snapshots only).

    Returns:
        One :class:`PairRttStats` per retained pair, in input order.
    """
    stats: List[PairRttStats] = []
    for (src_gid, dst_gid), timeline in timelines.items():
        src = stations[src_gid]
        dst = stations[dst_gid]
        separation = great_circle_distance_m(src.position, dst.position)
        if separation < min_separation_m:
            continue
        mask = timeline.connected_mask
        if not mask.any():
            continue
        if require_always_connected and not mask.all():
            continue
        rtts = timeline.rtts_s[mask]
        stats.append(PairRttStats(
            src_gid=src_gid,
            dst_gid=dst_gid,
            min_rtt_s=float(rtts.min()),
            max_rtt_s=float(rtts.max()),
            geodesic_rtt_s=geodesic_rtt_s(src.position, dst.position),
            connected_fraction=float(mask.mean()),
        ))
    return stats


def pair_rtt_stats_over_time(network, pairs: Sequence[Tuple[int, int]],
                             duration_s: float, step_s: float = 0.1,
                             min_separation_m: float = MIN_PAIR_SEPARATION_M,
                             require_always_connected: bool = False,
                             ) -> List[PairRttStats]:
    """RTT stats straight from a network (Figs. 6-7 end-to-end).

    Walks the snapshot schedule with the batched routing path (one
    ``RoutingEngine.route_to_many`` call per snapshot covers every tracked
    destination) and summarizes each retained pair.
    """
    state = DynamicState(network, pairs, duration_s=duration_s,
                         step_s=step_s)
    return pair_rtt_stats(state.compute(), network.ground_stations,
                          min_separation_m=min_separation_m,
                          require_always_connected=require_always_connected)


def ecdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF points ``(sorted values, cumulative fraction)``.

    The y value at each point is the fraction of samples <= that value —
    the convention of the paper's gnuplot ECDF plots.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return arr, np.empty(0)
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions
