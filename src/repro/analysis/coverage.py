"""Coverage analysis: who can connect, where (paper §6's coverage story).

Fig. 11's qualitative observations — Telesat's near-polar shell covers the
poles, Kuiper/Starlink concentrate on the populated mid-latitudes, S1
"will not extend service to less populated regions at high latitudes"
(§2.2) — become quantitative here: for a grid of latitudes, the fraction
of longitudes (and times) at which a ground station would see at least one
satellite above the minimum elevation angle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..constellations.builder import Constellation
from ..geo.coordinates import GeodeticPosition
from ..ground.stations import GroundStation
from ..ground.visibility import elevation_angles_deg

__all__ = ["LatitudeCoverage", "coverage_by_latitude"]


@dataclass(frozen=True)
class LatitudeCoverage:
    """Coverage statistics at one latitude.

    Attributes:
        latitude_deg: The latitude band probed.
        covered_fraction: Fraction of (longitude, time) samples with at
            least one connectable satellite.
        mean_visible: Mean number of connectable satellites per sample.
    """

    latitude_deg: float
    covered_fraction: float
    mean_visible: float


def coverage_by_latitude(constellation: Constellation,
                         min_elevation_deg: float,
                         latitudes_deg: Sequence[float] = tuple(
                             range(-90, 91, 15)),
                         num_longitudes: int = 12,
                         sample_times_s: Sequence[float] = (0.0, 120.0,
                                                            240.0),
                         ) -> List[LatitudeCoverage]:
    """Probe constellation coverage on a latitude/longitude/time grid.

    Args:
        constellation: The satellites.
        min_elevation_deg: Minimum elevation angle for connectivity.
        latitudes_deg: Latitude bands to probe.
        num_longitudes: Longitude samples per band (uniformly spread).
        sample_times_s: Times to probe (averages over satellite motion).

    Returns:
        One :class:`LatitudeCoverage` per latitude, in input order.
    """
    if num_longitudes < 1:
        raise ValueError("need at least one longitude sample")
    if not sample_times_s:
        raise ValueError("need at least one sample time")
    longitudes = np.linspace(-180.0, 180.0, num_longitudes,
                             endpoint=False)
    results: List[LatitudeCoverage] = []
    positions_by_time = {
        t: constellation.positions_ecef_m(float(t)) for t in sample_times_s
    }
    for latitude in latitudes_deg:
        covered = 0
        visible_total = 0
        samples = 0
        for longitude in longitudes:
            station = GroundStation(
                gid=0, name="probe",
                position=GeodeticPosition(float(latitude),
                                          float(longitude), 0.0))
            for t in sample_times_s:
                elevations = elevation_angles_deg(station,
                                                  positions_by_time[t])
                connectable = int((elevations >= min_elevation_deg).sum())
                covered += connectable > 0
                visible_total += connectable
                samples += 1
        results.append(LatitudeCoverage(
            latitude_deg=float(latitude),
            covered_fraction=covered / samples,
            mean_visible=visible_total / samples,
        ))
    return results
