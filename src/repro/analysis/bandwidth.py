"""Bandwidth-fluctuation statistics (paper §5.4, Fig. 10).

Summaries over the fluid engine's unused-bandwidth series: how often, and
by how much, an end-end path's capacity goes unclaimed by transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["UnusedBandwidthStats", "unused_bandwidth_stats"]


@dataclass(frozen=True)
class UnusedBandwidthStats:
    """Summary of one path's unused-bandwidth series.

    Attributes:
        mean_unused_bps: Average unused capacity over connected snapshots.
        fraction_above_third: Fraction of connected time with more than a
            third of the capacity unused (the paper's headline number:
            31% dynamic vs 11% static).
        fraction_fully_used: Fraction of connected time at (near) zero
            unused capacity.
        connected_fraction: Fraction of snapshots with a path at all.
    """

    mean_unused_bps: float
    fraction_above_third: float
    fraction_fully_used: float
    connected_fraction: float


def unused_bandwidth_stats(unused_bps: np.ndarray,
                           link_capacity_bps: float,
                           full_use_tolerance_bps: Optional[float] = None,
                           ) -> UnusedBandwidthStats:
    """Summarize an unused-bandwidth series (nan = disconnected).

    Args:
        unused_bps: Series from :meth:`FluidResult.unused_bandwidth_bps`.
        link_capacity_bps: The path's (uniform) link capacity.
        full_use_tolerance_bps: Unused capacity below this counts as
            "fully used"; defaults to 1% of capacity.
    """
    if link_capacity_bps <= 0.0:
        raise ValueError("capacity must be positive")
    if full_use_tolerance_bps is None:
        full_use_tolerance_bps = 0.01 * link_capacity_bps
    series = np.asarray(unused_bps, dtype=float)
    mask = ~np.isnan(series)
    if not mask.any():
        return UnusedBandwidthStats(
            mean_unused_bps=float("nan"), fraction_above_third=0.0,
            fraction_fully_used=0.0, connected_fraction=0.0)
    valid = series[mask]
    return UnusedBandwidthStats(
        mean_unused_bps=float(valid.mean()),
        fraction_above_third=float(
            (valid > link_capacity_bps / 3.0).mean()),
        fraction_fully_used=float(
            (valid <= full_use_tolerance_bps).mean()),
        connected_fraction=float(mask.mean()),
    )
