"""Workload generation: gravity-model demand and stochastic flow churn.

The traffic layer turns "who talks to whom, how much, and when" into
plain data every engine consumes:

* :class:`TrafficMatrix` — (N, N) offered load between ground stations;
  gravity-model (population-weighted) or the paper's §5.4 permutation.
* :class:`FlowArrivalProcess` / :class:`WorkloadSchedule` — seeded
  Poisson flow arrivals with exponential/lognormal/Pareto sizes; a
  schedule is a sorted list of :class:`FlowRequest` s, JSON
  round-trippable and picklable (it crosses the sweep process boundary
  inside :class:`repro.sweep.NetworkSpec`).
* :class:`WorkloadSpawner` — runs a schedule as finite TCP transfers on
  the packet simulator, recording flow-completion times; the fluid
  engines take ``schedule.as_fluid_flows()`` directly.
"""

from .arrivals import (FlowArrivalProcess, FlowArrivalStream, FlowRequest,
                       WorkloadSchedule, SIZE_DISTRIBUTIONS)
from .matrix import TrafficMatrix
from .spawner import FCT_BUCKETS, WorkloadSpawner

__all__ = [
    "TrafficMatrix",
    "FlowArrivalProcess",
    "FlowArrivalStream",
    "FlowRequest",
    "WorkloadSchedule",
    "WorkloadSpawner",
    "SIZE_DISTRIBUTIONS",
    "FCT_BUCKETS",
]
