"""Traffic matrices: who sends how much to whom.

The paper's constellation-wide experiments (§3.4, §5.4) hard-code one
workload — a fixed-point-free random permutation of the 100 cities, every
pair greedy.  This module generalizes that to a first-class
:class:`TrafficMatrix`: an (N, N) demand matrix in bits/second between
ground stations, with two builders:

* :meth:`TrafficMatrix.gravity` — population-weighted demand,
  ``demand[i, j] ∝ pop_i · pop_j / dist_ij^exponent``, normalized to a
  target aggregate offered load.  This is the "heavy traffic from
  millions of users" model the ROADMAP's north star calls for: big city
  pairs dominate, nearby megacities exchange more than antipodal ones.
* :meth:`TrafficMatrix.permutation` — the paper's §5.4 matrix as a
  special case, delegating to
  :func:`repro.core.workloads.random_permutation_pairs` so the pair set
  is *identical* to every existing benchmark's.

A matrix is plain data: picklable, JSON round-trippable, and the input of
:class:`repro.traffic.arrivals.FlowArrivalProcess` (stochastic flow
churn) as well as directly convertible to long-running fluid flows.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import great_circle_distance_m
from ..ground.cities import City, top_cities

__all__ = ["TrafficMatrix"]

#: Gravity-model distance floor: city pairs closer than this (great
#: circle) are treated as this far apart, so co-located stations cannot
#: absorb the whole normalized demand.
MIN_GRAVITY_DISTANCE_M = 100_000.0


class TrafficMatrix:
    """An (N, N) offered-load matrix between ground stations, in bit/s.

    ``demand_bps[i, j]`` is the aggregate load station ``i`` offers
    toward station ``j``; the diagonal is zero.  Instances are
    immutable-by-convention (the array is set non-writeable).

    Args:
        demand_bps: Square non-negative array, zero diagonal.
        kind: Provenance label (``"gravity"``, ``"permutation"``, ...),
            carried through serialization for report labeling.
    """

    def __init__(self, demand_bps: np.ndarray, kind: str = "custom") -> None:
        demand = np.array(demand_bps, dtype=np.float64)
        if demand.ndim != 2 or demand.shape[0] != demand.shape[1]:
            raise ValueError(
                f"demand matrix must be square, got shape {demand.shape}")
        if not np.isfinite(demand).all():
            raise ValueError("demand matrix entries must be finite")
        if (demand < 0.0).any():
            raise ValueError("demand matrix entries must be non-negative")
        if demand.shape[0] and np.diagonal(demand).any():
            raise ValueError("self-traffic (diagonal) must be zero")
        demand.setflags(write=False)
        self.demand_bps = demand
        self.kind = str(kind)

    # -- basic queries ---------------------------------------------------

    @property
    def num_stations(self) -> int:
        return self.demand_bps.shape[0]

    @property
    def total_offered_bps(self) -> float:
        """Aggregate offered load over all pairs (bit/s)."""
        return float(self.demand_bps.sum())

    def rate_bps(self, src_gid: int, dst_gid: int) -> float:
        """Offered load of one directed pair."""
        return float(self.demand_bps[src_gid, dst_gid])

    def pairs(self, min_rate_bps: float = 0.0) -> List[Tuple[int, int]]:
        """(src, dst) pairs with demand above ``min_rate_bps``, in row-major
        order — a deterministic ordering shared by every consumer."""
        src_idx, dst_idx = np.nonzero(self.demand_bps > min_rate_bps)
        return [(int(s), int(d)) for s, d in zip(src_idx, dst_idx)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return (self.kind == other.kind
                and self.demand_bps.shape == other.demand_bps.shape
                and bool((self.demand_bps == other.demand_bps).all()))

    def __repr__(self) -> str:
        return (f"TrafficMatrix({self.num_stations} stations, "
                f"kind={self.kind!r}, "
                f"total={self.total_offered_bps:.3g} bit/s)")

    # -- transforms ------------------------------------------------------

    def normalized_to(self, total_offered_bps: float) -> "TrafficMatrix":
        """The same traffic *pattern* rescaled to a new aggregate load."""
        if total_offered_bps <= 0.0:
            raise ValueError("target aggregate load must be positive")
        current = self.total_offered_bps
        if current <= 0.0:
            raise ValueError("cannot rescale an all-zero matrix")
        return TrafficMatrix(self.demand_bps * (total_offered_bps / current),
                             kind=self.kind)

    def as_fluid_flows(self, min_rate_bps: float = 0.0,
                       elastic: bool = False) -> list:
        """The matrix as long-running :class:`~repro.fluid.engine.FluidFlow` s.

        Args:
            min_rate_bps: Pairs at or below this demand are skipped.
            elastic: When True, flows are greedy (infinite demand, the
                paper's long-running-TCP idealization) and the matrix only
                selects *which* pairs talk; when False (default) each
                flow's demand caps at its matrix rate.
        """
        from ..fluid.engine import FluidFlow
        return [
            FluidFlow(src, dst,
                      demand_bps=(np.inf if elastic
                                  else self.rate_bps(src, dst)))
            for src, dst in self.pairs(min_rate_bps)
        ]

    # -- builders --------------------------------------------------------

    @classmethod
    def gravity(cls, cities: Optional[Sequence[City]] = None,
                count: int = 100,
                total_offered_bps: float = 1e9,
                distance_exponent: float = 1.0,
                min_distance_m: float = MIN_GRAVITY_DISTANCE_M,
                ) -> "TrafficMatrix":
        """Population-gravity demand over city ground stations.

        ``demand[i, j] ∝ pop_i · pop_j / max(dist_ij, floor)^exponent``,
        normalized so the matrix sums to ``total_offered_bps``.  Station
        gids follow city order (rank order when ``cities`` is omitted),
        matching :func:`repro.ground.stations.ground_stations_from_cities`.

        Args:
            cities: Explicit city list; defaults to the ``count`` most
                populous (the paper's ground segment).
            count: Top-N cities when ``cities`` is omitted.
            total_offered_bps: Aggregate offered load to normalize to.
            distance_exponent: ``f(d) = d^exponent`` deterrence; 0 turns
                distance off (pure population product), 2 is the classic
                Newtonian form.
            min_distance_m: Distance floor for near-co-located pairs.
        """
        if cities is None:
            cities = top_cities(count)
        if len(cities) < 2:
            raise ValueError("gravity model needs at least two cities")
        if total_offered_bps <= 0.0:
            raise ValueError("aggregate offered load must be positive")
        if distance_exponent < 0.0:
            raise ValueError("distance exponent must be non-negative")
        if min_distance_m <= 0.0:
            raise ValueError("distance floor must be positive")
        n = len(cities)
        populations = np.array([float(c.population) for c in cities])
        if (populations <= 0.0).any():
            raise ValueError("city populations must be positive")
        demand = np.outer(populations, populations)
        if distance_exponent > 0.0:
            deterrence = np.empty((n, n))
            for i in range(n):
                deterrence[i, i] = 1.0  # diagonal is zeroed below anyway
                for j in range(i + 1, n):
                    distance = max(great_circle_distance_m(
                        cities[i].position, cities[j].position),
                        min_distance_m)
                    deterrence[i, j] = deterrence[j, i] = (
                        distance ** distance_exponent)
            demand /= deterrence
        np.fill_diagonal(demand, 0.0)
        demand *= total_offered_bps / demand.sum()
        return cls(demand, kind="gravity")

    @classmethod
    def permutation(cls, num_stations: int = 100,
                    rate_bps: float = 10_000_000.0,
                    seed: int = 42) -> "TrafficMatrix":
        """The paper's §5.4 matrix: a fixed-point-free random permutation.

        Delegates to :func:`repro.core.workloads.random_permutation_pairs`
        with the repository's canonical seed, so
        ``matrix.pairs() == random_permutation_pairs(num_stations)`` holds
        exactly and the Fig. 10/14/15 workload is reproduced bit-for-bit.

        Args:
            num_stations: Ground stations (gids 0..N-1).
            rate_bps: Offered load per pair (each flow is typically run
                elastic; the rate only matters for arrival processes).
            seed: Permutation seed (default: the canonical matrix).
        """
        from ..core.workloads import random_permutation_pairs
        if rate_bps <= 0.0:
            raise ValueError("per-pair rate must be positive")
        demand = np.zeros((num_stations, num_stations))
        for src, dst in random_permutation_pairs(num_stations, seed=seed):
            demand[src, dst] = rate_bps
        return cls(demand, kind="permutation")

    # -- (de)serialization ----------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "num_stations": self.num_stations,
            "demand_bps": [[float(v) for v in row]
                           for row in self.demand_bps],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrafficMatrix":
        if "demand_bps" not in payload:
            raise ValueError("traffic matrix payload has no 'demand_bps'")
        return cls(np.asarray(payload["demand_bps"], dtype=np.float64),
                   kind=payload.get("kind", "custom"))

    def to_json(self, path: str, indent: Optional[int] = None) -> None:
        """Write the matrix as JSON (floats via ``repr``, so a round trip
        is bit-identical)."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.as_dict(), stream, indent=indent)
            stream.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "TrafficMatrix":
        """Load a matrix written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))
