"""Stochastic flow churn: seeded Poisson arrivals with heavy-tail sizes.

The paper's §5.4 workload is a fixed set of *infinite* flows; real
platforms see flows arrive, transfer a finite number of bytes, and leave.
:class:`FlowArrivalProcess` turns a :class:`~repro.traffic.matrix.
TrafficMatrix` into that dynamic workload: each city pair gets an
independent Poisson arrival process whose rate is proportional to the
pair's matrix demand, and each flow draws a size from an exponential,
lognormal, or Pareto distribution with a configurable mean.

Determinism contract (mirroring :mod:`repro.faults`):

* Every pair owns its own :class:`random.Random` stream seeded with the
  *string* ``"{seed}:{src}:{dst}"`` — CPython hashes string seeds with
  sha512, so streams are stable across processes and independent of
  ``PYTHONHASHSEED``.
* Streams never couple: adding a pair to the matrix, or changing one
  pair's demand, cannot perturb any other pair's flows.  Two schedules
  generated from disjoint matrices merge into exactly the schedule the
  union matrix would generate.
* A :class:`WorkloadSchedule` is pure data — frozen dataclass events,
  content-sorted, picklable, JSON round-trippable — so it crosses the
  sweep-engine process boundary inside
  :class:`repro.sweep.NetworkSpec` untouched (``workers=N`` stays
  bit-identical to serial).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .matrix import TrafficMatrix

__all__ = ["FlowRequest", "WorkloadSchedule", "FlowArrivalProcess",
           "FlowArrivalStream", "SIZE_DISTRIBUTIONS"]

#: Supported flow-size distributions.
SIZE_DISTRIBUTIONS = ("exponential", "lognormal", "pareto")


@dataclass(frozen=True)
class FlowRequest:
    """One finite transfer: ``size_bytes`` from ``src_gid`` to ``dst_gid``
    starting at ``t_start_s``.

    Attributes:
        t_start_s: Arrival (start) time, seconds.
        src_gid: Source ground station.
        dst_gid: Destination ground station.
        size_bytes: Transfer size (application payload), bytes.
    """

    t_start_s: float
    src_gid: int
    dst_gid: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.t_start_s < 0.0 or not math.isfinite(self.t_start_s):
            raise ValueError(
                f"start time must be finite and >= 0, got {self.t_start_s}")
        if self.src_gid == self.dst_gid:
            raise ValueError("flow endpoints must differ")
        if self.src_gid < 0 or self.dst_gid < 0:
            raise ValueError("gids must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError(
                f"flow size must be positive, got {self.size_bytes}")

    def as_dict(self) -> Dict[str, Any]:
        return {"t_start_s": self.t_start_s, "src_gid": self.src_gid,
                "dst_gid": self.dst_gid, "size_bytes": self.size_bytes}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FlowRequest":
        return cls(t_start_s=float(record["t_start_s"]),
                   src_gid=int(record["src_gid"]),
                   dst_gid=int(record["dst_gid"]),
                   size_bytes=int(record["size_bytes"]))


def _sort_key(request: FlowRequest) -> tuple:
    """Total, content-only order — schedules built from the same requests
    compare and iterate identically regardless of construction order."""
    return (request.t_start_s, request.src_gid, request.dst_gid,
            request.size_bytes)


class WorkloadSchedule:
    """An immutable, time-sorted collection of flow requests.

    Args:
        requests: The flow requests, any order (stored schedule-sorted).
        seed: The generating process's base seed (carried for provenance
            and for deriving per-flow packet-level streams).

    Example::

        matrix = TrafficMatrix.gravity(count=20, total_offered_bps=5e8)
        schedule = FlowArrivalProcess(matrix, seed=7).generate(60.0)
        flows = schedule.as_fluid_flows()
    """

    def __init__(self, requests: Sequence[FlowRequest] = (),
                 seed: int = 0) -> None:
        self.requests: Tuple[FlowRequest, ...] = tuple(
            sorted(requests, key=_sort_key))
        self.seed = int(seed)

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[FlowRequest]:
        return iter(self.requests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadSchedule):
            return NotImplemented
        return self.requests == other.requests and self.seed == other.seed

    def __repr__(self) -> str:
        return (f"WorkloadSchedule({len(self.requests)} flows, "
                f"seed={self.seed})")

    @property
    def num_flows(self) -> int:
        return len(self.requests)

    @property
    def is_empty(self) -> bool:
        return not self.requests

    @property
    def end_s(self) -> float:
        """When the last flow *starts* (0 for an empty schedule)."""
        return max((r.t_start_s for r in self.requests), default=0.0)

    @property
    def offered_bits(self) -> float:
        """Total offered volume across all flows (bits)."""
        return float(sum(r.size_bytes for r in self.requests)) * 8.0

    def offered_load_bps(self, duration_s: float) -> float:
        """Aggregate offered load if served over ``duration_s``."""
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        return self.offered_bits / duration_s

    def pairs(self) -> List[Tuple[int, int]]:
        """Distinct (src, dst) pairs, sorted — the sweep-facing pair set."""
        return sorted({(r.src_gid, r.dst_gid) for r in self.requests})

    def merged(self, other: "WorkloadSchedule") -> "WorkloadSchedule":
        """Union of two schedules (keeps this schedule's seed)."""
        return WorkloadSchedule(self.requests + other.requests,
                                seed=self.seed)

    def shifted(self, dt_s: float) -> "WorkloadSchedule":
        """The same requests, every start time moved by ``dt_s``.

        How a workload authored relative to t=0 is attached to a live
        service mid-flight: shift it to the service's current epoch
        boundary so no request starts in the simulated past.
        """
        return WorkloadSchedule(
            [FlowRequest(t_start_s=r.t_start_s + dt_s, src_gid=r.src_gid,
                         dst_gid=r.dst_gid, size_bytes=r.size_bytes)
             for r in self.requests],
            seed=self.seed)

    def arrivals_in(self, start_s: float, end_s: float
                    ) -> List[FlowRequest]:
        """Requests starting within ``[start_s, end_s)``, schedule order."""
        return [r for r in self.requests if start_s <= r.t_start_s < end_s]

    def as_fluid_flows(self) -> list:
        """The schedule as finite, elastic
        :class:`~repro.fluid.engine.FluidFlow` s (flow *f* is request *f*,
        index-aligned with the schedule order)."""
        from ..fluid.engine import FluidFlow
        return [FluidFlow(r.src_gid, r.dst_gid, start_s=r.t_start_s,
                          size_bytes=float(r.size_bytes))
                for r in self.requests]

    # -- (de)serialization ----------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "flows": [request.as_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadSchedule":
        if "flows" not in payload:
            raise ValueError("workload payload has no 'flows' key")
        return cls([FlowRequest.from_dict(record)
                    for record in payload["flows"]],
                   seed=int(payload.get("seed", 0)))

    def to_json(self, path: str, indent: Optional[int] = 1) -> None:
        """Write the schedule as JSON (the ``--workload`` file format)."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.as_dict(), stream, indent=indent)
            stream.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "WorkloadSchedule":
        """Load a schedule written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))


class FlowArrivalProcess:
    """Seeded Poisson flow arrivals proportional to a traffic matrix.

    Each pair ``(i, j)`` with matrix demand ``d`` gets flows at rate
    ``λ = d / (8 · mean_size_bytes)`` per second, so the *expected*
    offered load per pair equals the matrix entry.  Sizes are drawn per
    flow from the configured distribution with mean ``mean_size_bytes``.

    Args:
        matrix: The demand matrix.
        mean_size_bytes: Mean flow size.
        size_distribution: ``"exponential"``, ``"lognormal"``, or
            ``"pareto"``.
        seed: Base seed; each pair derives its own sha512 string-seeded
            stream as ``Random(f"{seed}:{src}:{dst}")``.
        lognormal_sigma: Shape of the lognormal (σ of the underlying
            normal); the mean is preserved whatever σ.
        pareto_alpha: Pareto tail index; must exceed 1 so the mean exists
            (2.5 keeps the variance finite too).
        min_size_bytes: Per-flow size floor after drawing.
    """

    def __init__(self, matrix: TrafficMatrix,
                 mean_size_bytes: float = 1_000_000.0,
                 size_distribution: str = "exponential",
                 seed: int = 0,
                 lognormal_sigma: float = 1.0,
                 pareto_alpha: float = 2.5,
                 min_size_bytes: int = 1_000) -> None:
        if mean_size_bytes <= 0.0:
            raise ValueError("mean flow size must be positive")
        if size_distribution not in SIZE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown size distribution {size_distribution!r}; "
                f"known: {SIZE_DISTRIBUTIONS}")
        if lognormal_sigma <= 0.0:
            raise ValueError("lognormal sigma must be positive")
        if pareto_alpha <= 1.0:
            raise ValueError(
                "pareto alpha must exceed 1 (finite mean required)")
        if min_size_bytes < 1:
            raise ValueError("minimum flow size must be at least 1 byte")
        self.matrix = matrix
        self.mean_size_bytes = float(mean_size_bytes)
        self.size_distribution = size_distribution
        self.seed = int(seed)
        self.lognormal_sigma = float(lognormal_sigma)
        self.pareto_alpha = float(pareto_alpha)
        self.min_size_bytes = int(min_size_bytes)
        # Distribution parameters hit the configured mean exactly:
        # lognormal mean = exp(μ + σ²/2); Pareto mean = xm·α/(α-1).
        self._lognormal_mu = (math.log(self.mean_size_bytes)
                              - 0.5 * self.lognormal_sigma ** 2)
        self._pareto_xm = (self.mean_size_bytes
                           * (self.pareto_alpha - 1.0) / self.pareto_alpha)

    def pair_arrival_rate(self, src_gid: int, dst_gid: int) -> float:
        """Poisson flow-arrival rate of one pair (flows/second)."""
        return (self.matrix.rate_bps(src_gid, dst_gid)
                / (8.0 * self.mean_size_bytes))

    def _draw_size_bytes(self, rng: random.Random) -> int:
        if self.size_distribution == "exponential":
            size = rng.expovariate(1.0 / self.mean_size_bytes)
        elif self.size_distribution == "lognormal":
            size = rng.lognormvariate(self._lognormal_mu,
                                      self.lognormal_sigma)
        else:  # pareto
            size = self._pareto_xm * rng.paretovariate(self.pareto_alpha)
        return max(self.min_size_bytes, int(round(size)))

    def generate(self, duration_s: float) -> WorkloadSchedule:
        """A deterministic workload over ``[0, duration_s)``.

        Identical ``(matrix, parameters, seed)`` produce an identical,
        schedule-sorted request list; pairs are independent, so schedules
        from sub-matrices merge into the union's schedule.
        """
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        requests: List[FlowRequest] = []
        for src, dst in self.matrix.pairs():
            rate = self.pair_arrival_rate(src, dst)
            if rate <= 0.0:
                continue
            rng = random.Random(f"{self.seed}:{src}:{dst}")
            t = rng.expovariate(rate)
            while t < duration_s:
                requests.append(FlowRequest(
                    t_start_s=t, src_gid=src, dst_gid=dst,
                    size_bytes=self._draw_size_bytes(rng)))
                t += rng.expovariate(rate)
        return WorkloadSchedule(requests, seed=self.seed)

    def stream(self) -> "FlowArrivalStream":
        """An incremental (and picklable) view of the same arrivals."""
        return FlowArrivalStream(self)


class FlowArrivalStream:
    """Incremental arrival generation with checkpointable RNG streams.

    Where :meth:`FlowArrivalProcess.generate` materializes a whole
    horizon up front, a stream hands out arrivals epoch by epoch —
    :meth:`take_until` returns exactly the requests in
    ``[taken-so-far, end_s)`` — while keeping every pair's
    :class:`random.Random` at its live position.  The object pickles
    whole (``random.Random`` preserves its Mersenne-Twister state), so
    a service checkpoint taken mid-stream resumes without rewinding or
    skipping a single draw.

    Determinism contract: for any split points ``0 < t1 < t2 < ...``,
    concatenating ``take_until(t1), take_until(t2), ...`` reproduces
    ``process.generate(tN)``'s request list exactly — the per-pair draw
    order (inter-arrival gap, size, gap, size, ...) is identical, only
    the batching differs.  ``tests/test_service.py`` asserts this,
    including through a mid-stream pickle round trip.
    """

    def __init__(self, process: FlowArrivalProcess) -> None:
        self.process = process
        self.taken_until_s = 0.0
        #: Per-pair live cursor: (src, dst) -> [rng, next_arrival_s].
        self._pairs: Dict[Tuple[int, int], List[Any]] = {}
        for src, dst in process.matrix.pairs():
            rate = process.pair_arrival_rate(src, dst)
            if rate <= 0.0:
                continue
            rng = random.Random(f"{process.seed}:{src}:{dst}")
            self._pairs[(src, dst)] = [rng, rng.expovariate(rate)]

    def take_until(self, end_s: float) -> List[FlowRequest]:
        """Arrivals in ``[taken_until_s, end_s)``, schedule-sorted.

        Advancing is one-way: ``end_s`` at or before the last call's
        horizon yields no requests (nothing is ever re-drawn).
        """
        if not math.isfinite(end_s):
            raise ValueError(f"horizon must be finite, got {end_s}")
        requests: List[FlowRequest] = []
        process = self.process
        for (src, dst), cursor in self._pairs.items():
            rate = process.pair_arrival_rate(src, dst)
            rng, t = cursor
            while t < end_s:
                requests.append(FlowRequest(
                    t_start_s=t, src_gid=src, dst_gid=dst,
                    size_bytes=process._draw_size_bytes(rng)))
                t += rng.expovariate(rate)
            cursor[1] = t
        self.taken_until_s = max(self.taken_until_s, end_s)
        return sorted(requests, key=_sort_key)
