"""Workload-driven application spawning for the packet simulator.

The fluid engines consume a :class:`~repro.traffic.arrivals.
WorkloadSchedule` directly (finite flows with start times); the packet
simulator consumes it through this module: a :class:`WorkloadSpawner`
installs one finite TCP transfer per :class:`~repro.traffic.arrivals.
FlowRequest` and records flow-completion times as they happen.

Observability: given a :class:`~repro.obs.metrics.MetricsRegistry`, the
spawner maintains the ``traffic.*`` instruments — an FCT histogram, the
offered/delivered byte counters, and an active-flow-count series sampled
at every arrival and completion — which flow into the packet run's
:class:`~repro.obs.report.RunReport` like any other registry contents.
"""

from __future__ import annotations

import math
from functools import partial
from typing import Any, Callable, Dict, List, Optional

from ..obs.metrics import MetricsRegistry
from ..obs.report import FCT_BUCKETS
from ..simulation.packet import DEFAULT_HEADER_BYTES, DEFAULT_MTU_BYTES
from ..simulation.simulator import PacketSimulator
from ..transport.base import Application
from ..transport.tcp import TcpNewRenoFlow
from .arrivals import FlowRequest, WorkloadSchedule

__all__ = ["WorkloadSpawner", "FCT_BUCKETS", "controller_fct_rows"]


def controller_fct_rows(fcts_by_controller: Dict[str, List[float]]
                        ) -> Dict[str, Dict[str, float]]:
    """Per-controller FCT percentile rows for the ``fct`` report extras.

    One row per congestion controller that completed at least one flow,
    keyed by registry name — how a mixed-controller run (or a cc-lab
    cell) breaks its FCT distribution down by algorithm.  Shared between
    :meth:`WorkloadSpawner.fct_extras` and the live service's combined
    extras so both report the same shape.
    """
    import numpy as np
    rows: Dict[str, Dict[str, float]] = {}
    for name in sorted(fcts_by_controller):
        fcts = np.asarray(fcts_by_controller[name])
        if fcts.size == 0:
            continue
        rows[name] = {
            "flows_completed": float(fcts.size),
            "fct_mean_s": float(fcts.mean()),
            "fct_p50_s": float(np.percentile(fcts, 50)),
            "fct_p90_s": float(np.percentile(fcts, 90)),
            "fct_p99_s": float(np.percentile(fcts, 99)),
        }
    return rows


class WorkloadSpawner:
    """Run a workload schedule as finite TCP transfers on a packet sim.

    Args:
        schedule: The flow requests to spawn.
        packet_bytes: Wire size of a full data packet (paper: 1500).
        metrics: Optional registry receiving the ``traffic.*``
            instruments.
        flow_factory: Optional override building the application of one
            request (default: a :class:`TcpNewRenoFlow` sized to the
            request).  The factory's application must expose
            ``on_complete`` and ``completed_at_s`` like the TCP flows do.

    Example::

        sim = hypatia.build_packet_simulator()
        spawner = WorkloadSpawner(schedule, metrics=registry).install(sim)
        sim.run(duration_s)
        print(spawner.summary())
    """

    def __init__(self, schedule: WorkloadSchedule,
                 packet_bytes: int = DEFAULT_MTU_BYTES,
                 metrics: Optional[MetricsRegistry] = None,
                 flow_factory: Optional[
                     Callable[[FlowRequest], Application]] = None) -> None:
        if packet_bytes <= DEFAULT_HEADER_BYTES:
            raise ValueError("packet must be larger than its headers")
        self.schedule = schedule
        self.packet_bytes = packet_bytes
        self.metrics = metrics
        self._factory = flow_factory or self._default_factory
        self.flows: List[Application] = []
        self.fcts_s: List[float] = []
        #: Completion times keyed by the flow's congestion-controller
        #: registry name (``controller_name``; class name fallback).
        self.fcts_by_controller: Dict[str, List[float]] = {}
        self.started = 0
        self.completed = 0
        self._active = 0
        self._delivered_bytes = 0.0
        self.sim: Optional[PacketSimulator] = None

    def _default_factory(self, request: FlowRequest) -> Application:
        payload = self.packet_bytes - DEFAULT_HEADER_BYTES
        return TcpNewRenoFlow(
            request.src_gid, request.dst_gid,
            start_s=request.t_start_s,
            packet_bytes=self.packet_bytes,
            max_packets=max(1, math.ceil(request.size_bytes / payload)))

    # ------------------------------------------------------------------

    def install(self, sim: PacketSimulator) -> "WorkloadSpawner":
        """Install every request's transfer; returns self for chaining."""
        if self.sim is not None:
            raise RuntimeError("spawner is already installed")
        self.sim = sim
        registry = self.metrics
        if registry is not None:
            # Claim the instruments up front so an empty run still
            # reports zeroed traffic accounting.
            registry.histogram("traffic.fct_s", buckets=FCT_BUCKETS)
            registry.counter("traffic.flows_started")
            registry.counter("traffic.flows_completed")
            registry.counter("traffic.offered_bytes").inc(
                float(sum(r.size_bytes for r in self.schedule)))
            registry.counter("traffic.delivered_bytes")
            registry.series("traffic.active_flows")
        for request in self.schedule:
            self._install_request(sim, request)
        return self

    def _install_request(self, sim: PacketSimulator,
                         request: FlowRequest) -> None:
        """Install one request's transfer and its start/complete hooks.

        Both hooks are ``partial``s of bound methods rather than
        closures, so an installed spawner — including its pending start
        events on the scheduler — pickles into a service checkpoint.
        """
        app = self._factory(request).install(sim)
        app.on_complete = partial(self._on_flow_complete,  # type: ignore
                                  request, app)
        self.flows.append(app)
        sim.scheduler.schedule_at(request.t_start_s, self._on_flow_started)

    def _on_flow_started(self) -> None:
        assert self.sim is not None
        self.started += 1
        self._active += 1
        registry = self.metrics
        if registry is not None:
            registry.counter("traffic.flows_started").inc()
            self._sample_active(self.sim.now, +1.0)

    def _on_flow_complete(self, request: FlowRequest, app: Application,
                          now_s: float) -> None:
        fct = now_s - request.t_start_s
        self.completed += 1
        self._active -= 1
        self._delivered_bytes += float(request.size_bytes)
        self.fcts_s.append(fct)
        label = getattr(app, "controller_name", None) or type(app).__name__
        self.fcts_by_controller.setdefault(label, []).append(fct)
        registry = self.metrics
        if registry is not None:
            registry.counter("traffic.flows_completed").inc()
            registry.counter("traffic.delivered_bytes").inc(
                float(request.size_bytes))
            registry.histogram("traffic.fct_s",
                               buckets=FCT_BUCKETS).observe(fct)
            self._sample_active(now_s, -1.0)

    def _sample_active(self, now_s: float, delta: float) -> None:
        """Append the registry-global active-flow count to the series.

        The count continues from the series' last sample rather than
        this spawner's own ``_active``, so several spawners sharing one
        registry (a live service attaching workloads over time) record
        the same global series a single merged schedule would.
        """
        series = self.metrics.series("traffic.active_flows")
        last = series.values[-1] if series.values else 0.0
        series.append(now_s, last + delta)

    # ------------------------------------------------------------------

    @property
    def active(self) -> int:
        """Flows started but not yet completed."""
        return self._active

    def summary(self) -> Dict[str, Any]:
        """Flat FCT / load accounting (report-facing)."""
        summary: Dict[str, Any] = {
            "flows_offered": float(self.schedule.num_flows),
            "flows_started": float(self.started),
            "flows_completed": float(self.completed),
            "offered_bytes": float(
                sum(r.size_bytes for r in self.schedule)),
            "delivered_bytes": float(self._delivered_bytes),
        }
        if self.fcts_s:
            import numpy as np
            fcts = np.asarray(self.fcts_s)
            summary.update({
                "fct_mean_s": float(fcts.mean()),
                "fct_p50_s": float(np.percentile(fcts, 50)),
                "fct_p99_s": float(np.percentile(fcts, 99)),
                "fct_max_s": float(fcts.max()),
            })
        return summary

    def fct_extras(self) -> Dict[str, Any]:
        """The ``fct`` extras section of a :class:`~repro.obs.report.
        RunReport` — the same shape :func:`repro.obs.report.
        fluid_run_report` emits, so packet and fluid FCT distributions
        compare bucket-for-bucket."""
        from ..obs.metrics import Histogram
        histogram = Histogram("traffic.fct_s", buckets=FCT_BUCKETS)
        for fct in self.fcts_s:
            histogram.observe(fct)
        return {
            "histogram": histogram.as_dict(),
            "flows_finite": int(self.schedule.num_flows),
            "flows_completed": int(self.completed),
            "offered_bits": self.schedule.offered_bits,
            "delivered_bits": float(self._delivered_bytes) * 8.0,
            "by_controller": controller_fct_rows(self.fcts_by_controller),
        }
