"""A learned congestion controller: a UCB bandit over window multipliers.

The fourth registered plug-in (after the three classics) and the
reference "adaptive policy" of the rate-control lab.  Deliberately
simple — no ML dependencies, no RNG, fully deterministic:

* a :class:`BanditBrain` runs UCB1 over a discrete set of *arms*, each a
  multiplier on the flow's initial window;
* at a fixed decision interval, the attached :class:`BanditController`
  closes the running interval (reward = goodput minus a retransmission
  penalty, both in Mbit/s), credits the brain, pulls the next arm, and
  pins ``cwnd = initial_cwnd * arm`` until the next decision;
* tie-breaking is by lowest arm index and untried arms are explored in
  index order, so a whole scenario replays bit-identically per seed.

Across a workload the brain is *shared*: every flow the
:class:`~repro.cc.factory.ControllerFlowFactory` spawns updates the same
arm statistics (:meth:`BanditController.make_shared_state`), so short
flows inherit what earlier flows learned — on LEO paths with ample
headroom the bandit converges on aggressive arms and skips the slow-start
ramp that costs NewReno/Vegas their short-flow FCT (and skips BBR's
conservative bootstrap pacing).  Brain state is a plain dict of counts
and reward sums, so it rides along in :mod:`repro.service` checkpoints
and in :meth:`~repro.cc.api.CongestionController.state_dict`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence, Tuple

from .api import CongestionController, register_controller

__all__ = ["BanditBrain", "BanditController", "DEFAULT_ARMS"]

#: Window multipliers the bandit chooses between.  The low arm lets it
#: back off toward classic initial-window behaviour under congestion;
#: the high arms are where it wins short-flow FCT on LEO paths whose
#: bandwidth-delay product dwarfs a classic initial window.
DEFAULT_ARMS = (2.0, 4.0, 8.0, 16.0)


class BanditBrain:
    """Deterministic UCB1 statistics over a discrete arm set.

    One brain may be shared by many controllers (all flows of a
    scenario); each controller runs its own decision intervals but
    credits rewards here.
    """

    def __init__(self, num_arms: int, exploration: float = 0.5) -> None:
        if num_arms < 1:
            raise ValueError("need at least one arm")
        if exploration < 0.0:
            raise ValueError("exploration must be non-negative")
        self.num_arms = num_arms
        self.exploration = exploration
        self.counts = [0] * num_arms
        self.totals = [0.0] * num_arms
        self.pulls = 0

    def select(self) -> int:
        """The UCB1 arm choice (untried arms first, in index order;
        value ties break to the lowest index)."""
        for arm in range(self.num_arms):
            if self.counts[arm] == 0:
                return arm
        log_pulls = math.log(self.pulls)
        best_arm = 0
        best_value = -math.inf
        for arm in range(self.num_arms):
            mean = self.totals[arm] / self.counts[arm]
            bonus = math.sqrt(self.exploration * log_pulls
                              / self.counts[arm])
            value = mean + bonus
            if value > best_value:
                best_value = value
                best_arm = arm
        return best_arm

    def update(self, arm: int, reward: float) -> None:
        self.counts[arm] += 1
        self.totals[arm] += reward
        self.pulls += 1

    def means(self) -> Tuple[float, ...]:
        """Per-arm mean reward (0.0 for untried arms) — report-facing."""
        return tuple(total / count if count else 0.0
                     for total, count in zip(self.totals, self.counts))

    def state_dict(self) -> Dict[str, Any]:
        return {"num_arms": self.num_arms, "exploration": self.exploration,
                "counts": list(self.counts), "totals": list(self.totals),
                "pulls": self.pulls}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.num_arms = int(state["num_arms"])
        self.exploration = float(state["exploration"])
        self.counts = [int(c) for c in state["counts"]]
        self.totals = [float(t) for t in state["totals"]]
        self.pulls = int(state["pulls"])


class BanditController(CongestionController):
    """Pin cwnd to ``initial_cwnd x arm``, re-choosing the arm by UCB1
    at a fixed decision interval.

    Args:
        arms: Window multipliers to choose between.
        decision_interval_s: How often to close an interval and re-pull.
        loss_weight: Mbit/s of reward deducted per Mbit/s retransmitted.
        exploration: UCB1 exploration coefficient.
        brain: A shared :class:`BanditBrain` (default: a private one).
    """

    name = "bandit"

    def __init__(self, arms: Sequence[float] = DEFAULT_ARMS,
                 decision_interval_s: float = 0.25,
                 loss_weight: float = 0.5,
                 exploration: float = 0.5,
                 brain: Optional[BanditBrain] = None) -> None:
        super().__init__()
        if decision_interval_s <= 0.0:
            raise ValueError("decision interval must be positive")
        self.arms = tuple(float(a) for a in arms)
        if not self.arms or min(self.arms) <= 0.0:
            raise ValueError("arms must be positive multipliers")
        self.decision_interval_s = decision_interval_s
        self.loss_weight = loss_weight
        self.brain = brain if brain is not None \
            else BanditBrain(len(self.arms), exploration)
        if self.brain.num_arms != len(self.arms):
            raise ValueError("brain arm count does not match arms")
        self._base_cwnd = 0.0
        self._arm: Optional[int] = None
        self._interval_start_s = 0.0
        self._next_decision_s = 0.0
        self._una_at_start = 0
        self._retx_at_start = 0
        self._closed = False

    def _on_attach(self) -> None:
        self._base_cwnd = self.flow.cwnd

    # ------------------------------------------------------------------
    # Decision loop (driven by ACK arrivals; no timers of its own, so
    # an idle flow never wakes the scheduler)
    # ------------------------------------------------------------------

    def post_ack(self, now_s: float) -> None:
        flow = self.flow
        if self._closed:
            return
        if flow.completed_at_s is not None:
            # Credit the final partial interval so fast-finishing arms
            # are rewarded even on flows shorter than one interval.
            if self._arm is not None:
                self._close_interval(now_s)
            self._closed = True
            return
        if self._arm is None:
            self._open_interval(now_s)
        elif now_s >= self._next_decision_s:
            self._close_interval(now_s)
            self._open_interval(now_s)

    def _open_interval(self, now_s: float) -> None:
        flow = self.flow
        self._arm = self.brain.select()
        flow.cwnd = max(1.0, self._base_cwnd * self.arms[self._arm])
        flow.ssthresh = flow.cwnd  # keep the flow's bookkeeping harmless
        self._interval_start_s = now_s
        self._next_decision_s = now_s + self.decision_interval_s
        self._una_at_start = flow.snd_una
        self._retx_at_start = flow.retransmissions

    def _close_interval(self, now_s: float) -> None:
        flow = self.flow
        elapsed = max(now_s - self._interval_start_s, 1e-9)
        packet_mbits = flow.packet_bytes * 8.0 / 1e6
        goodput = (flow.snd_una - self._una_at_start) \
            * packet_mbits / elapsed
        retx_rate = (flow.retransmissions - self._retx_at_start) \
            * packet_mbits / elapsed
        assert self._arm is not None
        self.brain.update(self._arm, goodput - self.loss_weight * retx_rate)

    # ------------------------------------------------------------------
    # Event responses: the arm pins the window, losses only feed the
    # reward; recovery/timeouts get deterministic safety valves.
    # ------------------------------------------------------------------

    def on_ack(self, newly_acked: int, now_s: float) -> None:
        pass  # the arm, not ACK counting, sets cwnd

    def on_loss(self, now_s: float) -> None:
        pass  # the retransmission penalty lands in the interval reward

    def on_recovery_exit(self, now_s: float) -> None:
        pass  # keep the pinned window (ssthresh tracks cwnd anyway)

    def on_timeout(self, now_s: float) -> None:
        # Safety valve until the next decision re-pins the window.
        flow = self.flow
        flow.cwnd = max(2.0, flow.cwnd / 2.0)
        flow.ssthresh = flow.cwnd

    # ------------------------------------------------------------------
    # Checkpoint surface
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        state = {key: value for key, value in self.__dict__.items()
                 if key not in ("flow", "brain")}
        state["arms"] = list(self.arms)
        state["brain"] = self.brain.state_dict()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        state = dict(state)
        brain_state = state.pop("brain")
        state["arms"] = tuple(float(a) for a in state["arms"])
        for key, value in state.items():
            setattr(self, key, value)
        self.brain.load_state_dict(brain_state)

    @classmethod
    def make_shared_state(cls, **kwargs) -> Dict[str, Any]:
        arms = tuple(kwargs.get("arms", DEFAULT_ARMS))
        exploration = float(kwargs.get("exploration", 0.5))
        return {"brain": BanditBrain(len(arms), exploration)}


register_controller("bandit", BanditController)
