"""repro.cc — the pluggable rate-control lab.

Three layers (see DESIGN.md "Congestion-control plug-ins & rate-control
lab"):

1. the plug-in API (:mod:`repro.cc.api`): the
   :class:`CongestionController` interface, the shared RFC 6298
   :class:`RttEstimator`, and the string-keyed
   :func:`register_controller` registry, with the three classics
   (:mod:`repro.cc.classic`) and the learned bandit
   (:mod:`repro.cc.learned`) pre-registered;
2. a gym-style environment (:mod:`repro.cc.env`, import as a
   submodule): a seeded step/observe/act loop over the packet
   simulator for training/evaluating rate-control policies;
3. the evaluation harness (:mod:`repro.cc.lab`, import as a
   submodule): every registered controller head-to-head across the
   fault x weather x churn scenario matrix — the `repro cc-lab` CLI.

``env`` and ``lab`` are not imported here: they pull in the network
stack, which the registry (imported by :mod:`repro.transport.tcp`
itself) must not.
"""

from .api import (CONTROLLERS, CongestionController, RttEstimator,
                  controller_names, make_controller, register_controller,
                  resolve_controller)
from .classic import BbrController, NewRenoController, VegasController
from .factory import ControllerFlowFactory
from .learned import DEFAULT_ARMS, BanditBrain, BanditController

__all__ = [
    "CONTROLLERS",
    "CongestionController",
    "RttEstimator",
    "controller_names",
    "make_controller",
    "register_controller",
    "resolve_controller",
    "NewRenoController",
    "VegasController",
    "BbrController",
    "BanditBrain",
    "BanditController",
    "DEFAULT_ARMS",
    "ControllerFlowFactory",
]
