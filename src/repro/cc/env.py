"""A gym-style rate-control environment over the packet simulator.

:class:`RateControlEnv` wraps one agent flow inside a full packet
simulation — constellation motion, routing, queues, optional background
workload, faults, and weather all included — as a seeded
step/observe/act loop:

* **observe**: per-decision-interval RTT statistics, delivery rate,
  loss (retransmissions) and fault-drop counts, in-flight bytes, and
  the current window (:class:`Observation`);
* **act**: a multiplier on the agent flow's cwnd (``action_mode
  "cwnd"``) or pacing rate (``"pacing"``), applied for exactly one
  :attr:`EnvSpec.decision_interval_s` of simulated time;
* **deterministic**: the whole rollout is a pure function of
  ``(spec, seed, actions)`` — the seed feeds the background workload
  and any fault/weather schedules through
  :class:`~repro.sweep.spec.NetworkSpec`, and the simulator itself is
  a deterministic DES.  Property-tested in ``tests/test_cc_env.py``.

stdlib + numpy only; the loop follows the gym convention
(``reset() -> obs``, ``step(a) -> (obs, reward, done, info)``) without
depending on gym itself.  The agent flow runs an
:class:`ExternalController` — a registered plug-in (``"external"``)
that holds whatever the environment last set, so a policy trained here
can be replayed inside any workload via the same registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..simulation.packet import DEFAULT_MTU_BYTES
from ..simulation.simulator import LinkConfig, PacketSimulator
from ..sweep.spec import NetworkSpec
from ..traffic.spawner import WorkloadSpawner
from ..transport.tcp import TcpFlow
from .api import CongestionController, register_controller

__all__ = ["EnvSpec", "Observation", "RateControlEnv",
           "ExternalController"]


class ExternalController(CongestionController):
    """A plug-in whose decisions are made *outside* the flow — by a
    :class:`RateControlEnv` (or any policy driving the flow directly).

    Holds the window/pacing the environment last set; the flow's loss
    recovery machinery still runs, but applies no multiplicative
    decrease of its own (the policy sees losses in its observations and
    is expected to react).
    """

    name = "external"

    def __init__(self, paced: bool = False,
                 initial_pacing_rate_bps: float = 1e6) -> None:
        super().__init__()
        self.paced = paced  # instance override of the class attribute
        self._pacing_rate_bps = initial_pacing_rate_bps

    def _on_attach(self) -> None:
        # ssthresh tracks cwnd so slow-start comparisons stay harmless.
        self.flow.ssthresh = self.flow.cwnd

    def on_recovery_exit(self, now_s: float) -> None:
        pass  # keep the externally set window

    def on_timeout(self, now_s: float) -> None:
        pass  # ditto; the policy observes the stall and reacts

    @property
    def pacing_rate_bps(self) -> float:
        return self._pacing_rate_bps

    def set_pacing_rate(self, rate_bps: float) -> None:
        self._pacing_rate_bps = max(rate_bps, 1.0)


register_controller("external", ExternalController)


@dataclass(frozen=True)
class EnvSpec:
    """Frozen recipe of one environment instance.

    Determinism contract: two environments built from equal specs and
    seeds, fed the same action sequence, produce identical observation
    streams (``tests/test_cc_env.py`` property-tests this).

    Args:
        network: The scenario — constellation, stations, ISLs, and any
            faults/weather/background workload baked into the spec.
        src_gid / dst_gid: Endpoints of the agent flow.
        decision_interval_s: Simulated time per :meth:`RateControlEnv.
            step`.
        horizon_s: Episode length; ``step`` returns ``done`` at/after
            this simulated time (or when a finite agent flow completes).
        max_packets: Agent flow size (None: long-running).
        packet_bytes: Wire size of a full data packet.
        action_mode: ``"cwnd"`` (multiplier on the window) or
            ``"pacing"`` (multiplier on the pacing rate).
        initial_cwnd_packets: Agent flow's starting window.
        initial_pacing_rate_bps: Starting rate for ``"pacing"`` mode.
        min_cwnd / max_cwnd: Clamp for the window under ``"cwnd"``.
        gsl_queue_packets / isl_queue_packets: Device queue depths
            (paper defaults when None).
        forwarding_interval_s: Forwarding refresh period.
    """

    network: NetworkSpec
    src_gid: int = 0
    dst_gid: int = 1
    decision_interval_s: float = 0.2
    horizon_s: float = 20.0
    max_packets: Optional[int] = None
    packet_bytes: int = DEFAULT_MTU_BYTES
    action_mode: str = "cwnd"
    initial_cwnd_packets: float = 10.0
    initial_pacing_rate_bps: float = 1e6
    min_cwnd: float = 1.0
    max_cwnd: float = 100_000.0
    gsl_queue_packets: Optional[int] = None
    isl_queue_packets: Optional[int] = None
    forwarding_interval_s: float = 0.1

    def __post_init__(self) -> None:
        if self.action_mode not in ("cwnd", "pacing"):
            raise ValueError(
                f"action_mode must be 'cwnd' or 'pacing', "
                f"got {self.action_mode!r}")
        if self.decision_interval_s <= 0.0:
            raise ValueError("decision interval must be positive")
        if self.horizon_s <= 0.0:
            raise ValueError("horizon must be positive")


@dataclass(frozen=True)
class Observation:
    """What the policy sees after one decision interval."""

    time_s: float
    #: RTT statistics over the interval's samples (NaN if none arrived).
    rtt_last_s: float
    rtt_min_s: float
    rtt_mean_s: float
    #: Acknowledged payload over the interval, as a rate.
    delivery_rate_bps: float
    #: Loss signals over the interval.
    retransmitted_packets: int
    fault_drops: int
    congestion_drops: int
    #: Instantaneous sender state.
    inflight_bytes: int
    cwnd_packets: float
    acked_packets: int
    done: bool

    def as_vector(self) -> np.ndarray:
        """The observation as a flat float vector (policy-facing)."""
        return np.array([
            self.time_s, self.rtt_last_s, self.rtt_min_s, self.rtt_mean_s,
            self.delivery_rate_bps, float(self.retransmitted_packets),
            float(self.fault_drops), float(self.congestion_drops),
            float(self.inflight_bytes), self.cwnd_packets,
            float(self.acked_packets), float(self.done),
        ])


class RateControlEnv:
    """Seeded step/observe/act loop for rate-control policies.

    Usage::

        env = RateControlEnv(spec, seed=7)
        obs = env.reset()
        while not obs.done:
            obs, reward, done, info = env.step(1.25)  # gentle probe up

    The reward is ``power``-flavoured: delivered Mbit/s scaled by
    ``rtt_min/rtt_mean`` (queueing discount), minus ``loss_penalty`` per
    retransmitted Mbit/s — a dense, unit-consistent signal; policies are
    free to ignore it and score themselves on observations.
    """

    def __init__(self, spec: EnvSpec, seed: int = 0,
                 loss_penalty: float = 0.5) -> None:
        self.spec = spec
        self.seed = seed
        self.loss_penalty = loss_penalty
        self.sim: Optional[PacketSimulator] = None
        self.flow: Optional[TcpFlow] = None
        self.controller: Optional[ExternalController] = None
        self.spawner: Optional[WorkloadSpawner] = None
        self._steps = 0
        self._last_una = 0
        self._last_retx = 0
        self._last_rtt_count = 0
        self._last_fault_drops = 0
        self._last_congestion_drops = 0

    # ------------------------------------------------------------------

    def reset(self) -> Observation:
        """(Re)build the simulation from ``(spec, seed)`` and run to the
        agent flow's start; returns the initial observation."""
        spec = self.spec
        network = spec.network.build()
        kwargs: Dict[str, Any] = {}
        if spec.gsl_queue_packets is not None:
            kwargs["gsl_queue_packets"] = spec.gsl_queue_packets
        if spec.isl_queue_packets is not None:
            kwargs["isl_queue_packets"] = spec.isl_queue_packets
        link_config = LinkConfig(**kwargs) if kwargs else None
        self.sim = PacketSimulator(
            network, link_config=link_config,
            forwarding_interval_s=spec.forwarding_interval_s)
        self.controller = ExternalController(
            paced=(spec.action_mode == "pacing"),
            initial_pacing_rate_bps=spec.initial_pacing_rate_bps)
        self.flow = TcpFlow(
            spec.src_gid, spec.dst_gid,
            packet_bytes=spec.packet_bytes,
            max_packets=spec.max_packets,
            initial_cwnd_packets=spec.initial_cwnd_packets,
            controller=self.controller).install(self.sim)
        self.spawner = None
        workload = spec.network.workload
        if workload is not None and not workload.is_empty:
            self.spawner = WorkloadSpawner(
                workload, packet_bytes=spec.packet_bytes).install(self.sim)
        self._steps = 0
        self._last_una = 0
        self._last_retx = 0
        self._last_rtt_count = 0
        self._last_fault_drops = 0
        self._last_congestion_drops = 0
        return self._observe()

    def step(self, action: float) -> Tuple[Observation, float, bool,
                                           Dict[str, Any]]:
        """Apply one multiplier, advance one decision interval.

        Returns ``(observation, reward, done, info)``.
        """
        if self.sim is None or self.flow is None:
            raise RuntimeError("call reset() before step()")
        if not (action > 0.0 and np.isfinite(action)):
            raise ValueError(f"action must be a positive finite "
                             f"multiplier, got {action!r}")
        spec = self.spec
        flow = self.flow
        if spec.action_mode == "cwnd":
            # Takes effect at the next ACK's send opportunity (poking
            # _try_send here would transmit before the flow began).
            flow.cwnd = float(np.clip(flow.cwnd * action,
                                      spec.min_cwnd, spec.max_cwnd))
            flow.ssthresh = flow.cwnd
        else:
            assert self.controller is not None
            self.controller.set_pacing_rate(
                self.controller.pacing_rate_bps * action)
        self._steps += 1
        self.sim.run(self._steps * spec.decision_interval_s)
        obs = self._observe()
        reward = self._reward(obs)
        info = {"steps": self._steps, "snd_una": flow.snd_una,
                "completed_at_s": flow.completed_at_s}
        return obs, reward, obs.done, info

    # ------------------------------------------------------------------

    def _observe(self) -> Observation:
        assert self.sim is not None and self.flow is not None
        sim, flow, spec = self.sim, self.flow, self.spec
        now = sim.now
        _, rtts = flow.rtt_log.as_arrays()
        new_rtts = rtts[self._last_rtt_count:]
        self._last_rtt_count = len(rtts)
        acked = flow.snd_una - self._last_una
        self._last_una = flow.snd_una
        retx = flow.retransmissions - self._last_retx
        self._last_retx = flow.retransmissions
        fault_total = int(getattr(sim.stats, "packets_dropped_fault", 0))
        fault = fault_total - self._last_fault_drops
        self._last_fault_drops = fault_total
        congestion_total = int(getattr(sim.stats,
                                       "packets_dropped_queue", 0))
        congestion = congestion_total - self._last_congestion_drops
        self._last_congestion_drops = congestion_total
        done = (now >= spec.horizon_s - 1e-12
                or flow.completed_at_s is not None)
        return Observation(
            time_s=now,
            rtt_last_s=float(new_rtts[-1]) if len(new_rtts) else float("nan"),
            rtt_min_s=float(new_rtts.min()) if len(new_rtts) else float("nan"),
            rtt_mean_s=(float(new_rtts.mean()) if len(new_rtts)
                        else float("nan")),
            delivery_rate_bps=(acked * flow.payload_bytes * 8.0
                               / spec.decision_interval_s),
            retransmitted_packets=retx,
            fault_drops=fault,
            congestion_drops=congestion,
            inflight_bytes=flow.flight_size * flow.packet_bytes,
            cwnd_packets=flow.cwnd,
            acked_packets=acked,
            done=done)

    def _reward(self, obs: Observation) -> float:
        delivered_mbps = obs.delivery_rate_bps / 1e6
        if (np.isfinite(obs.rtt_mean_s) and obs.rtt_mean_s > 0.0
                and np.isfinite(obs.rtt_min_s)):
            delivered_mbps *= obs.rtt_min_s / obs.rtt_mean_s
        retx_mbps = (obs.retransmitted_packets * self.spec.packet_bytes
                     * 8.0 / self.spec.decision_interval_s) / 1e6
        return delivered_mbps - self.loss_penalty * retx_mbps

    def rollout(self, actions: List[float]) -> List[Observation]:
        """Reset and run a fixed action sequence; the observation
        stream (determinism-contract surface)."""
        observations = [self.reset()]
        for action in actions:
            obs, _, done, _ = self.step(action)
            observations.append(obs)
            if done:
                break
        return observations
