"""The congestion-control plug-in API.

Paper §4.2 shows congestion control behaving *qualitatively* differently
over LEO paths (NewReno underutilizes long fat links, Vegas misreads
orbital RTT swings as congestion) and explicitly calls for evaluating
newer algorithms.  The transport layer therefore treats the congestion
controller as a swappable experiment axis rather than a class hierarchy:

* :class:`CongestionController` is the formal interface — per-ACK /
  loss / timeout / RTT-sample hooks in, cwnd / pacing-rate decisions
  out, plus a JSON-expressible state dict so controllers survive
  :mod:`repro.service` checkpoints;
* :func:`register_controller` / :func:`make_controller` form a
  string-keyed registry (mirroring
  :func:`repro.sweep.register_isl_builder`), so controller choices
  travel across process boundaries by name;
* :class:`RttEstimator` is the one shared RFC 6298 srtt/rttvar/RTO
  estimator (with Karn-style exponential backoff) that every controller
  rides on — previously duplicated knowledge of the NewReno base class.

The generic :class:`repro.transport.tcp.TcpFlow` owns the *mechanics*
(SACK scoreboard, retransmission machinery, receiver, timers); the
controller owns the *policy* (what cwnd/pacing to run after each event).
Controllers mutate ``flow.cwnd`` / ``flow.ssthresh`` directly — the flow
is the single source of truth the window accounting and the cwnd log
read from.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "CongestionController", "RttEstimator", "CONTROLLERS",
    "register_controller", "make_controller", "controller_names",
    "resolve_controller", "RTO_MIN_S", "RTO_MAX_S", "RTO_INITIAL_S",
]

#: RFC 6298 parameters (shared by every controller's estimator).
RTO_MIN_S = 0.2
RTO_MAX_S = 60.0
RTO_INITIAL_S = 1.0


class RttEstimator:
    """RFC 6298 smoothed-RTT / RTO estimation with Karn backoff.

    One instance lives on every :class:`~repro.transport.tcp.TcpFlow`;
    controllers and the flow's RTO machinery read the same ``srtt`` /
    ``rttvar`` / ``rto`` rather than keeping private copies (the seed
    classes duplicated this logic through inheritance).

    Karn's rule in this simulator: samples are always unambiguous
    (ACKs echo the *specific* transmission's send timestamp), so the
    sampling half is implicit; the backoff half —
    exponential RTO doubling on timeout, never below the updated
    estimate — is :meth:`backoff`.
    """

    __slots__ = ("srtt", "rttvar", "rto")

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = RTO_INITIAL_S

    def observe(self, sample_s: float) -> None:
        """Fold one RTT sample into srtt/rttvar and recompute the RTO."""
        if self.srtt is None:
            self.srtt = sample_s
            self.rttvar = sample_s / 2.0
        else:
            self.rttvar = (0.75 * self.rttvar
                           + 0.25 * abs(self.srtt - sample_s))
            self.srtt = 0.875 * self.srtt + 0.125 * sample_s
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, RTO_MIN_S),
                       RTO_MAX_S)

    def backoff(self) -> None:
        """Karn-style exponential backoff after a retransmission timeout."""
        self.rto = min(self.rto * 2.0, RTO_MAX_S)

    def state_dict(self) -> Dict[str, Any]:
        return {"srtt": self.srtt, "rttvar": self.rttvar, "rto": self.rto}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.srtt = state["srtt"]
        self.rttvar = float(state["rttvar"])
        self.rto = float(state["rto"])


class CongestionController:
    """Base class of congestion-control plug-ins.

    Lifecycle: construct (pure parameters), :meth:`attach` to exactly
    one flow, then receive event hooks for the flow's lifetime.  The
    controller expresses its decisions by mutating ``flow.cwnd`` and
    ``flow.ssthresh`` (window-based control) and/or by returning a
    rate from :attr:`pacing_rate_bps` with :attr:`paced` True
    (rate-based control, e.g. BBR).

    Hook call points (see :class:`repro.transport.tcp.TcpFlow`):

    * :meth:`on_rtt_sample` — every ACK carrying a timestamp echo,
      *after* the shared :class:`RttEstimator` has folded the sample;
    * :meth:`on_ack` — cumulative progress outside loss recovery;
    * :meth:`on_loss` — entering fast recovery (scoreboard inferred a
      loss); the flow has already done the recovery bookkeeping;
    * :meth:`on_recovery_exit` — the recovery point was cumulatively
      ACKed;
    * :meth:`on_timeout` — a retransmission timeout fired (with
      :meth:`post_timeout` after the flow's RTO bookkeeping finished);
    * :meth:`post_ack` — end of ACK processing, after transmission
      opportunities were taken (model-based controllers refresh their
      cwnd/pacing decisions here).

    Subclasses must be constructible with keyword arguments only — the
    registry builds them as ``cls(**kwargs)``.
    """

    #: Registry key; subclasses override.
    name = "base"
    #: Rate-based controllers set True: the flow paces single packets at
    #: :attr:`pacing_rate_bps` instead of window-bursting.
    paced = False
    #: Attribute names holding deques (converted to lists by
    #: :meth:`state_dict` and restored by :meth:`load_state_dict`).
    _deque_fields: tuple = ()

    def __init__(self) -> None:
        self.flow = None  # set by attach()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, flow) -> "CongestionController":
        """Bind to the flow this controller steers; returns self."""
        if self.flow is not None:
            raise RuntimeError(
                f"controller {self.name!r} is already attached to a flow; "
                f"construct one controller per flow")
        self.flow = flow
        self._on_attach()
        return self

    def _on_attach(self) -> None:
        """Subclass hook: finish initialization that needs flow fields
        (packet size, initial cwnd)."""

    # ------------------------------------------------------------------
    # Event hooks (policy in)
    # ------------------------------------------------------------------

    def on_rtt_sample(self, rtt_s: float, now_s: float) -> None:
        """An RTT sample arrived (estimator already updated)."""

    def on_ack(self, newly_acked: int, now_s: float) -> None:
        """Cumulative ACK progress of ``newly_acked`` packets outside
        recovery; grow (or hold) the window here."""

    def on_loss(self, now_s: float) -> None:
        """The scoreboard inferred a loss and the flow entered fast
        recovery; apply the multiplicative-decrease decision here."""

    def on_recovery_exit(self, now_s: float) -> None:
        """Fast recovery completed (the recovery point was ACKed)."""
        flow = self.flow
        flow.cwnd = flow.ssthresh

    def on_timeout(self, now_s: float) -> None:
        """A retransmission timeout fired; set the post-RTO window."""

    def post_timeout(self, now_s: float) -> None:
        """End of RTO processing, after the flow logged the post-RTO
        window (rate-based controllers patch cwnd back up here)."""

    def post_ack(self, now_s: float) -> None:
        """End of ACK processing (after sends); refresh model decisions."""

    # ------------------------------------------------------------------
    # Decisions out
    # ------------------------------------------------------------------

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        """Current pacing rate; only meaningful when :attr:`paced`."""
        return None

    # ------------------------------------------------------------------
    # Checkpoint surface
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """A JSON-expressible snapshot of the controller's state.

        The default captures every instance attribute except the flow
        back-reference, converting deques to lists.  Subclasses with
        richer state (shared brains, RNG streams) override and call up.
        """
        state: Dict[str, Any] = {}
        for key, value in self.__dict__.items():
            if key == "flow":
                continue
            if key in self._deque_fields:
                value = [list(item) if isinstance(item, tuple) else item
                         for item in value]
            state[key] = value
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (flow binding unchanged)."""
        for key, value in state.items():
            if key in self._deque_fields:
                value = deque(tuple(item) if isinstance(item, list) else item
                              for item in value)
            setattr(self, key, value)

    @classmethod
    def make_shared_state(cls, **kwargs) -> Dict[str, Any]:
        """Extra constructor kwargs shared by all flows of one scenario.

        Learned controllers override this to build one brain that every
        flow's controller instance updates (see
        :class:`repro.cc.learned.BanditController`); classic controllers
        share nothing.
        """
        del kwargs
        return {}


#: Named controller classes/factories a flow (or a lab cell in another
#: process) may reference.  Keys travel across process boundaries;
#: values never leave this process.
CONTROLLERS: Dict[str, Callable[..., CongestionController]] = {}


def register_controller(name: str,
                        factory: Callable[..., CongestionController],
                        ) -> None:
    """Register a controller class under a string key.

    Mirrors :func:`repro.sweep.register_isl_builder`: registration must
    happen at import time of a module worker processes also import when
    using the ``spawn`` start method; under ``fork`` (the Linux
    default) the inherited registry suffices.  Re-registering the same
    factory under its name is a no-op; a different factory under a
    taken name is an error.
    """
    existing = CONTROLLERS.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"controller name {name!r} is already taken")
    CONTROLLERS[name] = factory


def make_controller(name: str, **kwargs) -> CongestionController:
    """Instantiate a registered controller by name."""
    try:
        factory = CONTROLLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; known: "
            f"{controller_names()} (register_controller adds more)"
        ) from None
    return factory(**kwargs)


def controller_names() -> List[str]:
    """Registered controller names, sorted."""
    return sorted(CONTROLLERS)


def resolve_controller(spec: Union[str, CongestionController, None],
                       ) -> CongestionController:
    """A controller instance from a name, an instance, or None.

    ``None`` resolves to the default (``"newreno"``); a string goes
    through the registry; an unattached instance passes through.
    """
    if spec is None:
        spec = "newreno"
    if isinstance(spec, str):
        return make_controller(spec)
    if isinstance(spec, CongestionController):
        return spec
    raise TypeError(
        f"controller must be a registered name or a CongestionController "
        f"instance, got {type(spec).__name__}")
