"""Controller-aware flow construction for workload spawners.

:class:`ControllerFlowFactory` is the bridge between the traffic layer
(which spawns one finite transfer per
:class:`~repro.traffic.arrivals.FlowRequest`) and the controller
registry: it builds :class:`~repro.transport.tcp.TcpFlow` applications
running a *named* controller, holding any cross-flow shared state (a
learned controller's brain) so it rides along when a
:class:`~repro.service.LiveSimulationService` checkpoint pickles the
spawners.  Instances carry only the controller name, kwargs, and that
shared state — they pickle and travel to sweep/lab worker processes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..simulation.packet import DEFAULT_HEADER_BYTES, DEFAULT_MTU_BYTES
from .api import CONTROLLERS, make_controller

if TYPE_CHECKING:  # the traffic layer imports transport, which imports us
    from ..traffic.arrivals import FlowRequest

__all__ = ["ControllerFlowFactory"]


class ControllerFlowFactory:
    """Build one :class:`~repro.transport.tcp.TcpFlow` per request,
    running the named controller.

    Args:
        controller: A registered controller name.
        controller_kwargs: Constructor kwargs for each flow's controller.
        packet_bytes: Wire size of a full data packet.
        share_state: Build the controller class's shared state once
            (``make_shared_state``) and hand it to every flow — for the
            bandit this is the brain all flows learn through.  Classic
            controllers share nothing either way.

    Usage: ``WorkloadSpawner(schedule, flow_factory=factory)``.
    """

    def __init__(self, controller: str = "newreno",
                 controller_kwargs: Optional[Dict[str, Any]] = None,
                 packet_bytes: int = DEFAULT_MTU_BYTES,
                 share_state: bool = True) -> None:
        if controller not in CONTROLLERS:
            # Same failure surface as make_controller, but at
            # construction time rather than first flow arrival.
            make_controller(controller)
        self.controller = controller
        self.controller_kwargs = dict(controller_kwargs or {})
        self.packet_bytes = packet_bytes
        self.shared_state: Dict[str, Any] = {}
        if share_state:
            cls = CONTROLLERS[controller]
            maker = getattr(cls, "make_shared_state", None)
            if maker is not None:
                self.shared_state = maker(**self.controller_kwargs)

    def __call__(self, request: FlowRequest):
        # Imported lazily: repro.transport.tcp itself imports repro.cc
        # for the registry, so a module-level import here would cycle.
        from ..transport.tcp import TcpFlow
        payload = self.packet_bytes - DEFAULT_HEADER_BYTES
        controller = make_controller(
            self.controller, **{**self.controller_kwargs,
                                **self.shared_state})
        return TcpFlow(
            request.src_gid, request.dst_gid,
            start_s=request.t_start_s,
            packet_bytes=self.packet_bytes,
            max_packets=max(1, math.ceil(request.size_bytes / payload)),
            controller=controller)
