"""Head-to-head congestion-controller evaluation (``repro cc-lab``).

The lab runs every registered congestion controller through the same
scenario matrix — fault x weather x churn — and scores each (scenario,
controller) cell by flow-completion-time percentiles and delivered vs
offered load.  It is how a new controller (the UCB bandit, an external
policy trained in :mod:`repro.cc.env`) earns its place next to the
classics: same constellation, same seeded workload, same injected
impairments, one comparison table.

Everything here is deterministic given ``(base spec, seed)``: workloads
come from seeded :class:`~repro.traffic.arrivals.FlowArrivalProcess`
draws, fault packet-loss streams are device-seeded Bernoulli, storms are
:meth:`~repro.ground.weather.WeatherModel.synthetic`.  Cells are
independent packet simulations, so ``workers=N`` farms them over a
process pool and — because cells are enumerated in a fixed order and
``Executor.map`` preserves it — produces a report bit-identical to the
serial run.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..faults.schedule import FaultEvent, FaultSchedule
from ..ground.weather import WeatherModel
from ..simulation.simulator import LinkConfig, PacketSimulator
from ..sweep.spec import NetworkSpec
from ..traffic.arrivals import FlowArrivalProcess
from ..traffic.matrix import TrafficMatrix
from ..traffic.spawner import WorkloadSpawner
from .api import controller_names
from .factory import ControllerFlowFactory

__all__ = [
    "DEFAULT_SITES",
    "LabScenario",
    "CcCellResult",
    "CcLabReport",
    "lab_network",
    "build_scenarios",
    "run_cell",
    "run_lab",
    "CLASSIC_CONTROLLERS",
]

#: The controllers ported verbatim from the seed TCP flows — the
#: yardstick a learned policy is scored against.
CLASSIC_CONTROLLERS = ("newreno", "vegas", "bbr")

#: Six well-spread cities used by the lab's default ground segment
#: (small enough that every cell stays cheap, far enough apart that
#: paths cross many ISLs).
DEFAULT_SITES: Tuple[Tuple[str, float, float], ...] = (
    ("Quito", 0.0, -78.5),
    ("Nairobi", -1.3, 36.8),
    ("Singapore", 1.35, 103.8),
    ("Honolulu", 21.3, -157.9),
    ("Sydney", -33.9, 151.2),
    ("Madrid", 40.4, -3.7),
)

#: Offered load per ground-station pair (bit/s) for the churn axis.
CHURN_RATE_BPS = {"light": 250_000.0, "heavy": 900_000.0}

#: Mean flow size of the lab workload (bytes).  Small transfers keep
#: flow churn high — the regime where window policy actually matters.
MEAN_FLOW_BYTES = 40_000.0

#: Stochastic loss rate on impaired ground uplinks in faulty scenarios.
FAULT_LOSS_RATE = 0.03


def lab_network(shell: str = "8x8",
                sites: Sequence[Tuple[str, float, float]] = DEFAULT_SITES,
                min_elevation_deg: float = 10.0,
                altitude_km: float = 600.0,
                inclination_deg: float = 53.0) -> NetworkSpec:
    """The lab's base :class:`NetworkSpec` (no workload attached yet).

    Args:
        shell: ``"NxM"`` — N orbits of M satellites at ``altitude_km`` /
            ``inclination_deg``.  Shells below 8x8 leave some site pairs
            permanently unrouteable; the default is the smallest fully
            connected lab constellation.
        sites: ``(name, lat, lon)`` ground stations, gids in order.
    """
    from ..constellations.builder import Constellation
    from ..geo.coordinates import GeodeticPosition
    from ..ground.stations import GroundStation
    from ..orbits.shell import Shell
    from ..topology.network import LeoNetwork

    try:
        orbits_s, sats_s = shell.lower().split("x")
        num_orbits, sats_per_orbit = int(orbits_s), int(sats_s)
    except ValueError:
        raise ValueError(f"shell must look like '8x8', got {shell!r}")
    lab_shell = Shell(name=f"LAB-{shell}", num_orbits=num_orbits,
                      satellites_per_orbit=sats_per_orbit,
                      altitude_m=altitude_km * 1000.0,
                      inclination_deg=inclination_deg)
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(sites)
    ]
    network = LeoNetwork(Constellation([lab_shell]), stations,
                         min_elevation_deg=min_elevation_deg)
    return NetworkSpec.from_network(network)


@dataclass(frozen=True)
class LabScenario:
    """One cell-row of the matrix: a spec with workload plus its axes."""

    name: str
    spec: NetworkSpec
    duration_s: float
    axes: Tuple[Tuple[str, str], ...]

    @property
    def axes_dict(self) -> Dict[str, str]:
        return dict(self.axes)


def _faulty_schedule(spec: NetworkSpec, duration_s: float,
                     seed: int) -> FaultSchedule:
    """Impairments for the fault axis: lossy uplinks plus an ISL cut.

    Two ground stations (derived from the seed) suffer stochastic
    uplink loss over the middle of the run, and one plus-grid ISL is
    cut for the middle third — enough that retransmission policy and
    rerouting both matter, while the network stays usable.
    """
    num_sites = len(spec.ground_stations)
    lossy_a = seed % num_sites
    lossy_b = (seed + 1) % num_sites
    start, end = 0.2 * duration_s, 0.9 * duration_s
    num_sats = sum(s.num_orbits * s.satellites_per_orbit
                   for s in spec.shells)
    sat = seed % num_sats
    events = [
        FaultEvent.packet_loss(start, end, rate=FAULT_LOSS_RATE,
                               gid=lossy_a),
        FaultEvent.packet_loss(start, end, rate=FAULT_LOSS_RATE,
                               gid=lossy_b),
        FaultEvent.isl_cut(sat, (sat + 1) % num_sats,
                           start_s=duration_s / 3.0,
                           end_s=2.0 * duration_s / 3.0),
    ]
    return FaultSchedule(events, seed=seed)


def _storm_weather(spec: NetworkSpec, duration_s: float,
                   seed: int) -> WeatherModel:
    storms = WeatherModel.synthetic(
        num_stations=len(spec.ground_stations), duration_s=duration_s,
        seed=seed, storm_probability=0.5, mean_duration_s=duration_s / 2.0,
        penalty_deg=25.0)
    return storms


def build_scenarios(base: Optional[NetworkSpec] = None,
                    duration_s: float = 8.0,
                    seed: int = 0,
                    fault_axis: Sequence[str] = ("clean", "faulty"),
                    weather_axis: Sequence[str] = ("clear", "storm"),
                    churn_axis: Sequence[str] = ("light", "heavy"),
                    ) -> List[LabScenario]:
    """The fault x weather x churn matrix over ``base``.

    Every scenario reuses the same constellation and ground segment and
    differs only in its injected impairments and seeded workload, so
    controller comparisons isolate rate-control policy.  Axis values:
    fault in ``{"clean", "faulty"}``, weather in ``{"clear", "storm"}``,
    churn in ``{"light", "heavy"}``; pass shorter sequences to shrink
    the matrix (tests do).
    """
    if base is None:
        base = lab_network()
    scenarios: List[LabScenario] = []
    num_sites = len(base.ground_stations)
    for fault in fault_axis:
        if fault not in ("clean", "faulty"):
            raise ValueError(f"unknown fault axis value {fault!r}")
        for weather in weather_axis:
            if weather not in ("clear", "storm"):
                raise ValueError(f"unknown weather axis value {weather!r}")
            for churn in churn_axis:
                if churn not in CHURN_RATE_BPS:
                    raise ValueError(f"unknown churn axis value {churn!r}")
                matrix = TrafficMatrix.permutation(
                    num_stations=num_sites,
                    rate_bps=CHURN_RATE_BPS[churn], seed=seed)
                workload = FlowArrivalProcess(
                    matrix, mean_size_bytes=MEAN_FLOW_BYTES,
                    seed=seed).generate(duration_s * 0.75)
                spec = replace(
                    base,
                    faults=(_faulty_schedule(base, duration_s, seed)
                            if fault == "faulty" else base.faults),
                    weather=(_storm_weather(base, duration_s, seed)
                             if weather == "storm" else base.weather),
                ).with_workload(workload)
                scenarios.append(LabScenario(
                    name=f"{fault}-{weather}-{churn}",
                    spec=spec, duration_s=duration_s,
                    axes=(("fault", fault), ("weather", weather),
                          ("churn", churn))))
    return scenarios


@dataclass
class CcCellResult:
    """One (scenario, controller) cell's score."""

    scenario: str
    controller: str
    axes: Dict[str, str] = field(default_factory=dict)
    flows_offered: int = 0
    flows_completed: int = 0
    fct_mean_s: float = float("nan")
    fct_p50_s: float = float("nan")
    fct_p90_s: float = float("nan")
    fct_p99_s: float = float("nan")
    offered_bits: float = 0.0
    delivered_bits: float = 0.0
    fault_drops: int = 0
    congestion_drops: int = 0

    @property
    def delivered_fraction(self) -> float:
        if self.offered_bits <= 0.0:
            return 0.0
        return self.delivered_bits / self.offered_bits

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario, "controller": self.controller,
            "axes": dict(self.axes),
            "flows_offered": self.flows_offered,
            "flows_completed": self.flows_completed,
            "fct_mean_s": self.fct_mean_s, "fct_p50_s": self.fct_p50_s,
            "fct_p90_s": self.fct_p90_s, "fct_p99_s": self.fct_p99_s,
            "offered_bits": self.offered_bits,
            "delivered_bits": self.delivered_bits,
            "delivered_fraction": self.delivered_fraction,
            "fault_drops": self.fault_drops,
            "congestion_drops": self.congestion_drops,
        }


def run_cell(scenario: LabScenario, controller: str,
             gsl_queue_packets: int = 25, isl_queue_packets: int = 25,
             forwarding_interval_s: float = 0.1) -> CcCellResult:
    """Run one (scenario, controller) cell to completion.

    Module-level and argument-picklable on purpose: the parallel path
    ships ``(scenario, controller)`` pairs to worker processes.
    """
    import numpy as np

    sim = PacketSimulator(
        scenario.spec.build(),
        link_config=LinkConfig(gsl_queue_packets=gsl_queue_packets,
                               isl_queue_packets=isl_queue_packets),
        forwarding_interval_s=forwarding_interval_s)
    workload = scenario.spec.workload
    assert workload is not None, "lab scenarios always carry a workload"
    spawner = WorkloadSpawner(
        workload,
        flow_factory=ControllerFlowFactory(controller)).install(sim)
    sim.run(scenario.duration_s)

    result = CcCellResult(scenario=scenario.name, controller=controller,
                          axes=scenario.axes_dict,
                          flows_offered=workload.num_flows,
                          flows_completed=spawner.completed,
                          offered_bits=workload.offered_bits,
                          delivered_bits=float(
                              spawner._delivered_bytes) * 8.0,
                          fault_drops=sim.stats.packets_dropped_fault,
                          congestion_drops=sim.stats.packets_dropped_queue)
    if spawner.fcts_s:
        fcts = np.asarray(spawner.fcts_s)
        result.fct_mean_s = float(fcts.mean())
        result.fct_p50_s = float(np.percentile(fcts, 50))
        result.fct_p90_s = float(np.percentile(fcts, 90))
        result.fct_p99_s = float(np.percentile(fcts, 99))
    return result


def _run_cell_star(args: Tuple[LabScenario, str]) -> CcCellResult:
    return run_cell(*args)


@dataclass
class CcLabReport:
    """All cells of one lab run plus the derived comparisons."""

    cells: List[CcCellResult]
    seed: int = 0
    learned: str = "bandit"

    @property
    def scenarios(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.scenario not in seen:
                seen.append(cell.scenario)
        return seen

    @property
    def controllers(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.controller not in seen:
                seen.append(cell.controller)
        return seen

    def cell(self, scenario: str, controller: str
             ) -> Optional[CcCellResult]:
        for c in self.cells:
            if c.scenario == scenario and c.controller == controller:
                return c
        return None

    def winners(self) -> Dict[str, str]:
        """Per scenario, the controller with the lowest FCT p50.

        Cells that completed no flows never win; ties break toward the
        cell enumerated first (controller order is caller-fixed), so
        the winner table is deterministic.
        """
        winners: Dict[str, str] = {}
        for scenario in self.scenarios:
            best: Optional[CcCellResult] = None
            for cell in self.cells:
                if cell.scenario != scenario or not cell.flows_completed:
                    continue
                if best is None or cell.fct_p50_s < best.fct_p50_s:
                    best = cell
            if best is not None:
                winners[scenario] = best.controller
        return winners

    def learned_vs_best_classic(self) -> Dict[str, Dict[str, Any]]:
        """Per scenario: the learned controller against the best classic.

        ``wins`` is true where the learned p50 matches or beats the best
        classic's — the lab's acceptance criterion is that this holds in
        at least one scenario of the full matrix.
        """
        rows: Dict[str, Dict[str, Any]] = {}
        for scenario in self.scenarios:
            learned = self.cell(scenario, self.learned)
            classics = [c for c in self.cells
                        if c.scenario == scenario and c.flows_completed
                        and c.controller in CLASSIC_CONTROLLERS]
            if learned is None or not classics:
                continue
            best = min(classics, key=lambda c: c.fct_p50_s)
            wins = bool(learned.flows_completed
                        and learned.fct_p50_s <= best.fct_p50_s)
            rows[scenario] = {
                "learned_fct_p50_s": learned.fct_p50_s,
                "best_classic": best.controller,
                "best_classic_fct_p50_s": best.fct_p50_s,
                "wins": wins,
            }
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "cc_lab_report",
            "seed": self.seed,
            "learned": self.learned,
            "scenarios": self.scenarios,
            "controllers": self.controllers,
            "cells": [cell.as_dict() for cell in self.cells],
            "winners": self.winners(),
            "learned_vs_best_classic": self.learned_vs_best_classic(),
        }

    def to_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def format_lines(self) -> List[str]:
        """Human-readable comparison table for the CLI."""
        lines: List[str] = []
        controllers = self.controllers
        header = f"{'scenario':<22}" + "".join(
            f"{name:>12}" for name in controllers) + "  winner"
        lines.append(header)
        winners = self.winners()
        for scenario in self.scenarios:
            row = f"{scenario:<22}"
            for name in controllers:
                cell = self.cell(scenario, name)
                if cell is None or not cell.flows_completed:
                    row += f"{'-':>12}"
                else:
                    row += f"{cell.fct_p50_s * 1000.0:>10.1f}ms"
            row += f"  {winners.get(scenario, '-')}"
            lines.append(row)
        lines.append("")
        versus = self.learned_vs_best_classic()
        won = sum(1 for row in versus.values() if row["wins"])
        lines.append(
            f"{self.learned} matches or beats the best classic FCT p50 "
            f"in {won}/{len(versus)} scenarios (p50, lower is better)")
        return lines


def run_lab(scenarios: Optional[Sequence[LabScenario]] = None,
            controllers: Optional[Sequence[str]] = None,
            seed: int = 0,
            duration_s: float = 8.0,
            workers: int = 1,
            learned: str = "bandit",
            base: Optional[NetworkSpec] = None,
            **axes: Sequence[str]) -> CcLabReport:
    """Run the whole matrix, serially or across a process pool.

    Args:
        scenarios: Pre-built scenario list (default: the full
            :func:`build_scenarios` matrix over ``base`` with ``seed``
            and ``duration_s``; trim it with ``fault_axis=`` /
            ``weather_axis=`` / ``churn_axis=`` keyword arguments).
        controllers: Registry names to race (default: every registered
            controller except the env-only ``"external"`` stub).
        workers: Process-pool width; ``<= 1`` runs serially.  Cells are
            enumerated in a fixed (scenario, controller) order and
            ``Executor.map`` preserves it, so the report is identical
            either way.
        learned: Which controller the comparison rows treat as the
            learned policy.
    """
    if scenarios is None:
        scenarios = build_scenarios(base=base, duration_s=duration_s,
                                    seed=seed, **axes)
    elif axes:
        raise ValueError("axis overrides only apply to built scenarios")
    if controllers is None:
        controllers = [name for name in controller_names()
                       if name != "external"]
    jobs = [(scenario, controller) for scenario in scenarios
            for controller in controllers]
    if workers <= 1:
        cells = [run_cell(scenario, controller)
                 for scenario, controller in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            cells = list(pool.map(_run_cell_star, jobs))
    return CcLabReport(cells=cells, seed=seed, learned=learned)
