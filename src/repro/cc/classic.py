"""The three classic controllers as plug-ins: NewReno, Vegas, BBR.

These are straight policy ports of the seed flow classes (which hard-coded
each algorithm as a subclass of ``TcpNewRenoFlow``); the mechanics —
SACK scoreboard, retransmissions, timers, receiver — stayed behind in
:class:`repro.transport.tcp.TcpFlow`.  The regression gate in
``benchmarks/test_cc_matrix.py`` proves each port bit-identical to its
seed class (``tests/_seed_transport.py``) on scenarios exercising fast
recovery and timeouts; do not "improve" the arithmetic here without
updating that contract.

The algorithm rationale (why NewReno halves on LEO path shortening, why
Vegas collapses on path lengthening, why BBR's expiring min-RTT filter
does not) lives in the module docstrings of :mod:`repro.transport.tcp`,
:mod:`repro.transport.vegas`, and :mod:`repro.transport.bbr`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from ..obs.trace import FLOW_STATE
from .api import CongestionController, register_controller

__all__ = ["NewRenoController", "VegasController", "BbrController",
           "STARTUP_GAIN", "DRAIN_GAIN", "PROBE_BW_GAINS",
           "BW_WINDOW_ROUNDS", "MIN_RTT_WINDOW_S"]

#: BBR STARTUP/DRAIN pacing gains (2/ln2 and its inverse).
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN

#: BBR PROBE_BW gain cycle.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: Windows for BBR's two filters.
BW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW_S = 10.0


class NewRenoController(CongestionController):
    """Loss-based AIMD: slow start, congestion avoidance, halving."""

    name = "newreno"

    def on_ack(self, newly_acked: int, now_s: float) -> None:
        flow = self.flow
        if flow.cwnd < flow.ssthresh:
            flow.cwnd += newly_acked  # slow start
        else:
            flow.cwnd += newly_acked / flow.cwnd  # congestion avoidance

    def on_loss(self, now_s: float) -> None:
        flow = self.flow
        flow.ssthresh = max(flow._pipe() / 2.0, 2.0)
        flow.cwnd = flow.ssthresh

    def on_timeout(self, now_s: float) -> None:
        flow = self.flow
        flow.ssthresh = max(flow.flight_size / 2.0, 2.0)
        flow.cwnd = 1.0


class VegasController(NewRenoController):
    """Delay-based Vegas over a Reno loss-recovery base.

    Args:
        alpha: Lower backlog target (packets).
        beta: Upper backlog target (packets).
        gamma: Slow-start exit threshold (packets).
    """

    name = "vegas"
    MIN_CWND = 2.0

    def __init__(self, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0) -> None:
        super().__init__()
        if not 0.0 <= alpha <= beta:
            raise ValueError(f"need 0 <= alpha <= beta, got {alpha}, {beta}")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.base_rtt_s = math.inf
        self._window_min_rtt_s = math.inf
        self._next_adjust_s: Optional[float] = None
        self._in_vegas_slow_start = True
        self._grow_this_rtt = True  # Vegas doubles every *other* RTT

    def on_rtt_sample(self, rtt_s: float, now_s: float) -> None:
        self.base_rtt_s = min(self.base_rtt_s, rtt_s)
        self._window_min_rtt_s = min(self._window_min_rtt_s, rtt_s)
        if self._next_adjust_s is None:
            self._next_adjust_s = now_s + rtt_s
            return
        if now_s >= self._next_adjust_s:
            self._per_rtt_adjust(self._window_min_rtt_s, now_s)
            self._window_min_rtt_s = math.inf
            self._next_adjust_s = now_s + rtt_s

    def _per_rtt_adjust(self, rtt_s: float, now_s: float) -> None:
        if not math.isfinite(rtt_s) or rtt_s <= 0.0:
            return
        flow = self.flow
        # Estimated packets this flow keeps queued in the network.
        diff = flow.cwnd * (rtt_s - self.base_rtt_s) / rtt_s
        tracer = flow._tracer
        if tracer.enabled:
            # The backlog estimate is the signal Vegas acts on — the
            # quantity that misreads LEO path lengthening as congestion.
            tracer.emit(now_s, FLOW_STATE, flow=flow.flow_id,
                        value=diff, reason="vegas_backlog")
        if self._in_vegas_slow_start:
            if diff > self.gamma:
                self._in_vegas_slow_start = False
                flow.ssthresh = min(flow.ssthresh, flow.cwnd)
                if tracer.enabled:
                    tracer.emit(now_s, FLOW_STATE, flow=flow.flow_id,
                                value=flow.cwnd, reason="vegas_exit_ss")
            else:
                self._grow_this_rtt = not self._grow_this_rtt
            return
        if diff < self.alpha:
            flow.cwnd += 1.0
        elif diff > self.beta:
            flow.cwnd = max(flow.cwnd - 1.0, self.MIN_CWND)

    def on_ack(self, newly_acked: int, now_s: float) -> None:
        if self._in_vegas_slow_start:
            if self._grow_this_rtt:
                self.flow.cwnd += newly_acked
            return
        # Congestion avoidance growth is handled per RTT in
        # _per_rtt_adjust; per-ACK growth stays flat.

    def on_loss(self, now_s: float) -> None:
        super().on_loss(now_s)
        self._in_vegas_slow_start = False


class BbrController(CongestionController):
    """Simplified BBR v1 (see :mod:`repro.transport.bbr`): rate-paced
    sending at ``gain x BtlBw`` with a ``2 x BDP`` in-flight cap."""

    name = "bbr"
    paced = True
    MIN_CWND = 4.0
    _deque_fields = ("_bw_filter", "_rtt_filter")

    def __init__(self) -> None:
        super().__init__()
        self._mode = "startup"
        self._pacing_rate_bps = 0.0  # bootstrap set at attach
        self._bw_filter: Deque[Tuple[float, float]] = deque()
        self._rtt_filter: Deque[Tuple[float, float]] = deque()
        self._cycle_index = 0
        self._cycle_started_s = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._delivered_at_round_start = 0
        self._round_start_s = 0.0
        self._cwnd_before_rto = 0.0

    def _on_attach(self) -> None:
        self._pacing_rate_bps = 10.0 * self.flow.packet_bytes * 8.0

    # ------------------------------------------------------------------
    # Filters and model
    # ------------------------------------------------------------------

    @property
    def btl_bw_bps(self) -> float:
        """Current bottleneck-bandwidth estimate (windowed max)."""
        if not self._bw_filter:
            return self._pacing_rate_bps
        return max(bw for _, bw in self._bw_filter)

    @property
    def rt_prop_s(self) -> float:
        """Current round-trip propagation estimate (windowed min)."""
        if not self._rtt_filter:
            return self.flow.srtt if self.flow.srtt is not None else 0.1
        return min(rtt for _, rtt in self._rtt_filter)

    def _bdp_packets(self) -> float:
        return max(1.0, self.btl_bw_bps * self.rt_prop_s
                   / (self.flow.packet_bytes * 8.0))

    def on_rtt_sample(self, rtt_s: float, now_s: float) -> None:
        flow = self.flow
        self._rtt_filter.append((now_s, rtt_s))
        while self._rtt_filter and \
                self._rtt_filter[0][0] < now_s - MIN_RTT_WINDOW_S:
            self._rtt_filter.popleft()
        # One delivery-rate sample per round trip.
        round_duration = now_s - self._round_start_s
        if round_duration >= (flow.srtt or rtt_s):
            delivered_packets = flow.snd_una - self._delivered_at_round_start
            if delivered_packets > 0 and round_duration > 0:
                bw = (delivered_packets * flow.packet_bytes * 8.0
                      / round_duration)
                self._bw_filter.append((now_s, bw))
                window = BW_WINDOW_ROUNDS * max(flow.srtt or rtt_s, 1e-3)
                while self._bw_filter and \
                        self._bw_filter[0][0] < now_s - window:
                    self._bw_filter.popleft()
                self._advance_state_machine(bw, now_s)
            self._delivered_at_round_start = flow.snd_una
            self._round_start_s = now_s
        self._update_model()

    def _advance_state_machine(self, latest_bw_bps: float,
                               now_s: float) -> None:
        if self._mode == "startup":
            if latest_bw_bps > self._full_bw * 1.25:
                self._full_bw = latest_bw_bps
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._set_mode("drain", now_s)
        elif self._mode == "drain":
            if self.flow.flight_size <= self._bdp_packets():
                self._set_mode("probe_bw", now_s)
                self._cycle_index = 0
                self._cycle_started_s = now_s
        elif self._mode == "probe_bw":
            if now_s - self._cycle_started_s >= self.rt_prop_s:
                self._cycle_index = (self._cycle_index + 1) \
                    % len(PROBE_BW_GAINS)
                self._cycle_started_s = now_s

    def _set_mode(self, mode: str, now_s: float) -> None:
        """Transition the BBR state machine, tracing the change."""
        self._mode = mode
        tracer = self.flow._tracer
        if tracer.enabled:
            tracer.emit(now_s, FLOW_STATE, flow=self.flow.flow_id,
                        value=self.btl_bw_bps, reason=f"bbr_{mode}")

    def _pacing_gain(self) -> float:
        if self._mode == "startup":
            return STARTUP_GAIN
        if self._mode == "drain":
            return DRAIN_GAIN
        return PROBE_BW_GAINS[self._cycle_index]

    def _update_model(self) -> None:
        flow = self.flow
        self._pacing_rate_bps = max(
            self._pacing_gain() * self.btl_bw_bps,
            2.0 * flow.packet_bytes * 8.0 / max(self.rt_prop_s, 1e-3))
        # In-flight cap: 2 x BDP (cwnd_gain = 2).
        flow.cwnd = max(self.MIN_CWND, 2.0 * self._bdp_packets())
        flow.ssthresh = flow.cwnd  # keep the flow's bookkeeping harmless

    # ------------------------------------------------------------------
    # Rate-based loss response (BBR ignores loss for its rate model)
    # ------------------------------------------------------------------

    def on_loss(self, now_s: float) -> None:
        pass  # keep the retransmission machinery, skip the decrease

    def on_timeout(self, now_s: float) -> None:
        flow = self.flow
        self._cwnd_before_rto = flow.cwnd
        flow.ssthresh = max(flow.flight_size / 2.0, 2.0)
        flow.cwnd = 1.0

    def post_timeout(self, now_s: float) -> None:
        # Restore a rate-model-friendly window after the flow logged the
        # RFC-style post-RTO cwnd (matches the seed class, which patched
        # cwnd after the base _on_rto had run in full).
        flow = self.flow
        if flow.cwnd < self._cwnd_before_rto:
            flow.cwnd = max(self.MIN_CWND, self._cwnd_before_rto / 2.0)

    def post_ack(self, now_s: float) -> None:
        # Undo any cwnd mutation the flow's recovery/exit logic applied.
        self._update_model()

    @property
    def pacing_rate_bps(self) -> float:
        return self._pacing_rate_bps


register_controller("newreno", NewRenoController)
register_controller("vegas", VegasController)
register_controller("bbr", BbrController)
