"""The parallel snapshot-sweep engine.

The paper's figure pipeline (§3.1/§5.3, Figs. 3, 6-9) is a walk over
forwarding-state snapshots: at every instant, recompute the topology,
run the batched per-destination Dijkstra, and record each tracked pair's
path and distance.  Snapshots are independent of one another, so the walk
shards cleanly: this engine splits the schedule into contiguous chunks,
evaluates each chunk in a worker process (rebuilding the network there
from a picklable :class:`~repro.sweep.spec.NetworkSpec` — live graphs and
engines never cross the process boundary), and merges the per-pair arrays
back in time order.

Determinism contract: ``workers=N`` is bit-identical to ``workers=1``.
Every chunk runs the exact same inner loop
(:func:`repro.topology.dynamic_state.compute_pair_chunk`) on a network
rebuilt from the exact same spec, and the merge is a pure concatenation
in chunk order — no reductions whose result depends on worker scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import spans
from ..topology.dynamic_state import PairTimeline, compute_pair_chunk
from ..topology.network import LeoNetwork
from .shm import HAVE_SHARED_MEMORY, SharedArrayPack, attach_arrays
from .spec import NetworkSpec

__all__ = ["sweep_timelines", "shard_snapshots", "resolve_workers",
           "record_sweep_metrics", "ChunkRecord"]

PairKey = Tuple[int, int]

#: One chunk's execution record, in schedule order:
#: ``(chunk_index, build_wall_s, total_wall_s, num_snapshots, worker_pid,
#: snapshot_start, snapshot_stop)`` — the pid is the OS pid of whichever
#: process executed the chunk, the bounds are its half-open snapshot
#: index range within the full schedule.
ChunkRecord = Tuple[int, float, float, int, int, int, int]


def record_sweep_metrics(metrics, times_s: np.ndarray,
                         chunk_walls: Sequence[ChunkRecord],
                         effective_workers: int, wall_s: float) -> None:
    """Publish a sweep's timing breakdown to a metrics registry.

    ``chunk_walls`` holds one :data:`ChunkRecord` per chunk, in schedule
    order.  Each chunk publishes its timings plus its executing worker's
    OS pid and snapshot-index bounds, so merged span profiles can be
    attributed unambiguously to the worker/chunk that produced them.
    """
    metrics.gauge("sweep.workers").set(float(effective_workers))
    metrics.gauge("sweep.wall_s").set(wall_s)
    metrics.counter("sweep.snapshots").inc(float(len(times_s)))
    for (index, build_wall_s, total_wall_s, count,
         worker_pid, start, stop) in chunk_walls:
        at = float(times_s[start]) if start < len(times_s) else 0.0
        prefix = f"sweep.worker.{index}."
        metrics.series(prefix + "wall_s").append(at, total_wall_s)
        metrics.series(prefix + "build_s").append(at, build_wall_s)
        metrics.series(prefix + "snapshots").append(at, float(count))
        metrics.series(prefix + "pid").append(at, float(worker_pid))
        metrics.series(prefix + "chunk_start").append(at, float(start))
        metrics.series(prefix + "chunk_stop").append(at, float(stop))


def shard_snapshots(num_snapshots: int,
                    num_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``(start, stop)`` index ranges over ``[0, T)``.

    The first ``T % num_chunks`` chunks get one extra snapshot; the
    ranges cover the schedule exactly once, in order.  Never returns more
    chunks than snapshots.
    """
    if num_snapshots < 0:
        raise ValueError(f"snapshot count must be >= 0, got {num_snapshots}")
    if num_chunks < 1:
        raise ValueError(f"chunk count must be >= 1, got {num_chunks}")
    num_chunks = min(num_chunks, num_snapshots) or 1
    base, extra = divmod(num_snapshots, num_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(num_chunks):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument: None/1 -> serial, 0 -> all cores."""
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _mp_context():
    """Prefer ``fork`` (cheap, inherits the interpreter) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _run_chunk(payload: Tuple[int, NetworkSpec, List[PairKey], object,
                              bool, str, Optional[dict]]
               ) -> Tuple[int, Dict[PairKey, tuple], float, float, int,
                          Optional[dict]]:
    """One worker's unit of work: rebuild the network, sweep one chunk.

    Module-level so multiprocessing pickles it by reference.  Returns
    ``(chunk_index, chunk_result, build_wall_s, total_wall_s, os_pid,
    span_profile)`` — the profile is the worker's serialized span tree
    (:meth:`SpanProfiler.as_dict`) when the parent asked for profiling,
    else None.

    ``times_part`` is either the chunk's snapshot-time array (pickled
    fallback) or its ``(start, stop)`` bounds into the shared full
    schedule when ``shared`` carries :mod:`repro.sweep.shm` descriptors
    (``times_s`` plus the static ``isl_pairs``, attached read-only for
    the duration of the chunk).
    """
    chunk_index, spec, pairs, times_part, profile, routing, shared = payload
    profiler = None
    if profile:
        # A fresh local profiler: the fork child inherits the parent's
        # installed profiler, whose spans would be lost with the child —
        # replace it so this chunk's spans travel back in the return.
        profiler = spans.SpanProfiler(label=f"sweep worker {chunk_index}")
        spans.install(profiler)
    attached = None
    try:
        if shared is not None:
            attached = attach_arrays(shared)
            start, stop = times_part
            times_s = attached.arrays["times_s"][start:stop]
            isl_pairs = attached.arrays.get("isl_pairs")
        else:
            times_s = times_part
            isl_pairs = None
        started = time.perf_counter()
        chunk_span = (profiler.begin("sweep.chunk")
                      if profiler is not None else -1)
        build_span = (profiler.begin("sweep.build")
                      if profiler is not None else -1)
        network = spec.build(isl_pairs=isl_pairs)
        if build_span != -1:
            profiler.end(build_span)
        build_wall_s = time.perf_counter() - started
        compute_span = (profiler.begin("sweep.compute")
                        if profiler is not None else -1)
        result = compute_pair_chunk(network, pairs, times_s,
                                    routing=routing)
        if compute_span != -1:
            profiler.end(compute_span)
        if chunk_span != -1:
            profiler.end(chunk_span)
    finally:
        if attached is not None:
            attached.close()
        if profile:
            spans.uninstall()
    profile_dict = profiler.as_dict() if profiler is not None else None
    return (chunk_index, result, build_wall_s,
            time.perf_counter() - started, os.getpid(), profile_dict)


def sweep_timelines(spec: NetworkSpec,
                    pairs: Sequence[PairKey],
                    times_s: np.ndarray,
                    workers: Optional[int] = None,
                    metrics=None,
                    mp_context=None,
                    routing: str = "incremental",
                    network: Optional[LeoNetwork] = None,
                    use_shared_memory: bool = True
                    ) -> Dict[PairKey, PairTimeline]:
    """Evaluate a snapshot sweep, optionally across worker processes.

    Args:
        spec: Picklable recipe for the network (see :class:`NetworkSpec`).
        pairs: (src_gid, dst_gid) pairs to track.
        times_s: Snapshot instants, ascending (the full schedule).
        workers: Worker process count; ``None``/1 runs in-process, 0 uses
            every core.  Short schedules get at most one chunk per
            snapshot.
        metrics: Optional :class:`repro.obs.MetricsRegistry` receiving
            per-worker timing series (``sweep.worker.<k>.wall_s`` /
            ``.build_s`` / ``.snapshots`` / ``.pid`` / ``.chunk_start``
            / ``.chunk_stop``, keyed by each chunk's first snapshot
            time) plus ``sweep.workers`` / ``sweep.wall_s`` gauges and
            a ``sweep.snapshots`` counter.
        mp_context: Multiprocessing context override (tests).
        routing: Routing mode for every chunk, ``"incremental"``
            (default: repair destination trees between a chunk's
            consecutive snapshots) or ``"scratch"`` — bit-identical
            results either way (see
            :func:`repro.topology.dynamic_state.make_routing_engine`).
        network: Optional already-built network matching ``spec``.  The
            serial path walks it directly instead of rebuilding, and the
            parallel path reads its static ISL interconnect for the
            shared-memory segment; workers always rebuild from ``spec``.
        use_shared_memory: Publish the full schedule and the static ISL
            pair array through :mod:`repro.sweep.shm` instead of
            pickling them into every chunk payload.  Falls back to
            pickling when shared memory is unavailable.

    Returns:
        pair -> :class:`PairTimeline` over the full schedule, bit-identical
        to a serial walk regardless of ``workers``.
    """
    times_s = np.asarray(times_s, dtype=np.float64)
    pair_keys: List[PairKey] = [(int(src), int(dst)) for src, dst in pairs]
    if not pair_keys:
        raise ValueError("need at least one pair to track")
    workers = resolve_workers(workers)
    sweep_started = time.perf_counter()
    profiler = spans.ACTIVE
    profiling = profiler.enabled

    if workers <= 1 or len(times_s) <= 1:
        chunk_span = (profiler.begin("sweep.chunk") if profiling else -1)
        started = time.perf_counter()
        build_span = (profiler.begin("sweep.build") if profiling else -1)
        if network is None:
            network = spec.build()
        if build_span != -1:
            profiler.end(build_span)
        build_wall_s = time.perf_counter() - started
        compute_span = (profiler.begin("sweep.compute")
                        if profiling else -1)
        merged = compute_pair_chunk(network, pair_keys, times_s,
                                    routing=routing)
        if compute_span != -1:
            profiler.end(compute_span)
        if chunk_span != -1:
            profiler.end(chunk_span)
        chunk_walls: List[ChunkRecord] = [
            (0, build_wall_s, time.perf_counter() - started,
             len(times_s), os.getpid(), 0, len(times_s))]
        effective_workers = 1
    else:
        shards = shard_snapshots(len(times_s), workers)
        shared_pack = None
        if use_shared_memory and HAVE_SHARED_MEMORY:
            try:
                isl_pairs = (network.isl_pairs if network is not None
                             else spec.static_isl_pairs())
                shared_pack = SharedArrayPack.create(
                    {"times_s": times_s, "isl_pairs": isl_pairs})
            except Exception:
                shared_pack = None  # fall back to pickled payloads
        if shared_pack is not None:
            payloads = [(index, spec, pair_keys, (start, stop),
                         profiling, routing, shared_pack.descriptors)
                        for index, (start, stop) in enumerate(shards)]
        else:
            payloads = [(index, spec, pair_keys, times_s[start:stop],
                         profiling, routing, None)
                        for index, (start, stop) in enumerate(shards)]
        context = mp_context if mp_context is not None else _mp_context()
        scatter_span = (profiler.begin("sweep.scatter_gather")
                        if profiling else -1)
        try:
            with ProcessPoolExecutor(max_workers=len(payloads),
                                     mp_context=context) as pool:
                outcomes = sorted(pool.map(_run_chunk, payloads),
                                  key=lambda item: item[0])
        finally:
            if shared_pack is not None:
                shared_pack.unlink()
        if scatter_span != -1:
            profiler.end(scatter_span)
        # Deterministic time-order merge: concatenate chunk arrays in
        # shard order, which is schedule order by construction.  The
        # same order governs span-profile adoption, so merged traces
        # are identical run-to-run regardless of worker scheduling.
        merge_span = (profiler.begin("sweep.merge") if profiling else -1)
        merged = {}
        for pair in pair_keys:
            distances = np.concatenate(
                [outcome[1][pair][0] for outcome in outcomes])
            paths: List[Optional[Tuple[int, ...]]] = []
            for outcome in outcomes:
                paths.extend(outcome[1][pair][1])
            merged[pair] = (distances, paths)
        if profiling and isinstance(profiler, spans.SpanProfiler):
            for (index, _, _, _, _, profile), (start, stop) in zip(
                    outcomes, shards):
                if profile is not None:
                    profiler.adopt(profile, chunk_index=index,
                                   snapshot_start=start,
                                   snapshot_stop=stop)
        if merge_span != -1:
            profiler.end(merge_span)
        chunk_walls = [
            (index, build_wall_s, total_wall_s, stop - start,
             worker_pid, start, stop)
            for (index, _, build_wall_s, total_wall_s, worker_pid, _),
                (start, stop) in zip(outcomes, shards)
        ]
        effective_workers = len(payloads)

    if metrics is not None:
        record_sweep_metrics(metrics, times_s, chunk_walls,
                             effective_workers,
                             time.perf_counter() - sweep_started)

    return {
        pair: PairTimeline(src_gid=pair[0], dst_gid=pair[1],
                           times_s=times_s, distances_m=distances,
                           paths=paths)
        for pair, (distances, paths) in merged.items()
    }
