"""Parallel snapshot-sweep engine (paper §3.1/§5.3 figure pipeline).

Shards a snapshot schedule into contiguous chunks, evaluates each chunk
in a worker process that rebuilds the network from a picklable
:class:`NetworkSpec`, and merges per-pair timelines back in deterministic
time order — ``workers=N`` is bit-identical to serial.

Entry points: :meth:`repro.topology.dynamic_state.DynamicState.compute`
(``workers=``), :meth:`repro.Hypatia.compute_timelines` (``workers=``),
and the ``repro sweep`` / ``repro rtt --workers`` CLI.
"""

from .engine import (record_sweep_metrics, resolve_workers,
                     shard_snapshots, sweep_timelines)
from .shm import (HAVE_SHARED_MEMORY, AttachedArrays, SharedArrayPack,
                  attach_arrays)
from .spec import (ISL_BUILDERS, NetworkSpec, isl_builder_name,
                   register_isl_builder)

__all__ = [
    "NetworkSpec",
    "ISL_BUILDERS",
    "register_isl_builder",
    "isl_builder_name",
    "sweep_timelines",
    "shard_snapshots",
    "resolve_workers",
    "record_sweep_metrics",
    "HAVE_SHARED_MEMORY",
    "SharedArrayPack",
    "AttachedArrays",
    "attach_arrays",
]
