"""Shared-memory transport for immutable sweep-worker arrays.

The sweep engine ships each worker a picklable payload.  The network
recipe itself (:class:`~repro.sweep.spec.NetworkSpec`) is tiny, but two
arrays used to ride along by value in every chunk payload: the full
snapshot schedule and the static ISL interconnect.  Both are immutable
for the lifetime of a sweep, so this module places them in
:mod:`multiprocessing.shared_memory` segments once and hands workers a
small descriptor to attach read-only views — no per-chunk re-pickling,
and one physical copy of the transit arrays regardless of worker count.

Lifetime protocol (see DESIGN.md, "Incremental routing"):

1. The parent calls :meth:`SharedArrayPack.create` before the pool
   starts; the pack owns the segments.
2. Each worker calls :func:`attach_arrays` inside its chunk, reads
   through the returned views, and closes the attachment before
   returning (worker results never alias shared memory).
3. The parent calls :meth:`SharedArrayPack.unlink` after the pool has
   drained, destroying the segments.

Platforms without ``multiprocessing.shared_memory`` (or without a
usable ``/dev/shm``) degrade gracefully: the engine falls back to
pickling the arrays into the payloads, bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

try:
    from multiprocessing import shared_memory as _shared_memory
    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - exotic minimal builds
    _shared_memory = None
    HAVE_SHARED_MEMORY = False

__all__ = ["HAVE_SHARED_MEMORY", "SharedArrayDescriptor",
           "SharedArrayPack", "AttachedArrays", "attach_arrays"]


@dataclass(frozen=True)
class SharedArrayDescriptor:
    """Picklable handle to one shared ndarray.

    Attributes:
        shm_name: OS-level segment name; ``None`` for zero-size arrays,
            which are reconstructed locally (POSIX shared memory cannot
            be zero bytes).
        dtype: Numpy dtype string.
        shape: Array shape.
    """

    shm_name: Optional[str]
    dtype: str
    shape: Tuple[int, ...]


def _attach_segment(name: str):
    """Attach to an existing segment without resource-tracker tracking.

    Before 3.13 (``track=False``), attaching registers the segment with
    :mod:`multiprocessing`'s resource tracker exactly like creating
    does.  Under ``fork`` that double-registers it with the parent's
    tracker; under ``spawn`` the worker's own tracker "cleans up" (i.e.
    destroys) the parent-owned segment when the worker exits.  Only the
    creating parent should track, so suppress registration during the
    attach.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedArrayPack:
    """Parent-side owner of a set of named shared-memory arrays."""

    def __init__(self) -> None:
        self._segments = []
        #: name -> :class:`SharedArrayDescriptor`, the picklable payload
        #: workers pass to :func:`attach_arrays`.
        self.descriptors: Dict[str, SharedArrayDescriptor] = {}

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayPack":
        """Copy ``arrays`` into fresh shared segments.

        Raises whatever the platform raises when shared memory is not
        usable (callers fall back to pickling); the partially-created
        pack is unlinked first so nothing leaks.
        """
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        pack = cls()
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                if array.nbytes == 0:
                    pack.descriptors[name] = SharedArrayDescriptor(
                        shm_name=None, dtype=str(array.dtype),
                        shape=tuple(array.shape))
                    continue
                segment = _shared_memory.SharedMemory(
                    create=True, size=array.nbytes)
                pack._segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=segment.buf)
                view[...] = array
                pack.descriptors[name] = SharedArrayDescriptor(
                    shm_name=segment.name, dtype=str(array.dtype),
                    shape=tuple(array.shape))
        except Exception:
            pack.unlink()
            raise
        return pack

    def unlink(self) -> None:
        """Close and destroy every segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self._segments = []


class AttachedArrays:
    """Worker-side read-only attachment to a :class:`SharedArrayPack`.

    Use as a context manager; the views in :attr:`arrays` are invalid
    after :meth:`close`, so copy anything that must outlive the chunk.
    """

    def __init__(self, descriptors: Mapping[str, SharedArrayDescriptor]
                 ) -> None:
        self._segments = []
        self.arrays: Dict[str, np.ndarray] = {}
        try:
            for name, desc in descriptors.items():
                if desc.shm_name is None:
                    self.arrays[name] = np.empty(
                        desc.shape, dtype=np.dtype(desc.dtype))
                    continue
                segment = _attach_segment(desc.shm_name)
                self._segments.append(segment)
                view = np.ndarray(desc.shape, dtype=np.dtype(desc.dtype),
                                  buffer=segment.buf)
                view.flags.writeable = False
                self.arrays[name] = view
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        """Release the attachment (idempotent); views become invalid."""
        self.arrays = {}
        for segment in self._segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self._segments = []

    def __enter__(self) -> "AttachedArrays":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_arrays(descriptors: Mapping[str, SharedArrayDescriptor]
                  ) -> AttachedArrays:
    """Attach to the arrays a :class:`SharedArrayPack` published."""
    return AttachedArrays(descriptors)
