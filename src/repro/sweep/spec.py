"""Picklable network specifications for sweep worker processes.

A sweep worker must rebuild the :class:`~repro.topology.network.LeoNetwork`
inside its own process — live graphs, routing engines, and snapshot caches
are never pickled across the process boundary.  A :class:`NetworkSpec` is
the small, picklable recipe that makes the rebuild deterministic: shell
definitions (plain frozen dataclasses), the ground-station list, the GSL
policy and elevation threshold, and the ISL interconnect *by name* through
a builder registry.

Because :class:`~repro.constellations.builder.Constellation` derives every
satellite's elements purely from its shells and
:meth:`NetworkSpec.build` passes the exact same constructor arguments, a
rebuilt network produces bit-identical snapshots — the property the sweep
engine's serial-equals-parallel contract rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..faults.schedule import FaultSchedule
from ..ground.stations import GroundStation
from ..traffic.arrivals import WorkloadSchedule
from ..ground.weather import WeatherModel
from ..orbits.shell import Shell
from ..topology.gsl import GslPolicy
from ..topology.isl import no_isls, plus_grid_isls, single_ring_isls
from ..topology.network import LeoNetwork

__all__ = ["NetworkSpec", "ISL_BUILDERS", "register_isl_builder",
           "isl_builder_name"]

#: Named ISL interconnect builders a spec may reference.  Keys are what
#: travels across the process boundary; values never leave this process.
ISL_BUILDERS: Dict[str, Callable[[Constellation], np.ndarray]] = {
    "plus_grid": plus_grid_isls,
    "single_ring": single_ring_isls,
    "none": no_isls,
}


def register_isl_builder(name: str,
                         builder: Callable[[Constellation], np.ndarray],
                         ) -> None:
    """Register a custom ISL builder under a spec-referenceable name.

    Workers resolve the name through this registry, so the registration
    must happen at import time of a module the workers also import
    (module level, not inside a test function) when using the ``spawn``
    start method; under ``fork`` (the Linux default) the inherited
    registry suffices.
    """
    existing = ISL_BUILDERS.get(name)
    if existing is not None and existing is not builder:
        raise ValueError(f"ISL builder name {name!r} is already taken")
    ISL_BUILDERS[name] = builder


def isl_builder_name(builder: Callable[[Constellation], np.ndarray]) -> str:
    """The registered name of an ISL builder callable.

    Raises:
        ValueError: If the callable was never registered — pass it to
            :func:`register_isl_builder` first, or run the sweep serially.
    """
    for name, registered in ISL_BUILDERS.items():
        if registered is builder:
            return name
    raise ValueError(
        f"ISL builder {builder!r} is not registered; call "
        f"repro.sweep.register_isl_builder() to make the network "
        f"spec-expressible, or run with workers=1")


@dataclass(frozen=True)
class NetworkSpec:
    """Everything needed to rebuild a ``LeoNetwork`` in another process.

    Attributes:
        shells: The constellation's shell definitions, in id order.
        constellation_name: Constellation label (kept for exports).
        epoch_offset_s: Constellation epoch offset at simulation time 0.
        ground_stations: The ground segment, gid order.
        min_elevation_deg: Minimum GS elevation angle.
        isl_builder: Registered name of the ISL interconnect builder.
        gsl_policy: GS satellite-selection policy.
        failed_satellites: Satellites carrying no links.
        weather: Optional rain-attenuation schedule (plain data, so it
            pickles).
        faults: Optional fault schedule (plain data too) — carrying it
            here is what keeps faulted parallel sweeps bit-identical to
            serial ones.
        workload: Optional workload schedule (plain data as well).  The
            network build ignores it; it rides along so workload-driven
            sweeps track exactly the same pair set in every worker.
    """

    shells: Tuple[Shell, ...]
    constellation_name: str
    epoch_offset_s: float
    ground_stations: Tuple[GroundStation, ...]
    min_elevation_deg: float
    isl_builder: str = "plus_grid"
    gsl_policy: GslPolicy = GslPolicy.ALL_VISIBLE
    failed_satellites: Tuple[int, ...] = ()
    weather: Optional[WeatherModel] = field(default=None)
    faults: Optional[FaultSchedule] = field(default=None)
    workload: Optional[WorkloadSchedule] = field(default=None)

    def with_workload(self, workload: Optional[WorkloadSchedule]
                      ) -> "NetworkSpec":
        """A copy of this spec carrying ``workload``."""
        return replace(self, workload=workload)

    def __post_init__(self) -> None:
        if self.isl_builder not in ISL_BUILDERS:
            raise ValueError(
                f"unknown ISL builder {self.isl_builder!r}; "
                f"known: {sorted(ISL_BUILDERS)}")

    @classmethod
    def from_network(cls, network: LeoNetwork) -> "NetworkSpec":
        """The spec describing an existing network.

        Raises:
            ValueError: If the network's ISL builder is not registered
                (see :func:`register_isl_builder`).
        """
        return cls(
            shells=tuple(network.constellation.shells),
            constellation_name=network.constellation.name,
            epoch_offset_s=network.constellation.epoch_offset_s,
            ground_stations=tuple(network.ground_stations),
            min_elevation_deg=float(network.min_elevation_deg),
            isl_builder=isl_builder_name(network.isl_builder),
            gsl_policy=network.gsl_policy,
            failed_satellites=tuple(sorted(network.failed_satellites)),
            weather=network.weather,
            faults=network.faults,
        )

    def _constellation(self) -> Constellation:
        return Constellation(
            list(self.shells), name=self.constellation_name,
            epoch_offset_s=self.epoch_offset_s)

    def static_isl_pairs(self) -> np.ndarray:
        """The ISL interconnect this spec's network would carry.

        Computed without building the full network: the parent side of a
        shared-memory sweep publishes this array once so workers can
        skip re-running the ISL builder (see :mod:`repro.sweep.shm`).
        """
        return np.asarray(ISL_BUILDERS[self.isl_builder](
            self._constellation()))

    def build(self, isl_pairs: Optional[np.ndarray] = None) -> LeoNetwork:
        """Rebuild the network this spec describes (bit-identical).

        Args:
            isl_pairs: Optional precomputed ISL pair array (e.g. a
                shared-memory view of :meth:`static_isl_pairs`).  Must
                equal what the registered builder would produce — the
                network copies it, so the view may be released once the
                build returns.
        """
        if isl_pairs is None:
            builder = ISL_BUILDERS[self.isl_builder]
        else:
            precomputed = np.array(isl_pairs)  # copy: outlive the view

            def builder(constellation: Constellation) -> np.ndarray:
                return precomputed
        return LeoNetwork(
            self._constellation(), list(self.ground_stations),
            min_elevation_deg=self.min_elevation_deg,
            isl_builder=builder,
            gsl_policy=self.gsl_policy,
            weather=self.weather,
            failed_satellites=self.failed_satellites,
            faults=self.faults,
        )
