"""Bench-trajectory regression detection over ``results/BENCH_*.json``.

Every ``make bench-*`` gate appends one record per run to a trajectory
file (see ``benchmarks/_common.py``); this module is the reader side:
``repro bench-report`` loads each trajectory, picks its headline metric,
and flags the latest run if it is more than ``threshold`` (default 20%)
worse than the *rolling best* of all earlier runs.

Direction is inferred from the metric name: ``*_s`` / ``*_seconds`` are
wall times (lower is better); ``speedup`` / ``*throughput*`` / ``*_per_s``
are rates (higher is better).  Wall-time metrics are preferred over
rates when both exist, because rates divide two wall times and double
the noise (e.g. ``speedup`` in the fluid-scale trajectory swings with
the *reference* kernel's timing even when the vectorized kernel is
steady).
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TrajectoryReport", "choose_metric", "metric_direction",
    "compare_trajectory", "scan_results_dir", "format_reports",
]

#: Headline-metric preference, most-preferred first.  The first name
#: present (with numeric values) in a trajectory's records wins.
METRIC_PREFERENCE = (
    "vectorized_solve_s",
    "solve_s",
    "wall_time_s",
    "wall_s",
    "incremental_snapshot_s",
    "events_per_s",
    "snapshots_per_s",
    "speedup",
)

#: Default regression threshold: latest > best * (1 + 0.2) for
#: lower-is-better metrics (mirrored for higher-is-better).
DEFAULT_THRESHOLD = 0.2

_HIGHER_BETTER_HINTS = ("speedup", "throughput", "_per_s", "_per_wall_s",
                        "ops_s", "rate")


def metric_direction(name: str) -> str:
    """``"lower"`` or ``"higher"`` — which direction is better."""
    lowered = name.lower()
    for hint in _HIGHER_BETTER_HINTS:
        if hint in lowered:
            return "higher"
    return "lower"


def _numeric(record: Dict[str, Any], key: str) -> Optional[float]:
    value = record.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def choose_metric(records: Sequence[Dict[str, Any]],
                  metric: Optional[str] = None) -> Optional[str]:
    """Pick the headline metric for a trajectory.

    An explicit ``metric`` wins if any record carries it; otherwise the
    first :data:`METRIC_PREFERENCE` name present is used, then any
    ``*_s``-suffixed numeric field (sorted for determinism).
    """
    def present(name: str) -> bool:
        return any(_numeric(record, name) is not None
                   for record in records)

    if metric:
        return metric if present(metric) else None
    for name in METRIC_PREFERENCE:
        if present(name):
            return name
    candidates = sorted({key for record in records for key in record
                         if key.endswith("_s")
                         and _numeric(record, key) is not None})
    return candidates[0] if candidates else None


@dataclass
class TrajectoryReport:
    """Verdict for one ``BENCH_*.json`` trajectory."""

    path: str
    name: str
    metric: Optional[str] = None
    direction: str = "lower"
    num_records: int = 0
    latest: Optional[float] = None
    best: Optional[float] = None
    ratio: Optional[float] = None
    regressed: bool = False
    status: str = "no data"
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "name": self.name, "metric": self.metric,
            "direction": self.direction, "num_records": self.num_records,
            "latest": self.latest, "best": self.best, "ratio": self.ratio,
            "regressed": self.regressed, "status": self.status,
        }


def compare_trajectory(path: str, records: Sequence[Dict[str, Any]],
                       threshold: float = DEFAULT_THRESHOLD,
                       metric: Optional[str] = None) -> TrajectoryReport:
    """Compare the latest record against the rolling best of the rest."""
    name = os.path.basename(path)
    if name.startswith("BENCH_"):
        name = name[len("BENCH_"):]
    if name.endswith(".json"):
        name = name[:-len(".json")]
    report = TrajectoryReport(path=path, name=name,
                              num_records=len(records))
    if not records:
        report.status = "empty trajectory"
        return report
    chosen = choose_metric(records, metric=metric)
    if chosen is None:
        report.status = ("no numeric metric"
                         + (f" {metric!r}" if metric else ""))
        return report
    report.metric = chosen
    report.direction = metric_direction(chosen)
    report.latest = _numeric(records[-1], chosen)
    history = [value for record in records[:-1]
               for value in [_numeric(record, chosen)]
               if value is not None]
    if report.latest is None:
        report.status = f"latest record lacks {chosen!r}"
        return report
    if not history:
        report.status = "no baseline (single record)"
        return report
    if report.direction == "lower":
        report.best = min(history)
        if report.best > 0:
            report.ratio = report.latest / report.best
        report.regressed = report.latest > report.best * (1.0 + threshold)
    else:
        report.best = max(history)
        if report.best > 0:
            report.ratio = report.latest / report.best
        report.regressed = report.latest < report.best / (1.0 + threshold)
    report.status = "REGRESSED" if report.regressed else "ok"
    return report


def _load_records(path: str) -> Tuple[List[Dict[str, Any]], Optional[str]]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as exc:
        return [], f"unreadable: {exc}"
    if isinstance(payload, dict):
        payload = payload.get("records", [])
    if not isinstance(payload, list):
        return [], "not a record list"
    return [record for record in payload if isinstance(record, dict)], None


def scan_results_dir(results_dir: str,
                     threshold: float = DEFAULT_THRESHOLD,
                     metric: Optional[str] = None
                     ) -> List[TrajectoryReport]:
    """One :class:`TrajectoryReport` per ``BENCH_*.json``, sorted by name."""
    reports = []
    for path in sorted(glob.glob(os.path.join(results_dir,
                                              "BENCH_*.json"))):
        records, error = _load_records(path)
        if error is not None:
            report = TrajectoryReport(path=path,
                                      name=os.path.basename(path),
                                      status=error)
        else:
            report = compare_trajectory(path, records,
                                        threshold=threshold,
                                        metric=metric)
        reports.append(report)
    return reports


def format_reports(reports: Sequence[TrajectoryReport],
                   threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Human-readable table of trajectory verdicts."""
    lines = [f"bench trajectories ({len(reports)}), regression threshold "
             f"{threshold:.0%}:"]
    for report in reports:
        if report.metric is None or report.best is None:
            lines.append(f"  {report.name:<20s} {report.status}"
                         + (f" [{report.metric}]" if report.metric else ""))
            continue
        ratio = (f" ({report.ratio:.3f}x of best)"
                 if report.ratio is not None else "")
        lines.append(
            f"  {report.name:<20s} {report.status:<10s} "
            f"{report.metric} [{report.direction} is better] "
            f"latest={report.latest:.6g} best={report.best:.6g}{ratio} "
            f"over {report.num_records} runs")
    return lines
