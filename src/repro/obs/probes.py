"""Periodic sampling probes: turning counters into proper time series.

The packet simulator's devices keep cumulative counters (busy time, bytes
sent) and instantaneous state (queue depth).  A :class:`SimulatorProbe`
rides the simulation's own event queue, waking every ``interval_s`` of
*simulated* time and recording, per tracked device, into a
:class:`~repro.obs.metrics.MetricsRegistry`:

* ``link.<name>.queue_depth`` — packets waiting at the sample instant;
* ``link.<name>.utilization`` — busy-time fraction over the last interval;
* ``link.<name>.throughput_bps`` — wire bits sent over the last interval;

plus ``scheduler.events_per_s`` (simulated-event rate per simulated
second) and ``scheduler.queue_len`` (pending events).  Device names are
the simulator's own (``isl-<a>-<b>``, ``gsl-<node>``), which is what lets
:func:`repro.viz.utilization_map.utilization_map_from_registry` render a
Fig. 14/15-style map straight from the registry.

By default only devices that have shown activity (a sent packet or a
non-empty queue) are tracked — on a full constellation, recording every
idle device would dominate memory.  Once a device becomes active it is
sampled at every subsequent interval, so each series is regular from its
first sample on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # avoid a runtime repro.simulation dependency
    from ..simulation.simulator import PacketSimulator

__all__ = ["SimulatorProbe", "isl_utilization_from_registry"]


class SimulatorProbe:
    """Samples a :class:`PacketSimulator`'s devices into a registry.

    Args:
        sim: The simulator to observe.
        registry: Destination registry (one is created if omitted).
        interval_s: Sampling period in simulated seconds.
        links: Restrict sampling to these device names; ``None`` tracks
            every device (subject to ``active_only``).
        active_only: Track a device only once it has transmitted or
            queued at least one packet (default).  Set ``False`` to
            record every tracked device from the first sample —
            memory-heavy on constellation-scale networks.

    Call :meth:`start` before (or during) ``sim.run``; sampling stops
    with the simulation (probe events beyond ``until_s`` never fire).
    """

    def __init__(self, sim: "PacketSimulator",
                 registry: Optional[MetricsRegistry] = None,
                 interval_s: float = 1.0,
                 links: Optional[Iterable[str]] = None,
                 active_only: bool = True) -> None:
        if interval_s <= 0.0:
            raise ValueError(
                f"sample interval must be positive, got {interval_s}")
        self.sim = sim
        self.registry = registry if registry is not None else MetricsRegistry()
        self.interval_s = interval_s
        self.active_only = active_only
        wanted = frozenset(links) if links is not None else None
        #: (name, device) pairs eligible for tracking.
        self._devices = [
            (device.name, device)
            for device in sim.iter_devices()
            if wanted is None or device.name in wanted
        ]
        if wanted is not None:
            known = {name for name, _ in self._devices}
            missing = wanted - known
            if missing:
                raise ValueError(
                    f"unknown device names: {sorted(missing)[:5]}")
        # Cumulative-counter baselines per tracked device name.
        self._last: Dict[str, Tuple[float, int]] = {}
        self._tracked: Dict[str, bool] = {}
        self._last_events = 0
        self.samples_taken = 0
        self.sample_times_s: List[float] = []
        self._started = False

    def start(self) -> "SimulatorProbe":
        """Schedule periodic sampling on the simulator's event queue."""
        if self._started:
            raise RuntimeError("probe already started")
        self._started = True
        self._last_events = self.sim.scheduler.events_processed
        self.sim.scheduler.schedule(self.interval_s, self._sample)
        return self

    # ------------------------------------------------------------------

    def _should_track(self, name: str, device) -> bool:
        if self._tracked.get(name):
            return True
        if not self.active_only:
            self._tracked[name] = True
            return True
        stats = device.stats
        active = (stats.packets_sent > 0 or stats.packets_dropped > 0
                  or stats.packets_dropped_fault > 0
                  or device.queue_length > 0 or device.is_busy)
        if active:
            self._tracked[name] = True
        return active

    def _sample(self) -> None:
        registry = self.registry
        now = self.sim.scheduler.now
        interval = self.interval_s
        self.samples_taken += 1
        self.sample_times_s.append(now)
        for name, device in self._devices:
            if not self._should_track(name, device):
                continue
            stats = device.stats
            # Pro-rated busy time: an in-flight serialization contributes
            # only its elapsed fraction, so interval utilization never
            # exceeds 1 from a packet spanning the sample boundary.
            busy, sent = device.busy_time_s(now), stats.bytes_sent
            last_busy, last_sent = self._last.get(name, (0.0, 0))
            self._last[name] = (busy, sent)
            prefix = f"link.{name}."
            registry.series(prefix + "queue_depth").append(
                now, float(device.queue_length))
            registry.series(prefix + "utilization").append(
                now, (busy - last_busy) / interval)
            registry.series(prefix + "throughput_bps").append(
                now, (sent - last_sent) * 8.0 / interval)
        faults = getattr(self.sim.network, "fault_view", None)
        if faults is not None:
            # The faults.* family: how many schedule events are active
            # and the cumulative injected-drop count, sampled alongside
            # the link series so degradation windows line up.
            registry.series("faults.active_events").append(
                now, float(len(faults.active_at(now))))
            registry.series("faults.packets_dropped").append(
                now, float(self.sim.stats.packets_dropped_fault))
        scheduler = self.sim.scheduler
        events = scheduler.events_processed
        registry.series("scheduler.events_per_s").append(
            now, (events - self._last_events) / interval)
        registry.series("scheduler.queue_len").append(
            now, float(len(scheduler)))
        self._last_events = events
        scheduler.schedule(interval, self._sample)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def isl_utilization(self, time_s: Optional[float] = None
                        ) -> Dict[Tuple[int, int], float]:
        """Directed ISL load fractions at (or just before) ``time_s``.

        Defaults to the latest sample.  The return value plugs straight
        into :func:`repro.viz.utilization_map.utilization_map`.
        """
        return isl_utilization_from_registry(self.registry, time_s)


def isl_utilization_from_registry(registry: MetricsRegistry,
                                  time_s: Optional[float] = None
                                  ) -> Dict[Tuple[int, int], float]:
    """Directed ISL load fractions from sampled ``link.isl-*`` series.

    Reads the ``link.isl-<a>-<b>.utilization`` series a
    :class:`SimulatorProbe` records and returns the value at (or just
    before) ``time_s`` per directed ISL — the latest sample when None.
    """
    result: Dict[Tuple[int, int], float] = {}
    for name in registry.series_names(prefix="link.isl-",
                                      suffix=".utilization"):
        series = registry.series_logs[name]
        value = _value_at(series, time_s)
        if value is None:
            continue
        # link.isl-<a>-<b>.utilization
        _, a, b = name[len("link."):-len(".utilization")].split("-")
        result[(int(a), int(b))] = value
    return result


def _value_at(series, time_s: Optional[float]) -> Optional[float]:
    """Latest sample at or before ``time_s`` (last sample when None)."""
    if len(series) == 0:
        return None
    if time_s is None:
        return series.values[-1]
    import bisect
    index = bisect.bisect_right(series.times_s, time_s) - 1
    if index < 0:
        return None
    return series.values[index]
