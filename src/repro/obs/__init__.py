"""repro.obs: the cross-cutting observability layer.

Three parts (see DESIGN.md "Observability"):

* :mod:`repro.obs.trace` — typed trace events behind a near-zero-cost
  hook (``NullTracer`` by default; ``RingBufferTracer`` with per-flow /
  per-link filters, bounded memory, and JSONL export when enabled);
* :mod:`repro.obs.metrics` — counters, gauges, histograms, time-series
  logs, and the :class:`MetricsRegistry` they live in;
  :mod:`repro.obs.probes` adds the periodic sampling probes that turn
  device counters into per-link queue-depth / utilization / throughput
  series;
* :mod:`repro.obs.report` — the :class:`RunReport` object unifying
  packet-simulator and fluid-engine run summaries (``repro report`` on
  the command line);
* :mod:`repro.obs.spans` — the hierarchical span profiler measuring
  where the *simulator's* wall-clock goes (``NullSpanProfiler`` by
  default; Chrome trace-event / Perfetto export, cross-process sweep
  merge, and the report's ``phases`` section when enabled);
* :mod:`repro.obs.bench` — regression detection over the
  ``results/BENCH_*.json`` trajectories (``repro bench-report``).

This package deliberately imports nothing from the simulation, transport,
routing, or fluid layers — they all import *it*.
"""

from .bench import (TrajectoryReport, compare_trajectory, format_reports,
                    scan_results_dir)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      TimeSeriesLog)
from .probes import SimulatorProbe, isl_utilization_from_registry
from .report import RunReport, fluid_run_report, packet_run_report
from .spans import (NULL_PROFILER, NullSpanProfiler, SpanProfiler,
                    SpanProfilerBase, SpanRecord, format_phases, install,
                    profiled, uninstall)
from .trace import (NULL_TRACER, FLOW_CWND, FLOW_RTT, FLOW_STATE,
                    FWD_UPDATE, PKT_DELIVER, PKT_DROP, PKT_ENQUEUE,
                    PKT_TX_FINISH, PKT_TX_START, ROUTE_CHANGE,
                    ROUTING_COMPUTE, WARNING, NullTracer, RingBufferTracer,
                    TraceEvent, TraceFilter, Tracer)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "TimeSeriesLog",
    "SimulatorProbe", "isl_utilization_from_registry",
    "RunReport", "fluid_run_report", "packet_run_report",
    "SpanProfilerBase", "NullSpanProfiler", "SpanProfiler", "SpanRecord",
    "NULL_PROFILER", "install", "uninstall", "profiled", "format_phases",
    "TrajectoryReport", "compare_trajectory", "format_reports",
    "scan_results_dir",
    "Tracer", "NullTracer", "RingBufferTracer", "TraceEvent", "TraceFilter",
    "NULL_TRACER",
    "PKT_ENQUEUE", "PKT_TX_START", "PKT_TX_FINISH", "PKT_DELIVER",
    "PKT_DROP", "FWD_UPDATE", "ROUTE_CHANGE", "ROUTING_COMPUTE",
    "FLOW_CWND", "FLOW_RTT", "FLOW_STATE", "WARNING",
]
