"""Run reports: one object unifying packet and fluid run summaries.

A :class:`RunReport` wraps what a run produced — performance summary,
packet/flow accounting, optional metrics-registry contents, optional
trace summary — behind one JSON-exportable shape.  ``repro report`` (the
CLI) is a thin wrapper over these builders; benchmarks compare runs by
diffing the ``summary`` sections.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from .metrics import MetricsRegistry
from .trace import RingBufferTracer, Tracer

if TYPE_CHECKING:  # runtime-import-free: obs must not depend on the layers
    from ..fluid.engine import FluidResult
    from ..simulation.simulator import PacketSimulator

__all__ = ["RunReport", "packet_run_report", "fluid_run_report",
           "WALL_CLOCK_KEYS", "FCT_BUCKETS"]

#: Canonical flow-completion-time histogram bounds (seconds) — wider than
#: the generic latency buckets because FCTs span millisecond pings to
#: minute-long heavy-tail transfers.  Shared by the fluid report extras
#: and the packet-side workload spawner so their distributions compare
#: bucket-for-bucket.
FCT_BUCKETS = (0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0)

#: Report schema version (bump on breaking shape changes).
REPORT_VERSION = 1

#: Summary keys measuring *wall-clock* performance.  They legitimately
#: differ between two otherwise identical runs, so the determinism
#: regression tests compare reports with ``as_dict(deterministic=True)``,
#: which drops them.
WALL_CLOCK_KEYS = frozenset({
    "wall_time_s", "events_per_wall_s", "routing_compute_s",
    "snapshots_per_wall_s",
})


@dataclass
class RunReport:
    """The unified result object of one simulation run.

    Attributes:
        kind: ``"packet"``, ``"fluid.maxmin"``, or ``"fluid.aimd"``.
        duration_s: Simulated duration the report covers.
        summary: Flat performance/accounting numbers (always present).
        metrics: ``MetricsRegistry.as_dict()`` contents, if a registry
            was attached to the run.
        trace: Tracer summary (event counts), if tracing was enabled.
        phases: Span-profiler self-time summary
            (:meth:`repro.obs.spans.SpanProfiler.phase_summary`), if a
            profiler was active during the run.
        provenance: Self-describing run identity — engine/kernel names,
            seeds, workers, faults/workload schedule identity — so a
            report (or the profile exported next to it) can be matched
            back to the exact scenario that produced it.
    """

    kind: str
    duration_s: float
    summary: Dict[str, Any]
    metrics: Optional[Dict[str, Any]] = None
    trace: Optional[Dict[str, Any]] = None
    phases: Optional[Dict[str, Any]] = None
    provenance: Optional[Dict[str, Any]] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self, deterministic: bool = False) -> Dict[str, Any]:
        """The report as one JSON-ready dict.

        Args:
            deterministic: Drop the wall-clock summary keys
                (:data:`WALL_CLOCK_KEYS`) so two runs of the same seeded
                scenario serialize byte-identically — the form the
                determinism regression tests compare.
        """
        summary = self.summary
        if deterministic:
            summary = {key: value for key, value in summary.items()
                       if key not in WALL_CLOCK_KEYS}
        payload: Dict[str, Any] = {
            "report_version": REPORT_VERSION,
            "kind": self.kind,
            "duration_s": self.duration_s,
            "summary": summary,
        }
        if self.provenance is not None:
            payload["provenance"] = self.provenance
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.trace is not None:
            payload["trace"] = self.trace
        # Phase timings are wall-clock measurements, like
        # WALL_CLOCK_KEYS — drop them from the deterministic form.
        if self.phases is not None and not deterministic:
            payload["phases"] = self.phases
        payload.update(self.extras)
        return payload

    def to_json(self, path: str, indent: Optional[int] = 1) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.as_dict(), stream, indent=indent)
            stream.write("\n")

    def describe(self) -> str:
        """A short human-readable digest (CLI output)."""
        lines = [f"[{self.kind}] {self.duration_s:.1f}s simulated"]
        if self.provenance:
            identity = ", ".join(f"{key}={value}" for key, value
                                 in sorted(self.provenance.items())
                                 if not isinstance(value, dict))
            if identity:
                lines.append(f"  provenance: {identity}")
        for key, value in sorted(self.summary.items()):
            if isinstance(value, float):
                lines.append(f"  {key}: {value:.6g}")
            else:
                lines.append(f"  {key}: {value}")
        fct = self.extras.get("fct")
        if fct is not None:
            lines.append(
                f"  fct: {fct.get('flows_completed', 0)}/"
                f"{fct.get('flows_finite', 0)} flows completed, "
                f"{fct.get('delivered_bits', 0.0):.6g}/"
                f"{fct.get('offered_bits', 0.0):.6g} bits delivered")
        if self.trace is not None:
            lines.append(f"  trace: {self.trace.get('retained', 0)} events "
                         f"retained ({self.trace.get('emitted', 0)} emitted)")
        if self.metrics is not None:
            series = self.metrics.get("series", {})
            lines.append(f"  metrics: {len(series)} sampled series")
        if self.phases:
            from .spans import format_phases
            lines.extend("  " + line
                         for line in format_phases(self.phases, top=5))
        return "\n".join(lines)


def _active_phase_summary() -> Optional[Dict[str, Any]]:
    """Phase summary of the ambient span profiler, if one is installed."""
    from . import spans
    profiler = spans.ACTIVE
    if profiler.enabled and isinstance(profiler, spans.SpanProfiler):
        return profiler.phase_summary()
    return None


def packet_run_report(sim: "PacketSimulator", duration_s: float,
                      registry: Optional[MetricsRegistry] = None,
                      tracer: Optional[Tracer] = None,
                      include_series: bool = True,
                      provenance: Optional[Dict[str, Any]] = None
                      ) -> RunReport:
    """Build the report of a packet-simulator run.

    Args:
        sim: The simulator after :meth:`PacketSimulator.run`.
        duration_s: Simulated duration covered.
        registry: Metrics to embed (e.g. a probe's registry).
        tracer: Tracer whose summary to embed; defaults to the
            simulator's own when it is a summarizing tracer.
        provenance: Extra run-identity fields to fold into the report's
            provenance header.
    """
    stats = sim.stats
    summary: Dict[str, Any] = dict(stats.as_dict())
    summary.update(stats.perf_summary())
    tracer = tracer if tracer is not None else sim.tracer
    trace_summary = (tracer.summary()
                     if isinstance(tracer, RingBufferTracer) else None)
    metrics = (registry.as_dict(include_series=include_series)
               if registry is not None else None)
    identity: Dict[str, Any] = {"engine": "packet"}
    if provenance:
        identity.update(provenance)
    return RunReport(kind="packet", duration_s=duration_s, summary=summary,
                     metrics=metrics, trace=trace_summary,
                     phases=_active_phase_summary(), provenance=identity)


def fluid_run_report(result: "FluidResult",
                     registry: Optional[MetricsRegistry] = None,
                     include_series: bool = True,
                     provenance: Optional[Dict[str, Any]] = None
                     ) -> RunReport:
    """Build the report of a fluid-engine run (max-min or AIMD).

    Workload-driven runs (finite flows) additionally carry an ``fct``
    extras section: the completion-time distribution over
    :data:`FCT_BUCKETS` plus per-run offered/delivered totals.
    """
    summary = result.perf_summary()
    metrics = (registry.as_dict(include_series=include_series)
               if registry is not None else None)
    duration = result.duration_s if result.duration_s > 0.0 else (
        float(result.times_s[-1]) if len(result.times_s) else 0.0)
    extras: Dict[str, Any] = {}
    if result.flow_fct_s is not None:
        from .metrics import Histogram
        histogram = Histogram("traffic.fct_s", buckets=FCT_BUCKETS)
        for value in result.fct_values():
            histogram.observe(float(value))
        import numpy as np
        finite = (np.isfinite(result.flow_offered_bits)
                  if result.flow_offered_bits is not None else None)
        extras["fct"] = {
            "histogram": histogram.as_dict(),
            "flows_finite": int(finite.sum()) if finite is not None else 0,
            "flows_completed": int(histogram.count),
            "offered_bits": (float(result.flow_offered_bits[finite].sum())
                             if finite is not None else 0.0),
            "delivered_bits": (
                float(result.flow_delivered_bits[finite].sum())
                if result.flow_delivered_bits is not None
                and finite is not None else 0.0),
        }
    identity: Dict[str, Any] = {"engine": result.engine}
    if getattr(result, "kernel", ""):
        identity["kernel"] = result.kernel
    if provenance:
        identity.update(provenance)
    return RunReport(kind=f"fluid.{result.engine}",
                     duration_s=duration,
                     summary=summary, metrics=metrics, extras=extras,
                     phases=_active_phase_summary(), provenance=identity)
