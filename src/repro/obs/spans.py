"""Hierarchical span profiling: where the *simulator* spends its time.

:mod:`repro.obs.trace` records what the simulation did; this module
records where the wall-clock went while computing it.  A *span* is a
named, nested wall-time interval — "one batched Dijkstra", "one
waterfill solve", "one sweep chunk" — and a :class:`SpanProfiler` holds
one process's span tree as flat parallel arrays.

The hook discipline mirrors :class:`~repro.obs.trace.NullTracer`: the
ambient profiler (:data:`ACTIVE`, default :data:`NULL_PROFILER`) has an
``enabled`` class attribute, every instrumented site guards with one
attribute check, and the disabled path never allocates::

    profiler = spans.ACTIVE
    handle = profiler.begin("fluid.waterfill") if profiler.enabled else -1
    ...                     # the timed work
    if handle != -1:
        profiler.end(handle)

``make bench-obs`` enforces that disabled-span instrumentation costs
less than 2% of a 1e5-flow vectorized fluid solve.

Cross-process merging: sweep workers install their own profiler, run
their chunk, and serialize the resulting span tree (:meth:`SpanProfiler.
as_dict`, which carries the worker's OS pid) back to the parent, which
:meth:`~SpanProfiler.adopt`\\ s each child in chunk order.  Exports are
deterministic up to wall-times: Chrome trace-event JSON
(:meth:`~SpanProfiler.chrome_trace`, loadable in Perfetto / standalone
``chrome://tracing``) uses synthetic pids in chunk order, and the
self-time phase summary (:meth:`~SpanProfiler.phase_summary`) feeds the
``phases`` section of :class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import json
import math
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SpanRecord", "SpanProfilerBase", "NullSpanProfiler", "SpanProfiler",
    "NULL_PROFILER", "ACTIVE", "active", "install", "uninstall", "profiled",
    "format_phases",
]

#: Default span-capacity bound: like the trace ring buffer, a profiler
#: must never grow without limit; past capacity, ``begin`` counts the
#: span as dropped and returns the no-op handle.
DEFAULT_CAPACITY = 1 << 20

#: The synthetic pid of the parent (merging) process in trace exports.
#: Children get ``MAIN_PID + 1 + chunk_index`` — deterministic across
#: runs, unlike OS pids (which travel in ``as_dict()`` metadata only).
MAIN_PID = 1


@dataclass(frozen=True)
class SpanRecord:
    """One closed (or still-open) span.

    Attributes:
        name: Phase name (e.g. ``"routing.route_to_many"``).
        start_s: ``perf_counter`` time the span opened.
        end_s: ``perf_counter`` time it closed (``nan`` while open).
        parent: Index of the enclosing span in the same profiler's
            record list, ``-1`` for roots.
    """

    name: str
    start_s: float
    end_s: float
    parent: int

    @property
    def duration_s(self) -> float:
        """Wall duration; 0 for spans never closed."""
        if math.isnan(self.end_s):
            return 0.0
        return self.end_s - self.start_s


class SpanProfilerBase:
    """Profiler interface; ``enabled`` gates every instrumented site."""

    #: Hot paths read this before doing anything else.
    enabled: bool = False

    def begin(self, name: str) -> int:
        """Open a span; returns a handle for :meth:`end` (no-op: -1)."""
        return -1

    def end(self, handle: int) -> None:
        """Close the span opened as ``handle`` (no-op on -1)."""

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context-manager convenience over :meth:`begin`/:meth:`end`."""
        handle = self.begin(name)
        try:
            yield
        finally:
            self.end(handle)


class NullSpanProfiler(SpanProfilerBase):
    """The default, do-nothing profiler (``enabled`` is ``False``)."""

    __slots__ = ()


#: Shared default profiler instance; safe to reuse everywhere (stateless).
NULL_PROFILER = NullSpanProfiler()

#: The ambient profiler every instrumented site reads.  Rebound by
#: :func:`install`/:func:`uninstall`; hot sites read ``spans.ACTIVE``
#: through the module attribute so rebinding is always visible.
ACTIVE: SpanProfilerBase = NULL_PROFILER


def active() -> SpanProfilerBase:
    """The currently installed ambient profiler."""
    return ACTIVE


def install(profiler: Optional["SpanProfiler"] = None) -> "SpanProfiler":
    """Make ``profiler`` (a fresh one if omitted) the ambient profiler."""
    global ACTIVE
    if profiler is None:
        profiler = SpanProfiler()
    ACTIVE = profiler
    return profiler


def uninstall() -> SpanProfilerBase:
    """Restore the null profiler; returns the previously active one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = NULL_PROFILER
    return previous


@contextmanager
def profiled(profiler: Optional["SpanProfiler"] = None
             ) -> Iterator["SpanProfiler"]:
    """Install a profiler for the duration of a ``with`` block."""
    global ACTIVE
    previous = ACTIVE
    installed = install(profiler)
    try:
        yield installed
    finally:
        ACTIVE = previous


class SpanProfiler(SpanProfilerBase):
    """An enabled span profiler: one process's hierarchical span tree.

    Args:
        label: Human-readable identity of this profiler's process in
            merged exports (e.g. ``"repro"``, ``"sweep worker 3"``).
        capacity: Maximum retained spans; further ``begin`` calls are
            counted in :attr:`dropped` and ignored.
        clock: Monotonic-seconds callable (tests substitute a fake).

    Attributes:
        dropped: Spans rejected after :attr:`capacity` was reached.
    """

    enabled = True

    def __init__(self, label: str = "repro",
                 capacity: int = DEFAULT_CAPACITY,
                 clock=time.perf_counter) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.label = label
        self.capacity = capacity
        self.dropped = 0
        self._clock = clock
        self._names: List[str] = []
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._parents: List[int] = []
        self._stack: List[int] = []
        #: Adopted child profiles, in adoption (chunk) order: each entry
        #: is ``(profile_dict, meta)`` — see :meth:`adopt`.
        self._children: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        self._origin = clock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def begin(self, name: str) -> int:
        index = len(self._names)
        if index >= self.capacity:
            self.dropped += 1
            return -1
        self._names.append(name)
        self._starts.append(self._clock())
        self._ends.append(math.nan)
        self._parents.append(self._stack[-1] if self._stack else -1)
        self._stack.append(index)
        return index

    def end(self, handle: int) -> None:
        if handle < 0:
            return
        # Tolerate spans abandoned by exceptions: close everything the
        # handle still encloses, innermost first.
        now = self._clock()
        stack = self._stack
        while stack:
            index = stack.pop()
            if math.isnan(self._ends[index]):
                self._ends[index] = now
            if index == handle:
                return
        raise ValueError(f"span handle {handle} is not open")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_spans(self) -> int:
        return len(self._names)

    def records(self) -> List[SpanRecord]:
        """The retained spans of *this* process, in open order."""
        return [SpanRecord(name, start, end, parent)
                for name, start, end, parent
                in zip(self._names, self._starts, self._ends, self._parents)]

    @property
    def children(self) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """Adopted child profiles ``(profile_dict, meta)`` in chunk order."""
        return list(self._children)

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Picklable/JSONable form for crossing a process boundary.

        Carries the recording process's OS pid so merged profiles stay
        attributable; exports map it to a deterministic synthetic pid.
        """
        return {
            "label": self.label,
            "os_pid": os.getpid(),
            "dropped": self.dropped,
            "spans": [
                [name, start, (None if math.isnan(end) else end), parent]
                for name, start, end, parent
                in zip(self._names, self._starts, self._ends,
                       self._parents)
            ],
        }

    def adopt(self, profile: Dict[str, Any], **meta: Any) -> None:
        """Merge a child process's serialized profile under this one.

        Args:
            profile: A child's :meth:`as_dict` payload.
            meta: Deterministic identity of the child's work (e.g.
                ``chunk_index=2, snapshot_start=10, snapshot_stop=20``),
                surfaced in the merged trace's process names.

        Children must be adopted in a deterministic order (the sweep
        engine adopts in chunk order) — exports preserve adoption order,
        which is what makes merged traces identical run-to-run.
        """
        self._children.append((dict(profile), dict(meta)))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _all_profiles(self) -> List[Tuple[str, Dict[str, Any],
                                          Dict[str, Any]]]:
        """``(label, profile_dict, meta)`` for self + children, in order."""
        profiles = [(self.label, self.as_dict(), {})]
        for profile, meta in self._children:
            profiles.append((str(profile.get("label", "child")),
                             profile, meta))
        return profiles

    def phase_summary(self) -> Dict[str, Any]:
        """Self-time aggregation by phase name across self + children.

        Returns a JSON-ready dict: ``num_spans``, ``dropped``, and
        ``phases`` — one entry per span name with ``count``, ``total_s``
        (inclusive) and ``self_s`` (exclusive of child spans), sorted by
        descending self time.
        """
        totals: Dict[str, float] = {}
        selfs: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        num_spans = 0
        dropped = 0
        for _, profile, _ in self._all_profiles():
            spans = profile["spans"]
            num_spans += len(spans)
            dropped += int(profile.get("dropped", 0))
            durations = [0.0] * len(spans)
            child_time = [0.0] * len(spans)
            for i, (name, start, end, parent) in enumerate(spans):
                duration = (end - start) if end is not None else 0.0
                durations[i] = duration
                if parent >= 0:
                    child_time[parent] += duration
            for i, (name, _, _, _) in enumerate(spans):
                counts[name] = counts.get(name, 0) + 1
                totals[name] = totals.get(name, 0.0) + durations[i]
                selfs[name] = selfs.get(name, 0.0) + max(
                    durations[i] - child_time[i], 0.0)
        phases = [
            {"name": name, "count": counts[name],
             "total_s": totals[name], "self_s": selfs[name]}
            for name in sorted(selfs, key=lambda n: (-selfs[n], n))
        ]
        return {"num_spans": num_spans, "dropped": dropped,
                "phases": phases}

    # ------------------------------------------------------------------
    # Chrome trace-event export (Perfetto / chrome://tracing)
    # ------------------------------------------------------------------

    def chrome_trace(self, metadata: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
        """The merged profile as a Chrome trace-event JSON document.

        Every event carries ``ph``/``ts``/``pid``/``tid``/``name``;
        spans are complete events (``ph: "X"``, microsecond ``ts``/
        ``dur``), processes are named by metadata events (``ph: "M"``).
        Pids are synthetic and deterministic — :data:`MAIN_PID` for this
        profiler, ``MAIN_PID + 1 + k`` for the k-th adopted child — so
        two runs of the same scenario export the same event set, only
        wall-times (``ts``/``dur``) differing.  OS pids and chunk bounds
        appear in the top-level ``metadata`` section, not in events.
        """
        events: List[Dict[str, Any]] = []
        processes: List[Dict[str, Any]] = []
        origin = self._origin
        for start in self._starts:
            origin = min(origin, start)
        profiles = self._all_profiles()
        for profile_index, (label, profile, meta) in enumerate(profiles):
            for _, start, _, _ in profile["spans"]:
                origin = min(origin, start)
        for profile_index, (label, profile, meta) in enumerate(profiles):
            pid = MAIN_PID + profile_index
            name = label
            bounds = (meta.get("snapshot_start"), meta.get("snapshot_stop"))
            if bounds[0] is not None and bounds[1] is not None:
                name = f"{label} [snapshots {bounds[0]}:{bounds[1]})"
            events.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": 1,
                           "args": {"name": name}})
            processes.append({
                "pid": pid, "label": label,
                "os_pid": profile.get("os_pid"),
                **{key: value for key, value in meta.items()},
            })
            for span_name, start, end, parent in profile["spans"]:
                duration = (end - start) if end is not None else 0.0
                events.append({
                    "name": span_name, "ph": "X", "cat": "repro",
                    "ts": (start - origin) * 1e6,
                    "dur": duration * 1e6,
                    "pid": pid, "tid": 1,
                })
        document: Dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"processes": processes},
        }
        if metadata:
            document["metadata"].update(metadata)
        return document

    def write_chrome_trace(self, path: str,
                           metadata: Optional[Dict[str, Any]] = None
                           ) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns event count."""
        document = self.chrome_trace(metadata=metadata)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(document, stream, indent=1)
            stream.write("\n")
        return len(document["traceEvents"])


def format_phases(summary: Dict[str, Any], top: int = 10) -> List[str]:
    """Human-readable lines of a :meth:`SpanProfiler.phase_summary`.

    The ``repro profile`` CLI and :meth:`RunReport.describe` both print
    this "top phases" table.
    """
    phases: Sequence[Dict[str, Any]] = summary.get("phases", [])
    lines = [f"top phases by self-time "
             f"({summary.get('num_spans', 0)} spans"
             + (f", {summary['dropped']} dropped"
                if summary.get("dropped") else "") + "):"]
    for phase in phases[:top]:
        lines.append(
            f"  {phase['name']:<28s} x{phase['count']:<7d} "
            f"self {phase['self_s']:9.4f}s  total {phase['total_s']:9.4f}s")
    if len(phases) > top:
        lines.append(f"  ... {len(phases) - top} more phases")
    return lines
