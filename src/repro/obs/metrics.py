"""Metrics primitives: counters, gauges, histograms, time series.

A :class:`MetricsRegistry` is the single sink a run's instruments write
into — periodic sampling probes (:mod:`repro.obs.probes`), the fluid
engines, and anything else that wants its numbers in the run report.
Instruments are get-or-create by name, so decoupled subsystems can share
one registry without coordination.

:class:`TimeSeriesLog` lives here (extracted from ``repro.transport``);
the transport package re-exports it for backward compatibility.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeriesLog",
           "MetricsRegistry", "DEFAULT_BUCKETS", "EXACT_QUANTILE_SAMPLES"]

#: Default histogram bucket upper bounds (log-spaced, seconds-friendly).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0)

#: Histograms keep raw samples up to this count so small-sample
#: quantiles are exact (nearest-rank); past it they fall back to
#: bucket-resolution quantiles with O(buckets) memory.
EXACT_QUANTILE_SAMPLES = 256


class TimeSeriesLog:
    """An append-only (time, value) log with numpy export.

    Used for congestion windows, RTT samples, rate measurements, and the
    sampled per-link series of :mod:`repro.obs.probes`.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time_s: float, value: float) -> None:
        self._times.append(time_s)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times_s(self) -> List[float]:
        return self._times

    @property
    def values(self) -> List[float]:
        return self._values

    def as_arrays(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """The log as ``(times, values)`` numpy arrays."""
        import numpy as np
        return np.asarray(self._times), np.asarray(self._values)

    def as_dict(self) -> Dict[str, List[float]]:
        """JSON-friendly form."""
        return {"times_s": list(self._times), "values": list(self._values)}


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ValueError(f"counter increments must be >= 0, "
                             f"got {amount}")
        self.value += amount


class Gauge:
    """A value that can move either way (queue depth, mode, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with running sum/min/max.

    Quantiles are *exact* (nearest-rank over retained raw samples) while
    the sample count stays within :data:`EXACT_QUANTILE_SAMPLES`; beyond
    that the raw samples are discarded and quantiles degrade to bucket
    resolution, keeping memory O(buckets) on hot paths.

    Args:
        name: Instrument name.
        buckets: Ascending upper bounds; an implicit +inf bucket catches
            the overflow.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum",
                 "min", "max", "_samples")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and ascending")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: Optional[List[float]] = []

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        samples = self._samples
        if samples is not None:
            if self.count <= EXACT_QUANTILE_SAMPLES:
                samples.append(value)
            else:
                self._samples = None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """Whether :meth:`quantile` is still exact (small sample)."""
        return self._samples is not None

    def quantile(self, q: float) -> float:
        """The q-quantile of the observed values.

        Exact nearest-rank while the sample count is within
        :data:`EXACT_QUANTILE_SAMPLES`; bucket-resolution (upper bound
        of the q-bucket) afterwards.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        samples = self._samples
        if samples is not None:
            ordered = sorted(samples)
            rank = max(1, math.ceil(q * len(ordered)))
            return ordered[rank - 1]
        target = q * self.count
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                return (self.bounds[i] if i < len(self.bounds)
                        else self.max)
        return self.max

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "exact_quantiles": self.exact,
            "p50": self.quantile(0.5) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
            "buckets": {
                (str(bound) if i < len(self.bounds) else "+inf"): count
                for i, (bound, count) in enumerate(
                    zip(self.bounds + (math.inf,), self.counts))
            },
        }


class MetricsRegistry:
    """Named instruments of one run, get-or-create by name.

    Example::

        registry = MetricsRegistry()
        registry.counter("drops").inc()
        registry.series("link.isl-0-1.queue_depth").append(1.0, 17)
        registry.to_json("metrics.json")
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeriesLog] = {}
        #: name -> instrument kind; one name binds to exactly one kind.
        self._kinds: Dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        bound = self._kinds.get(name)
        if bound is None:
            self._kinds[name] = kind
        elif bound != kind:
            raise TypeError(f"metric {name!r} is already a {bound}, "
                            f"cannot reuse it as a {kind}")

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, "histogram")
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def series(self, name: str) -> TimeSeriesLog:
        instrument = self._series.get(name)
        if instrument is None:
            self._claim(name, "series")
            instrument = self._series[name] = TimeSeriesLog()
        return instrument

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    @property
    def series_logs(self) -> Dict[str, TimeSeriesLog]:
        return dict(self._series)

    def series_names(self, prefix: str = "",
                     suffix: str = "") -> List[str]:
        """Registered series names matching a prefix/suffix."""
        return sorted(name for name in self._series
                      if name.startswith(prefix) and name.endswith(suffix))

    def has_series(self, name: str) -> bool:
        return name in self._series

    def as_dict(self, include_series: bool = True) -> Dict[str, Any]:
        """The whole registry as a JSON-serializable dict."""
        payload: Dict[str, Any] = {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {name: h.as_dict()
                           for name, h in self._histograms.items()},
        }
        if include_series:
            payload["series"] = {name: log.as_dict()
                                 for name, log in self._series.items()}
        return payload

    def to_json(self, path: str, include_series: bool = True,
                indent: Optional[int] = 1) -> None:
        """Dump the registry to a JSON file."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.as_dict(include_series=include_series), stream,
                      indent=indent)
            stream.write("\n")
