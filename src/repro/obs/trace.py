"""Structured tracing: typed events behind a near-zero-cost hook point.

Every instrumented layer (devices, forwarding plane, routing engine,
transports) holds a :class:`Tracer` and guards each emission with::

    tracer = self._tracer
    if tracer.enabled:
        tracer.emit(...)

The default tracer is the shared :data:`NULL_TRACER`, whose ``enabled``
is a class attribute ``False`` — the disabled path costs one attribute
check per event and never constructs a :class:`TraceEvent`.  That is the
overhead contract ``make bench-obs`` enforces.

Enabled tracing goes through :class:`RingBufferTracer`: a bounded ring
buffer (oldest events evicted, eviction counted) with optional per-flow /
per-link / per-kind filters and JSONL export, so a multi-minute run can
be traced without unbounded memory.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass
from typing import (Deque, Dict, IO, Iterable, Iterator, List, Optional,
                    Union)

__all__ = [
    "TraceEvent", "TraceFilter", "Tracer", "NullTracer", "RingBufferTracer",
    "NULL_TRACER",
    "PKT_ENQUEUE", "PKT_TX_START", "PKT_TX_FINISH", "PKT_DELIVER",
    "PKT_DROP", "FWD_UPDATE", "ROUTE_CHANGE", "ROUTING_COMPUTE",
    "FLOW_CWND", "FLOW_RTT", "FLOW_STATE", "WARNING",
]

# ----------------------------------------------------------------------
# Event kinds (the typed vocabulary; see DESIGN.md "Observability")
# ----------------------------------------------------------------------

#: A packet entered a device queue (or went straight to the transmitter).
PKT_ENQUEUE = "pkt.enqueue"
#: A device began serializing a packet.
PKT_TX_START = "pkt.tx_start"
#: A device finished serializing a packet (it is now propagating).
PKT_TX_FINISH = "pkt.tx_finish"
#: A packet was handed to its destination application.
PKT_DELIVER = "pkt.deliver"
#: A packet was lost; ``reason`` is one of "queue", "no_route", "ttl",
#: "no_handler", "fault" (injected loss/corruption; see
#: :mod:`repro.faults`).
PKT_DROP = "pkt.drop"
#: The forwarding controller installed a fresh state snapshot.
FWD_UPDATE = "fwd.update"
#: One destination's installed next-hop tree changed entries.
ROUTE_CHANGE = "fwd.route_change"
#: The routing engine computed a batch of destination trees.
ROUTING_COMPUTE = "routing.compute"
#: A flow's congestion window changed (``value`` = cwnd in packets).
FLOW_CWND = "flow.cwnd"
#: A flow measured an RTT (or one-way delay; ``value`` in seconds).
FLOW_RTT = "flow.rtt"
#: A congestion-control state transition (Vegas backlog, BBR mode, ...).
FLOW_STATE = "flow.state"
#: An accounting anomaly (e.g. device utilization above 1.0).
WARNING = "warn"


@dataclass
class TraceEvent:
    """One structured trace record.

    Only ``time_s`` and ``kind`` are always meaningful; the remaining
    fields default to sentinel values and are omitted from the JSONL
    export when unset.

    Events are only constructed when a tracer is enabled, so a plain
    dataclass (no ``__slots__``) keeps 3.9 compatibility without touching
    the disabled hot path.

    Attributes:
        time_s: Simulation time of the event.
        kind: One of the module-level kind constants.
        node: Node id the event happened at (-1 when not node-scoped).
        flow: Flow id (-1 when not flow-scoped).
        link: Device name, e.g. ``"isl-17-18"`` (empty when not
            link-scoped).
        seq: Transport sequence number or packet id (-1 when unset).
        value: Free numeric payload (cwnd, RTT, queue depth, ...).
        reason: Short string payload (drop reason, state name, ...).
    """

    time_s: float
    kind: str
    node: int = -1
    flow: int = -1
    link: str = ""
    seq: int = -1
    value: Optional[float] = None
    reason: str = ""

    def as_dict(self) -> Dict[str, Union[float, int, str]]:
        """Compact dict form: sentinel-valued fields are omitted."""
        record: Dict[str, Union[float, int, str]] = {
            "t": self.time_s, "kind": self.kind,
        }
        if self.node != -1:
            record["node"] = self.node
        if self.flow != -1:
            record["flow"] = self.flow
        if self.link:
            record["link"] = self.link
        if self.seq != -1:
            record["seq"] = self.seq
        if self.value is not None:
            record["value"] = self.value
        if self.reason:
            record["reason"] = self.reason
        return record


class TraceFilter:
    """Accept/reject predicate over (kind, flow, link).

    Any criterion left as ``None`` matches everything; a set restricts
    the dimension.  ``links`` entries match device names exactly.

    Example::

        TraceFilter(flows={7}, kinds={PKT_DROP, FLOW_CWND})
    """

    __slots__ = ("flows", "links", "kinds")

    def __init__(self, flows: Optional[Iterable[int]] = None,
                 links: Optional[Iterable[str]] = None,
                 kinds: Optional[Iterable[str]] = None) -> None:
        self.flows = frozenset(flows) if flows is not None else None
        self.links = frozenset(links) if links is not None else None
        self.kinds = frozenset(kinds) if kinds is not None else None

    def accepts(self, kind: str, flow: int, link: str) -> bool:
        """Whether an event with these coordinates should be retained."""
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.flows is not None and flow >= 0 and flow not in self.flows:
            return False
        if self.links is not None and link and link not in self.links:
            return False
        return True


class Tracer:
    """Tracer interface.  ``enabled`` gates every emission site."""

    #: Hot paths read this before building any event arguments.
    enabled: bool = False

    def emit(self, time_s: float, kind: str, node: int = -1, flow: int = -1,
             link: str = "", seq: int = -1, value: Optional[float] = None,
             reason: str = "") -> None:
        """Record one event (no-op unless overridden)."""


class NullTracer(Tracer):
    """The default, do-nothing tracer (``enabled`` is ``False``)."""

    __slots__ = ()

    def __reduce__(self):
        # Pickle by reference to the module-level singleton, so simulator
        # graphs restored from a service checkpoint keep sharing one
        # instance instead of sprouting a copy per reference.
        return "NULL_TRACER"


#: Shared default tracer instance; safe to reuse everywhere (stateless).
NULL_TRACER = NullTracer()


class RingBufferTracer(Tracer):
    """Bounded in-memory tracer with filtering and JSONL export.

    Args:
        capacity: Maximum retained events; older events are evicted
            (and counted in :attr:`evicted`) once full.
        trace_filter: Optional :class:`TraceFilter`; rejected events are
            counted per kind but not stored.

    Attributes:
        emitted: Events offered to the tracer (accepted or not).
        evicted: Accepted events later pushed out of the ring.
    """

    enabled = True

    def __init__(self, capacity: int = 65536,
                 trace_filter: Optional[TraceFilter] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.trace_filter = trace_filter
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._counts: _Counter = _Counter()
        self.emitted = 0
        self.evicted = 0

    def emit(self, time_s: float, kind: str, node: int = -1, flow: int = -1,
             link: str = "", seq: int = -1, value: Optional[float] = None,
             reason: str = "") -> None:
        self.emitted += 1
        trace_filter = self.trace_filter
        if trace_filter is not None and not trace_filter.accepts(
                kind, flow, link):
            return
        self._counts[kind] += 1
        events = self._events
        if len(events) == self.capacity:
            self.evicted += 1
        events.append(TraceEvent(time_s, kind, node, flow, link, seq,
                                 value, reason))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    @property
    def counts(self) -> Dict[str, int]:
        """Accepted events per kind (including since-evicted ones)."""
        return dict(self._counts)

    def events_of(self, kind: str) -> List[TraceEvent]:
        """Retained events of one kind, oldest first."""
        return [event for event in self._events if event.kind == kind]

    def summary(self) -> Dict[str, Union[int, Dict[str, int]]]:
        """Counts suitable for a run report."""
        return {
            "emitted": self.emitted,
            "retained": len(self._events),
            "evicted": self.evicted,
            "by_kind": self.counts,
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write retained events as JSON Lines; returns the line count."""
        count = 0
        for event in self._events:
            stream.write(json.dumps(event.as_dict(), separators=(",", ":")))
            stream.write("\n")
            count += 1
        return count

    def to_jsonl(self, path: str) -> int:
        """Write retained events to a ``.jsonl`` file at ``path``."""
        with open(path, "w", encoding="utf-8") as stream:
            return self.write_jsonl(stream)
