"""Command-line interface: quick constellation inspection and exports.

Usage (installed as ``python -m repro``):

.. code-block:: console

   python -m repro info                     # Table 1 overview
   python -m repro info K1                  # one shell's description
   python -m repro rtt K1 Manila Dalian     # RTT series summary
   python -m repro sweep K1 --workers 4     # parallel Fig. 8 path sweep
   python -m repro tles K1 -o k1.tle        # write 3LE file
   python -m repro czml K1 -o k1.czml       # write Cesium document
   python -m repro sky K1 "Saint Petersburg"  # sky view snapshot
   python -m repro report K1 Manila Dalian -o run.json --trace run.jsonl
   python -m repro faults K1 -o faults.json --seed 7   # fault schedule
   python -m repro report K1 Manila Dalian --faults faults.json
   python -m repro sweep K1 --faults faults.json --workers 4
   python -m repro traffic -o workload.json --seed 7   # gravity workload
   python -m repro report K1 --engine maxmin --workload workload.json
   python -m repro sweep K1 --workload workload.json --workers 4
   python -m repro profile K1 Manila Dalian -o trace.json  # Perfetto trace
   python -m repro sweep K1 --workers 4 --profile-out trace.json
   python -m repro bench-report                  # BENCH_*.json regressions
   python -m repro serve K1 --workload w.json --port 7600 --pace 2
   python -m repro checkpoint K1 --workload w.json --at 30 -o state.ckpt
   python -m repro checkpoint --connect 127.0.0.1:7600 -o state.ckpt
   python -m repro checkpoint --inspect state.ckpt      # header only
   python -m repro resume state.ckpt -o report.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    """The scenario arguments ``report`` and ``profile`` share."""
    parser.add_argument("shell")
    parser.add_argument("src_city", nargs="?", default=None,
                        help="source city (optional with --workload)")
    parser.add_argument("dst_city", nargs="?", default=None,
                        help="destination city (optional with --workload)")
    parser.add_argument("--engine", choices=("packet", "aimd", "maxmin"),
                        default="packet",
                        help="packet simulator (default) or a fluid engine")
    parser.add_argument("--kernel", choices=("vectorized", "reference"),
                        default="vectorized",
                        help="max-min allocation kernel (maxmin engine "
                             "only): array waterfilling (default) or the "
                             "pure-Python oracle")
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--step", type=float, default=1.0,
                        help="probe/snapshot interval (seconds)")
    parser.add_argument("--faults", default=None, metavar="SPEC_JSON",
                        help="apply a fault schedule "
                             "(JSON written by 'repro faults' or "
                             "FaultSchedule.to_json)")
    parser.add_argument("--workload", default=None,
                        metavar="WORKLOAD_JSON",
                        help="drive the run with a workload schedule "
                             "(JSON written by 'repro traffic' or "
                             "WorkloadSchedule.to_json)")
    parser.add_argument("--metrics-out", default=None, metavar="JSON",
                        help="dump the run's MetricsRegistry "
                             "(counters/gauges/histograms/series) here")


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    """The scenario arguments ``serve`` and ``checkpoint`` share."""
    parser.add_argument("shell", nargs="?", default=None,
                        help="shell name (optional with --connect / "
                             "--inspect / --resume)")
    parser.add_argument("--engine", choices=("packet", "fluid"),
                        default="packet",
                        help="packet simulator (default) or the max-min "
                             "fluid engine (AIMD is not checkpointable)")
    parser.add_argument("--kernel", choices=("vectorized", "reference"),
                        default="vectorized",
                        help="max-min allocation kernel (fluid engine only)")
    parser.add_argument("--cities", type=int, default=100,
                        help="ground stations (top-N cities)")
    parser.add_argument("--horizon", type=float, default=60.0,
                        help="simulated end of the run (seconds)")
    parser.add_argument("--epoch", type=float, default=1.0,
                        help="epoch granularity (seconds); also the fluid "
                             "snapshot step")
    parser.add_argument("--faults", default=None, metavar="SPEC_JSON",
                        help="apply a fault schedule "
                             "(JSON written by 'repro faults')")
    parser.add_argument("--workload", default=None, metavar="WORKLOAD_JSON",
                        help="drive the run with a workload schedule "
                             "(JSON written by 'repro traffic'; required "
                             "for the fluid engine)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hypatia reproduction: LEO constellation analysis")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe shells (Table 1)")
    info.add_argument("shell", nargs="?", default=None,
                      help="shell name (S1..S5, K1..K3, T1/T2); "
                           "omit for the full table")

    rtt = sub.add_parser("rtt", help="RTT between two cities over time")
    rtt.add_argument("shell")
    rtt.add_argument("src_city")
    rtt.add_argument("dst_city")
    rtt.add_argument("--duration", type=float, default=60.0)
    rtt.add_argument("--step", type=float, default=2.0)
    rtt.add_argument("--workers", type=int, default=1,
                     help="snapshot-sweep worker processes "
                          "(1 = serial, 0 = all cores)")
    rtt.add_argument("--routing", choices=("incremental", "scratch"),
                     default="incremental",
                     help="forwarding-state recomputation strategy: "
                          "repair between snapshots (default) or always "
                          "from scratch — bit-identical results")

    sweep = sub.add_parser(
        "sweep", help="path-evolution sweep over a permutation "
                      "traffic matrix (Fig. 8)")
    sweep.add_argument("shell")
    sweep.add_argument("--cities", type=int, default=100,
                       help="ground stations (top-N cities)")
    sweep.add_argument("--duration", type=float, default=60.0)
    sweep.add_argument("--step", type=float, default=1.0)
    sweep.add_argument("--workers", type=int, default=1,
                       help="snapshot-sweep worker processes "
                            "(1 = serial, 0 = all cores)")
    sweep.add_argument("--routing", choices=("incremental", "scratch"),
                       default="incremental",
                       help="forwarding-state recomputation strategy: "
                            "repair between snapshots (default) or "
                            "always from scratch — bit-identical results")
    sweep.add_argument("-o", "--output", default=None,
                       help="write per-pair stats + sweep metrics JSON")
    sweep.add_argument("--faults", default=None, metavar="SPEC_JSON",
                       help="apply a fault schedule "
                            "(JSON written by 'repro faults' or "
                            "FaultSchedule.to_json)")
    sweep.add_argument("--workload", default=None, metavar="WORKLOAD_JSON",
                       help="track the pairs of a workload schedule "
                            "(JSON written by 'repro traffic') instead of "
                            "the permutation matrix")
    sweep.add_argument("--profile-out", default=None, metavar="TRACE_JSON",
                       help="run under the span profiler and write the "
                            "merged (all workers) Chrome trace-event "
                            "JSON here (load in Perfetto)")

    tles = sub.add_parser("tles", help="generate a 3LE file for a shell")
    tles.add_argument("shell")
    tles.add_argument("-o", "--output", required=True)

    czml = sub.add_parser("czml", help="generate a Cesium CZML document")
    czml.add_argument("shell")
    czml.add_argument("-o", "--output", required=True)
    czml.add_argument("--duration", type=float, default=300.0)
    czml.add_argument("--step", type=float, default=30.0)

    sky = sub.add_parser("sky", help="ground observer's sky view")
    sky.add_argument("shell")
    sky.add_argument("city")
    sky.add_argument("--time", type=float, default=0.0)

    report = sub.add_parser(
        "report", help="run a small scenario and dump its RunReport")
    _add_scenario_args(report)
    report.add_argument("-o", "--output", default=None,
                        help="write the full report JSON here")
    report.add_argument("--trace", default=None,
                        help="write the JSONL event trace here "
                             "(packet engine only)")
    report.add_argument("--profile-out", default=None,
                        metavar="TRACE_JSON",
                        help="run under the span profiler and write the "
                             "Chrome trace-event JSON here (load in "
                             "Perfetto)")

    profile = sub.add_parser(
        "profile", help="run a scenario under the span profiler and "
                        "export a Perfetto-loadable Chrome trace")
    _add_scenario_args(profile)
    profile.add_argument("-o", "--output", required=True,
                         help="write the Chrome trace-event JSON here "
                              "(open at https://ui.perfetto.dev)")
    profile.add_argument("--report-out", default=None, metavar="JSON",
                         help="also write the full RunReport JSON here")

    bench_report = sub.add_parser(
        "bench-report", help="compare the BENCH_*.json trajectories "
                             "against their rolling best and flag "
                             "regressions (nonzero exit)")
    bench_report.add_argument("--results-dir", default="results",
                              help="directory holding BENCH_*.json "
                                   "trajectory files")
    bench_report.add_argument("--threshold", type=float, default=0.2,
                              help="relative regression threshold "
                                   "(default 0.2 = 20%%)")
    bench_report.add_argument("--metric", default=None,
                              help="force the headline metric instead of "
                                   "auto-selecting per trajectory")

    serve = sub.add_parser(
        "serve", help="run a live, checkpointable simulation behind a "
                      "JSON-over-TCP command API")
    _add_service_args(serve)
    serve.add_argument("--resume", default=None, metavar="CKPT",
                       help="serve from a checkpoint instead of t=0 "
                            "(the shell argument is then ignored)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0 picks a free one and prints it)")
    serve.add_argument("--pace", type=float, default=0.0,
                       help="wall-clock pacing factor: advance one epoch "
                            "every epoch/pace wall seconds (2 = twice "
                            "real time; 0 = advance only on command)")

    checkpoint = sub.add_parser(
        "checkpoint", help="capture a simulation checkpoint — offline "
                           "(build + advance + save), from a live server "
                           "(--connect), or inspect one (--inspect)")
    _add_service_args(checkpoint)
    checkpoint.add_argument("-o", "--output", default=None,
                            help="write the checkpoint file here")
    checkpoint.add_argument("--at", type=float, default=0.0,
                            help="advance to this simulated time before "
                                 "checkpointing (offline mode)")
    checkpoint.add_argument("--connect", default=None, metavar="HOST:PORT",
                            help="checkpoint a running 'repro serve' "
                                 "instead of building offline")
    checkpoint.add_argument("--advance", type=int, default=0,
                            metavar="EPOCHS",
                            help="with --connect: advance this many epochs "
                                 "first")
    checkpoint.add_argument("--inspect", default=None, metavar="CKPT",
                            help="print an existing checkpoint's JSON "
                                 "header (no unpickling) and exit")

    resume = sub.add_parser(
        "resume", help="restore a checkpoint, run it to the horizon, and "
                       "dump its RunReport")
    resume.add_argument("checkpoint", help="checkpoint file to restore")
    resume.add_argument("-o", "--output", default=None,
                        help="write the full report JSON here")
    resume.add_argument("--metrics-out", default=None, metavar="JSON",
                        help="dump the restored run's MetricsRegistry here")
    resume.add_argument("--checkpoint-out", default=None, metavar="CKPT",
                        help="re-checkpoint at the horizon (archives the "
                             "completed run)")

    faults = sub.add_parser(
        "faults", help="generate a seeded synthetic fault schedule")
    faults.add_argument("shell")
    faults.add_argument("-o", "--output", required=True,
                        help="write the schedule JSON here")
    faults.add_argument("--cities", type=int, default=100,
                        help="ground stations the schedule covers")
    faults.add_argument("--duration", type=float, default=60.0)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--sat-outage-prob", type=float, default=0.02,
                        help="per-satellite outage probability")
    faults.add_argument("--gsl-cut-prob", type=float, default=0.05,
                        help="per-station GSL cut probability")
    faults.add_argument("--loss-prob", type=float, default=0.05,
                        help="per-station lossy-uplink probability")
    faults.add_argument("--mean-duration", type=float, default=30.0,
                        help="mean fault duration (seconds)")

    traffic = sub.add_parser(
        "traffic", help="generate a seeded traffic workload "
                        "(gravity or permutation demand)")
    traffic.add_argument("-o", "--output", required=True,
                         help="write the workload schedule JSON here")
    traffic.add_argument("--cities", type=int, default=100,
                         help="ground stations the matrix covers")
    traffic.add_argument("--model", choices=("gravity", "permutation"),
                         default="gravity",
                         help="demand model (gravity: population-weighted; "
                              "permutation: the paper's section 5.4 matrix)")
    traffic.add_argument("--total-mbps", type=float, default=1000.0,
                         help="aggregate offered load (gravity model)")
    traffic.add_argument("--pair-mbps", type=float, default=10.0,
                         help="per-pair offered load (permutation model)")
    traffic.add_argument("--distance-exponent", type=float, default=1.0,
                         help="gravity deterrence exponent "
                              "(0 disables distance)")
    traffic.add_argument("--duration", type=float, default=60.0,
                         help="workload horizon (seconds)")
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument("--mean-size", type=float, default=1_000_000.0,
                         help="mean flow size (bytes)")
    traffic.add_argument("--size-dist",
                         choices=("exponential", "lognormal", "pareto"),
                         default="exponential",
                         help="flow size distribution")
    traffic.add_argument("--matrix-out", default=None,
                         help="also write the demand matrix JSON here")

    cc_lab = sub.add_parser(
        "cc-lab", help="race every congestion controller through the "
                       "fault x weather x churn scenario matrix")
    cc_lab.add_argument("--shell", default="8x8", metavar="NxM",
                        help="lab constellation: N orbits x M satellites "
                             "at 600 km / 53 deg (default 8x8; below 8x8 "
                             "some site pairs have no route)")
    cc_lab.add_argument("--controllers", default=None, metavar="CSV",
                        help="comma-separated registry names "
                             "(default: all registered controllers)")
    cc_lab.add_argument("--duration", type=float, default=8.0,
                        help="simulated seconds per cell")
    cc_lab.add_argument("--seed", type=int, default=0,
                        help="workload / fault / storm base seed")
    cc_lab.add_argument("--workers", type=int, default=1,
                        help="process-pool width (cells are independent; "
                             "the report is identical at any width)")
    cc_lab.add_argument("--learned", default="bandit",
                        help="controller scored against the classics")
    cc_lab.add_argument("-o", "--output", default=None, metavar="JSON",
                        help="write the full cell-by-cell report here")
    return parser


def _cmd_info(args) -> int:
    from .constellations.definitions import ALL_SHELLS, shell_by_name
    if args.shell:
        shell = shell_by_name(args.shell)
        print(f"{shell.name}: {shell.num_orbits} orbits x "
              f"{shell.satellites_per_orbit} satellites "
              f"({shell.total_satellites} total) @ "
              f"{shell.altitude_km:.0f} km, i={shell.inclination_deg} deg")
        return 0
    for spec in ALL_SHELLS.values():
        print(f"{spec.name} ({spec.total_satellites} satellites, "
              f"min elevation {spec.min_elevation_deg:.0f} deg):")
        for shell in spec.shells:
            print(f"  {shell.name}: {shell.num_orbits} x "
                  f"{shell.satellites_per_orbit} @ "
                  f"{shell.altitude_km:.0f} km, "
                  f"i={shell.inclination_deg} deg")
    return 0


def _cmd_rtt(args) -> int:
    from .core.hypatia import Hypatia
    hypatia = Hypatia.from_shell_name(args.shell, num_cities=100)
    pair = hypatia.pair(args.src_city, args.dst_city)
    timeline = hypatia.compute_timelines(
        [pair], duration_s=args.duration, step_s=args.step,
        workers=args.workers, routing=args.routing)[pair]
    rtts = timeline.rtts_s
    finite = rtts[np.isfinite(rtts)]
    if finite.size == 0:
        print(f"{args.src_city} -> {args.dst_city}: never connected over "
              f"{args.duration:.0f}s")
        return 1
    print(f"{args.src_city} -> {args.dst_city} over {args.shell}, "
          f"{args.duration:.0f}s at {args.step:.1f}s steps:")
    print(f"  RTT min/median/max: {finite.min() * 1000:.2f} / "
          f"{np.median(finite) * 1000:.2f} / "
          f"{finite.max() * 1000:.2f} ms")
    print(f"  connected: {np.isfinite(rtts).mean() * 100:.1f}% of "
          f"snapshots")
    return 0


def _load_faults(path: Optional[str]):
    """Load a ``--faults`` schedule file (None passes through)."""
    if path is None:
        return None
    from .faults import FaultSchedule
    try:
        schedule = FaultSchedule.from_json(path)
    except (OSError, ValueError) as error:
        raise KeyError(f"cannot load fault schedule {path!r}: {error}")
    print(f"loaded fault schedule: {schedule.num_events} events, "
          f"seed {schedule.seed}")
    return schedule


def _load_workload(path: Optional[str]):
    """Load a ``--workload`` schedule file (None passes through)."""
    if path is None:
        return None
    from .traffic import WorkloadSchedule
    try:
        schedule = WorkloadSchedule.from_json(path)
    except (OSError, ValueError) as error:
        raise KeyError(f"cannot load workload {path!r}: {error}")
    print(f"loaded workload: {schedule.num_flows} flows over "
          f"{len(schedule.pairs())} pairs, seed {schedule.seed}")
    return schedule


def _cmd_sweep(args) -> int:
    import json

    from .analysis.paths import pair_path_stats
    from .core.hypatia import Hypatia
    from .core.workloads import random_permutation_pairs
    from .obs import MetricsRegistry, spans

    hypatia = Hypatia.from_shell_name(args.shell, num_cities=args.cities,
                                      faults=_load_faults(args.faults))
    workload = _load_workload(args.workload)
    if workload is not None:
        pairs = workload.pairs()
        if not pairs:
            raise KeyError(f"workload {args.workload!r} has no flows")
    else:
        pairs = random_permutation_pairs(args.cities)
    registry = MetricsRegistry()
    profile_out = getattr(args, "profile_out", None)
    profiler = spans.install() if profile_out else None
    try:
        timelines = hypatia.compute_timelines(
            pairs, duration_s=args.duration, step_s=args.step,
            workers=args.workers, metrics=registry,
            routing=args.routing)
    finally:
        if profiler is not None:
            spans.uninstall()
    if profiler is not None:
        events = profiler.write_chrome_trace(
            profile_out,
            metadata={"provenance": {"shell": args.shell,
                                     "duration_s": args.duration,
                                     "step_s": args.step,
                                     "workers": args.workers}})
        print(f"wrote {events} span events to {profile_out} "
              f"(open at https://ui.perfetto.dev)")
    stats = pair_path_stats(timelines, hypatia.network.num_satellites)
    changes = np.array([s.num_path_changes for s in stats])
    spreads = np.array([s.hop_spread for s in stats])
    num_snapshots = len(next(iter(timelines.values())).times_s)
    print(f"{args.shell}: {len(pairs)} pairs x {num_snapshots} snapshots "
          f"({args.duration:.0f}s at {args.step:.1f}s steps)")
    if changes.size:
        print(f"  path changes median/max: {np.median(changes):.0f} / "
              f"{changes.max()}")
        print(f"  hop spread median/max:   {np.median(spreads):.0f} / "
              f"{spreads.max()}")
    wall = registry.gauges["sweep.wall_s"].value
    workers = int(registry.gauges["sweep.workers"].value)
    print(f"  sweep: {workers} worker(s), {wall:.2f}s wall")
    for name in registry.series_names(prefix="sweep.worker.",
                                      suffix=".wall_s"):
        log = registry.series_logs[name]
        index = name[len("sweep.worker."):-len(".wall_s")]
        count_log = registry.series_logs[
            f"sweep.worker.{index}.snapshots"]
        print(f"    worker {index}: {int(count_log.values[0])} snapshots "
              f"in {log.values[0]:.2f}s (from t={log.times_s[0]:.1f}s)")
    if args.output:
        payload = {
            "shell": args.shell,
            "duration_s": args.duration,
            "step_s": args.step,
            "workers": workers,
            "pairs": [
                {"src_gid": s.src_gid, "dst_gid": s.dst_gid,
                 "num_path_changes": s.num_path_changes,
                 "min_hops": s.min_hops, "max_hops": s.max_hops}
                for s in stats
            ],
            "metrics": registry.as_dict(),
        }
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1)
            stream.write("\n")
        print(f"wrote sweep stats to {args.output}")
    return 0


def _cmd_tles(args) -> int:
    from .constellations.builder import Constellation
    from .constellations.definitions import shell_by_name
    from .orbits.tle import write_tle_file
    constellation = Constellation([shell_by_name(args.shell)])
    tles = constellation.generate_tles()
    write_tle_file(tles, args.output)
    print(f"wrote {len(tles)} element sets to {args.output}")
    return 0


def _cmd_czml(args) -> int:
    from .constellations.builder import Constellation
    from .constellations.definitions import shell_by_name
    from .viz.czml import constellation_czml, write_czml
    constellation = Constellation([shell_by_name(args.shell)])
    document = constellation_czml(constellation, args.duration,
                                  step_s=args.step)
    write_czml(document, args.output)
    print(f"wrote {len(document) - 1} satellite packets to {args.output}")
    return 0


def _cmd_sky(args) -> int:
    from .core.hypatia import Hypatia
    from .viz.ground_view import sky_snapshot
    hypatia = Hypatia.from_shell_name(args.shell, num_cities=100)
    station = hypatia.ground_stations[hypatia.gid(args.city)]
    snap = sky_snapshot(hypatia.constellation, station,
                        hypatia.network.min_elevation_deg, args.time)
    print(f"{args.city} over {args.shell} at t={args.time:.0f}s: "
          f"{snap.num_above_horizon} above horizon, "
          f"{snap.num_connectable} connectable "
          f"(min elevation {hypatia.network.min_elevation_deg:.0f} deg)")
    order = np.argsort(-snap.elevations_deg)[:10]
    for i in order:
        marker = "*" if snap.connectable[i] else " "
        print(f"  {marker} sat {snap.satellite_ids[i]:4d}  "
              f"az {snap.azimuths_deg[i]:6.1f} deg  "
              f"el {snap.elevations_deg[i]:5.1f} deg")
    return 0


def _run_provenance(args, faults, workload) -> dict:
    """Run-identity fields for the report/profile provenance header."""
    provenance = {
        "shell": args.shell,
        "duration_s": args.duration,
        "step_s": args.step,
    }
    if faults is not None:
        provenance["faults"] = {"seed": faults.seed,
                                "num_events": faults.num_events}
    if workload is not None:
        provenance["workload"] = {"seed": workload.seed,
                                  "num_flows": workload.num_flows}
    return provenance


def _cmd_report(args) -> int:
    from .core.hypatia import Hypatia
    from .fluid.engine import FluidFlow
    from .obs import MetricsRegistry, RingBufferTracer, spans
    from .transport.tcp import TcpNewRenoFlow
    faults = _load_faults(args.faults)
    hypatia = Hypatia.from_shell_name(args.shell, num_cities=100,
                                      faults=faults)
    workload = _load_workload(args.workload)
    if workload is None and (args.src_city is None or args.dst_city is None):
        raise KeyError("report needs a src/dst city pair, a --workload "
                       "file, or both")
    pair = (hypatia.pair(args.src_city, args.dst_city)
            if args.src_city is not None and args.dst_city is not None
            else None)
    provenance = _run_provenance(args, faults, workload)

    trace_out = getattr(args, "trace", None)
    profile_out = getattr(args, "profile_out", None)
    profiler = spans.install() if profile_out else None
    try:
        if args.engine == "packet":
            from .traffic import WorkloadSpawner
            tracer = RingBufferTracer()
            sim = hypatia.build_packet_simulator(tracer=tracer)
            registry = MetricsRegistry()
            sim.attach_probe(registry=registry, interval_s=args.step)
            if pair is not None:
                TcpNewRenoFlow(pair[0], pair[1]).install(sim)
            spawner = (WorkloadSpawner(workload,
                                       metrics=registry).install(sim)
                       if workload is not None else None)
            sim.run(args.duration)
            report = sim.report(registry=registry)
            if spawner is not None:
                report.extras["fct"] = spawner.fct_extras()
            if trace_out:
                tracer.to_jsonl(trace_out)
                print(f"wrote {tracer.summary()['retained']} trace events "
                      f"to {trace_out}")
        else:
            if trace_out:
                print("note: --trace applies to the packet engine only",
                      file=sys.stderr)
            registry = MetricsRegistry()
            flows = ([FluidFlow(pair[0], pair[1])] if pair is not None
                     else [])
            fluid = hypatia.build_fluid_simulation(
                flows, mode=args.engine, metrics=registry,
                workload=workload, kernel=args.kernel)
            result = fluid.run(args.duration, step_s=args.step)
            report = result.report(registry=registry)
    finally:
        if profiler is not None:
            spans.uninstall()

    report.provenance = {**(report.provenance or {}), **provenance}
    print(report.describe())
    if getattr(args, "output", None):
        report.to_json(args.output)
        print(f"wrote report to {args.output}")
    if getattr(args, "metrics_out", None):
        registry.to_json(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if profiler is not None:
        events = profiler.write_chrome_trace(
            profile_out, metadata={"provenance": report.provenance})
        print(f"wrote {events} span events to {profile_out} "
              f"(open at https://ui.perfetto.dev)")
    return 0


def _cmd_profile(args) -> int:
    """``repro profile`` is ``repro report`` with the profiler on and the
    Chrome trace as the primary output."""
    args.profile_out = args.output
    args.output = args.report_out
    return _cmd_report(args)


def _cmd_bench_report(args) -> int:
    from .obs.bench import format_reports, scan_results_dir
    reports = scan_results_dir(args.results_dir, threshold=args.threshold,
                               metric=args.metric)
    if not reports:
        print(f"no BENCH_*.json trajectories under {args.results_dir!r}")
        return 0
    for line in format_reports(reports, threshold=args.threshold):
        print(line)
    return 1 if any(report.regressed for report in reports) else 0


def _build_service(args):
    """Build a LiveSimulationService from serve/checkpoint CLI args."""
    from .core.hypatia import Hypatia
    from .service import LiveSimulationService
    from .sweep.spec import NetworkSpec
    if args.shell is None:
        raise KeyError(f"{args.command} needs a shell name (or a "
                       f"checkpoint via --connect/--inspect/--resume)")
    faults = _load_faults(args.faults)
    workload = _load_workload(args.workload)
    hypatia = Hypatia.from_shell_name(args.shell, num_cities=args.cities,
                                      faults=faults)
    spec = NetworkSpec.from_network(hypatia.network)
    if workload is not None:
        spec = spec.with_workload(workload)
    return LiveSimulationService(
        spec, engine=args.engine, kernel=args.kernel,
        horizon_s=args.horizon, epoch_s=args.epoch,
        meta={"shell": args.shell})


def _cmd_serve(args) -> int:
    import asyncio

    from .service import LiveSimulationService, serve_forever
    if args.resume is not None:
        service = LiveSimulationService.resume(args.resume)
        print(f"resumed {args.resume}: {service.engine} at "
              f"t={service.clock_s:.1f}s of {service.horizon_s:.1f}s")
    else:
        service = _build_service(args)

    def ready(server) -> None:
        print(f"serving {service.engine} simulation on "
              f"{server.host}:{server.port} "
              f"(epoch {service.epoch_s:g}s, pace {args.pace:g})",
              flush=True)

    try:
        asyncio.run(serve_forever(service, host=args.host, port=args.port,
                                  pace=args.pace, ready_callback=ready))
    except KeyboardInterrupt:
        pass
    print(f"stopped at t={service.clock_s:.1f}s")
    return 0


def _cmd_checkpoint(args) -> int:
    import json

    if args.inspect is not None:
        from .service import read_checkpoint_header
        header = read_checkpoint_header(args.inspect)
        print(json.dumps(header, indent=1, sort_keys=True))
        return 0
    if args.output is None:
        raise KeyError("checkpoint needs -o/--output (or --inspect)")
    if args.connect is not None:
        from .service import ServiceClient
        host, _, port = args.connect.rpartition(":")
        with ServiceClient(host or "127.0.0.1", int(port)) as client:
            if args.advance > 0:
                client.advance(args.advance)
            header = client.checkpoint(args.output)
        print(f"checkpointed the live service at t={header['time_s']:.1f}s "
              f"to {args.output}")
        return 0
    service = _build_service(args)
    if args.at > 0.0:
        service.advance_to(args.at)
    header = service.save(args.output)
    print(f"checkpointed {service.engine} run at "
          f"t={header['time_s']:.1f}s of {service.horizon_s:.1f}s "
          f"to {args.output} (spec {header['spec_hash'][:12]})")
    return 0


def _cmd_resume(args) -> int:
    from .service import LiveSimulationService
    service = LiveSimulationService.resume(args.checkpoint)
    print(f"resumed {args.checkpoint}: {service.engine} at "
          f"t={service.clock_s:.1f}s of {service.horizon_s:.1f}s")
    service.run_to_horizon()
    report = service.report()
    print(report.describe())
    if args.output:
        report.to_json(args.output)
        print(f"wrote report to {args.output}")
    if args.metrics_out:
        service.metrics.to_json(args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if args.checkpoint_out:
        service.save(args.checkpoint_out)
        print(f"wrote horizon checkpoint to {args.checkpoint_out}")
    return 0


def _cmd_faults(args) -> int:
    from .constellations.definitions import shell_by_name
    from .faults import FaultSchedule
    shell = shell_by_name(args.shell)
    schedule = FaultSchedule.synthetic(
        num_satellites=shell.total_satellites,
        num_stations=args.cities,
        duration_s=args.duration,
        seed=args.seed,
        satellite_outage_probability=args.sat_outage_prob,
        gsl_cut_probability=args.gsl_cut_prob,
        loss_probability=args.loss_prob,
        mean_duration_s=args.mean_duration,
    )
    schedule.to_json(args.output)
    by_kind: dict = {}
    for event in schedule:
        by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
    print(f"wrote {schedule.num_events} fault events (seed {args.seed}) "
          f"to {args.output}")
    for kind, count in sorted(by_kind.items()):
        print(f"  {kind}: {count}")
    return 0


def _cmd_traffic(args) -> int:
    from .traffic import FlowArrivalProcess, TrafficMatrix
    if args.model == "gravity":
        matrix = TrafficMatrix.gravity(
            count=args.cities,
            total_offered_bps=args.total_mbps * 1e6,
            distance_exponent=args.distance_exponent)
    else:
        matrix = TrafficMatrix.permutation(
            num_stations=args.cities, rate_bps=args.pair_mbps * 1e6)
    process = FlowArrivalProcess(
        matrix, mean_size_bytes=args.mean_size,
        size_distribution=args.size_dist, seed=args.seed)
    schedule = process.generate(args.duration)
    schedule.to_json(args.output)
    print(f"wrote {schedule.num_flows} flow arrivals over "
          f"{args.duration:.0f}s ({matrix.kind} matrix, "
          f"{len(schedule.pairs())} active pairs, seed {args.seed}) "
          f"to {args.output}")
    print(f"  offered load: "
          f"{schedule.offered_load_bps(args.duration) / 1e6:.2f} Mbit/s "
          f"(matrix target {matrix.total_offered_bps / 1e6:.2f})")
    if args.matrix_out:
        matrix.to_json(args.matrix_out)
        print(f"wrote demand matrix to {args.matrix_out}")
    return 0


def _cmd_cc_lab(args) -> int:
    from .cc.api import controller_names
    from .cc.lab import lab_network, run_lab
    if args.controllers is not None:
        controllers = [name.strip()
                       for name in args.controllers.split(",") if name.strip()]
        known = controller_names()
        for name in controllers:
            if name not in known:
                raise KeyError(f"unknown controller {name!r}; "
                               f"registered: {', '.join(known)}")
    else:
        controllers = None
    try:
        base = lab_network(args.shell)
    except ValueError as error:
        raise KeyError(str(error))
    report = run_lab(controllers=controllers, seed=args.seed,
                     duration_s=args.duration, workers=args.workers,
                     learned=args.learned, base=base)
    for line in report.format_lines():
        print(line)
    if args.output:
        report.to_json(args.output)
        print(f"wrote cell-by-cell report to {args.output}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "rtt": _cmd_rtt,
    "sweep": _cmd_sweep,
    "tles": _cmd_tles,
    "czml": _cmd_czml,
    "sky": _cmd_sky,
    "report": _cmd_report,
    "profile": _cmd_profile,
    "bench-report": _cmd_bench_report,
    "serve": _cmd_serve,
    "checkpoint": _cmd_checkpoint,
    "resume": _cmd_resume,
    "faults": _cmd_faults,
    "traffic": _cmd_traffic,
    "cc-lab": _cmd_cc_lab,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except RuntimeError as error:
        from .service import CheckpointError, ServiceError
        from .service.client import ServiceClientError
        if isinstance(error, (CheckpointError, ServiceError,
                              ServiceClientError)):
            print(f"error: {error}", file=sys.stderr)
            return 2
        raise
