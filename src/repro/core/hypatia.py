"""The Hypatia facade: one object wiring every subsystem together.

This is the library's front door.  It assembles a constellation, ground
stations, ISL/GSL connectivity, and exposes the three analysis surfaces the
paper's experiments run on:

* **geometry**: snapshots, pair RTT/path timelines (`compute_timelines`);
* **packet simulation**: a ready-to-run :class:`PacketSimulator`
  (`build_packet_simulator`) to attach ping/TCP/UDP applications to;
* **fluid simulation**: constellation-wide max-min or AIMD traffic
  (`build_fluid_simulation`).

Example:
    >>> from repro import Hypatia
    >>> hypatia = Hypatia.from_shell_name("K1", num_cities=100)
    >>> timelines = hypatia.compute_timelines(
    ...     [hypatia.pair("Manila", "Dalian")], duration_s=10.0, step_s=1.0)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..constellations.definitions import ALL_SHELLS, shell_by_name
from ..fluid.aimd import AimdFluidSimulation
from ..fluid.engine import FluidFlow, FluidSimulation
from ..ground.stations import GroundStation, ground_stations_from_cities
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..orbits.shell import Shell
from ..routing.engine import RoutingEngine
from ..simulation.simulator import LinkConfig, PacketSimulator
from ..topology.dynamic_state import DynamicState, PairTimeline
from ..topology.gsl import GslPolicy
from ..topology.isl import no_isls, plus_grid_isls
from ..topology.network import LeoNetwork, TopologySnapshot
from .workloads import gid_by_name

__all__ = ["Hypatia"]

#: Default minimum elevation per operator (paper §5.1).
_DEFAULT_MIN_ELEVATION = {spec.first_shell().name: spec.min_elevation_deg
                          for spec in ALL_SHELLS.values()}


class Hypatia:
    """A configured LEO network study: constellation + ground segment.

    Args:
        constellation: The satellites.
        ground_stations: The ground segment.
        min_elevation_deg: Minimum GS elevation angle.
        use_isls: True for +Grid ISLs (default), False for bent-pipe
            (Appendix A) connectivity through GS relays only.
        gsl_policy: GS satellite-selection policy.
        weather: Optional rain model (folded into the fault schedule).
        faults: Optional :class:`repro.faults.FaultSchedule` — dynamic
            outages/cuts/loss, applied at every topology snapshot and
            packet transmission.
    """

    def __init__(self, constellation: Constellation,
                 ground_stations: Sequence[GroundStation],
                 min_elevation_deg: float,
                 use_isls: bool = True,
                 gsl_policy: GslPolicy = GslPolicy.ALL_VISIBLE,
                 weather=None, faults=None) -> None:
        isl_builder = plus_grid_isls if use_isls else no_isls
        self.network = LeoNetwork(
            constellation, ground_stations,
            min_elevation_deg=min_elevation_deg,
            isl_builder=isl_builder,
            gsl_policy=gsl_policy,
            weather=weather,
            faults=faults,
        )
        self.routing = RoutingEngine(self.network)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_shell_name(cls, shell_name: str, num_cities: int = 100,
                        min_elevation_deg: Optional[float] = None,
                        use_isls: bool = True,
                        extra_stations: Sequence[GroundStation] = (),
                        gsl_policy: GslPolicy = GslPolicy.ALL_VISIBLE,
                        epoch_offset_s: float = 0.0,
                        weather=None, faults=None,
                        ) -> "Hypatia":
        """Build a study for one Table 1 shell with city ground stations.

        Args:
            shell_name: "S1".."S5", "K1".."K3", "T1"/"T2".
            num_cities: Top-N most populous cities as GSes.
            min_elevation_deg: Override; defaults to the operator's filing
                value (Starlink 25, Kuiper 30, Telesat 10).
            use_isls: +Grid ISLs vs bent-pipe.
            extra_stations: Appended after the city stations (e.g. a relay
                grid); their gids are rewritten to stay consecutive.
            gsl_policy: GS satellite-selection policy.
            epoch_offset_s: Advance the constellation by this much motion
                at simulation time 0 (windows experiments around specific
                connectivity events).
            weather: Optional rain model.
            faults: Optional :class:`repro.faults.FaultSchedule`.
        """
        shell = shell_by_name(shell_name)
        if min_elevation_deg is None:
            min_elevation_deg = _default_elevation_for(shell)
        stations = ground_stations_from_cities(count=num_cities)
        for station in extra_stations:
            stations.append(GroundStation(
                gid=len(stations), name=station.name,
                position=station.position, is_relay=station.is_relay))
        return cls(Constellation([shell], epoch_offset_s=epoch_offset_s),
                   stations,
                   min_elevation_deg=min_elevation_deg,
                   use_isls=use_isls, gsl_policy=gsl_policy,
                   weather=weather, faults=faults)

    # ------------------------------------------------------------------
    # Convenience lookups
    # ------------------------------------------------------------------

    @property
    def ground_stations(self) -> List[GroundStation]:
        return self.network.ground_stations

    @property
    def constellation(self) -> Constellation:
        return self.network.constellation

    def gid(self, city_name: str) -> int:
        """gid of the GS at a named city."""
        return gid_by_name(self.network.ground_stations, city_name)

    def pair(self, src_name: str, dst_name: str) -> Tuple[int, int]:
        """(src_gid, dst_gid) for two named cities."""
        return self.gid(src_name), self.gid(dst_name)

    def snapshot(self, time_s: float) -> TopologySnapshot:
        """The topology frozen at ``time_s``."""
        return self.network.snapshot(time_s)

    # ------------------------------------------------------------------
    # Analysis surfaces
    # ------------------------------------------------------------------

    def compute_timelines(self, pairs: Sequence[Tuple[int, int]],
                          duration_s: float, step_s: float = 0.1,
                          workers: Optional[int] = None,
                          metrics: Optional["MetricsRegistry"] = None,
                          routing: str = "incremental",
                          ) -> Dict[Tuple[int, int], PairTimeline]:
        """Shortest-path RTT/path timelines for the given pairs.

        Args:
            pairs: (src_gid, dst_gid) pairs to track.
            duration_s: How long to simulate.
            step_s: Forwarding-state recomputation interval.
            workers: Snapshot-sweep worker processes (``None``/1 serial,
                0 = all cores); parallel results are bit-identical to
                serial — see :mod:`repro.sweep`.
            metrics: Optional registry receiving per-worker ``sweep.*``
                timing series.
            routing: ``"incremental"`` (default: repair forwarding state
                between consecutive snapshots, falling back to full
                recompute on large topology deltas) or ``"scratch"``
                (always recompute) — bit-identical results either way;
                see :mod:`repro.routing.incremental`.
        """
        state = DynamicState(self.network, pairs, duration_s=duration_s,
                             step_s=step_s, routing=routing)
        return state.compute(workers=workers, metrics=metrics)

    def build_packet_simulator(self, link_config: Optional[LinkConfig] = None,
                               forwarding_interval_s: float = 0.1,
                               tracer: Optional["Tracer"] = None,
                               ) -> PacketSimulator:
        """A packet-level simulator over this network.

        Args:
            link_config: Device rates/queues (paper defaults if omitted).
            forwarding_interval_s: Forwarding-state refresh period.
            tracer: Optional :class:`repro.obs.Tracer` receiving the
                run's structured trace events.
        """
        return PacketSimulator(self.network, link_config=link_config,
                               forwarding_interval_s=forwarding_interval_s,
                               tracer=tracer)

    def build_fluid_simulation(self, flows: Sequence[FluidFlow] = (),
                               link_capacity_bps: float = 10_000_000.0,
                               mode: str = "aimd",
                               freeze_topology_at_s: Optional[float] = None,
                               metrics: Optional["MetricsRegistry"] = None,
                               workload=None,
                               kernel: str = "vectorized"):
        """A fluid traffic engine over this network.

        Args:
            flows: Long-running flows (may be empty when ``workload``
                supplies the traffic).
            link_capacity_bps: Uniform device capacity.
            mode: ``"aimd"`` (TCP-like dynamics, default) or ``"maxmin"``
                (instant fair-share equilibrium).
            freeze_topology_at_s: Static-network baseline time, if any.
            metrics: Optional registry receiving per-snapshot series.
            workload: Optional :class:`repro.traffic.WorkloadSchedule`;
                its finite flows are appended after ``flows`` and the
                engine re-solves on every arrival/completion.
            kernel: Max-min allocation kernel for ``mode="maxmin"`` —
                ``"vectorized"`` (default, array waterfilling) or
                ``"reference"`` (pure-Python oracle).  Ignored by the
                AIMD engine.
        """
        flows = list(flows)
        if workload is not None:
            flows.extend(workload.as_fluid_flows())
        if mode == "aimd":
            return AimdFluidSimulation(
                self.network, flows, link_capacity_bps=link_capacity_bps,
                freeze_topology_at_s=freeze_topology_at_s, metrics=metrics)
        if mode == "maxmin":
            return FluidSimulation(
                self.network, flows, link_capacity_bps=link_capacity_bps,
                freeze_topology_at_s=freeze_topology_at_s, metrics=metrics,
                kernel=kernel)
        raise ValueError(f"unknown fluid mode {mode!r}; "
                         f"use 'aimd' or 'maxmin'")


def _default_elevation_for(shell: Shell) -> float:
    """The operator's filing minimum elevation for a shell's family."""
    prefix = shell.name[0]
    by_prefix = {"S": "Starlink", "K": "Kuiper", "T": "Telesat"}
    operator = by_prefix.get(prefix)
    if operator is None:
        raise ValueError(
            f"cannot infer operator from shell {shell.name!r}; pass "
            f"min_elevation_deg explicitly")
    return ALL_SHELLS[operator].min_elevation_deg
