"""Framework core: the Hypatia facade and workload builders."""

from .hypatia import Hypatia
from .workloads import (
    PAPER_FOCUS_PAIRS,
    gid_by_name,
    pairs_by_name,
    random_permutation_pairs,
)

__all__ = [
    "Hypatia",
    "PAPER_FOCUS_PAIRS",
    "gid_by_name",
    "pairs_by_name",
    "random_permutation_pairs",
]
