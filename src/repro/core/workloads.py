"""Workload builders: the traffic patterns the paper's experiments use.

* the random permutation traffic matrix over the top-100 cities (paper
  §3.4 and §5.4);
* the named city pairs studied in depth (§4: Rio de Janeiro-St. Petersburg,
  Manila-Dalian, Istanbul-Nairobi; §6: Paris-Luanda; Appendix A:
  Paris-Moscow).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..ground.stations import GroundStation

__all__ = [
    "PAPER_FOCUS_PAIRS",
    "random_permutation_pairs",
    "pairs_by_name",
    "gid_by_name",
]

#: The GS pairs the paper examines individually (section -> city names).
PAPER_FOCUS_PAIRS: Dict[str, Tuple[str, str]] = {
    "rio_stpetersburg": ("Rio de Janeiro", "Saint Petersburg"),
    "manila_dalian": ("Manila", "Dalian"),
    "istanbul_nairobi": ("Istanbul", "Nairobi"),
    "paris_luanda": ("Paris", "Luanda"),
    "paris_moscow": ("Paris", "Moscow"),
    "chicago_zhengzhou": ("Chicago", "Zhengzhou"),
}


def random_permutation_pairs(num_stations: int,
                             seed: int = 42) -> List[Tuple[int, int]]:
    """A fixed-point-free random permutation traffic matrix.

    Every GS sends to exactly one other GS and receives from exactly one
    (paper §3.4: "the traffic is a random permutation between the GSes").

    Args:
        num_stations: Number of ground stations (gids 0..N-1).
        seed: RNG seed; the default yields the repository's canonical
            matrix, keeping every benchmark's workload identical.
    """
    if num_stations < 2:
        raise ValueError("need at least two stations to form pairs")
    rng = random.Random(seed)
    gids = list(range(num_stations))
    destinations = gids[:]
    # Re-shuffle until fixed-point free (a few tries at most).
    for _ in range(10_000):
        rng.shuffle(destinations)
        if all(src != dst for src, dst in zip(gids, destinations)):
            return list(zip(gids, destinations))
    raise RuntimeError("could not find a derangement (should not happen)")


def gid_by_name(stations: Sequence[GroundStation], name: str) -> int:
    """The gid of the station with the given name.

    Raises:
        KeyError: If no station matches.
    """
    for station in stations:
        if station.name == name:
            return station.gid
    raise KeyError(f"no ground station named {name!r}")


def pairs_by_name(stations: Sequence[GroundStation],
                  named_pairs: Sequence[Tuple[str, str]]
                  ) -> List[Tuple[int, int]]:
    """Translate (source-name, destination-name) pairs into gid pairs."""
    return [
        (gid_by_name(stations, src), gid_by_name(stations, dst))
        for src, dst in named_pairs
    ]
