"""Two-line element (TLE) generation and parsing.

Paper §3.1: Hypatia generates TLEs — the space-industry standard trajectory
format — for satellites that are not yet in orbit, from the Keplerian
elements disclosed in FCC/ITU filings, and validates the round-trip with an
independent library (pyephem).  This module reproduces that utility with a
from-scratch generator *and* a from-scratch parser, so the round-trip can be
validated without external dependencies.

TLE format reference: NASA's "Definition of Two-line Element Set Coordinate
System" [41].  The fields we cannot know for an unlaunched satellite (drag
term, ballistic coefficient, revolution count ...) are written as zeros, the
convention the original Hypatia follows as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..geo.constants import EARTH_MU_M3_PER_S2
from .kepler import KeplerianElements, wrap_angle

__all__ = [
    "TLE",
    "tle_checksum",
    "generate_tle",
    "parse_tle",
    "write_tle_file",
    "read_tle_file",
    "TLEFormatError",
]

TWO_PI = 2.0 * math.pi


class TLEFormatError(ValueError):
    """Raised when a TLE line fails structural or checksum validation."""


@dataclass(frozen=True)
class TLE:
    """A parsed or generated two-line element set.

    Attributes:
        name: Line 0 (satellite name), up to 24 characters.
        line1: The first data line (69 characters, checksummed).
        line2: The second data line (69 characters, checksummed).
    """

    name: str
    line1: str
    line2: str

    def as_lines(self) -> List[str]:
        """The three text lines of the element set."""
        return [self.name, self.line1, self.line2]

    def __str__(self) -> str:
        return "\n".join(self.as_lines())


def tle_checksum(line: str) -> int:
    """The TLE checksum of the first 68 characters of ``line``.

    Digits count their value, ``-`` counts 1, everything else 0; the result
    is taken modulo 10.
    """
    total = 0
    for char in line[:68]:
        if char.isdigit():
            total += int(char)
        elif char == "-":
            total += 1
    return total % 10


def _format_epoch(epoch_year: int, epoch_day: float) -> str:
    """Format the two-digit year + fractional day-of-year epoch field."""
    if not 1957 <= epoch_year <= 2056:
        raise ValueError(f"epoch year out of TLE range: {epoch_year}")
    if not 1.0 <= epoch_day < 367.0:
        raise ValueError(f"epoch day must be in [1, 367), got {epoch_day}")
    return f"{epoch_year % 100:02d}{epoch_day:012.8f}"


def generate_tle(elements: KeplerianElements, name: str,
                 catalog_number: int = 0, epoch_year: int = 2000,
                 epoch_day: float = 1.0,
                 international_designator: str = "00000A") -> TLE:
    """Render Keplerian elements as a standards-compliant TLE.

    Args:
        elements: Osculating elements at the epoch.
        name: Satellite name for line 0 (e.g. ``"Kuiper-630 12"``).
        catalog_number: NORAD catalog number; synthetic constellations use a
            sequential counter.
        epoch_year: Four-digit epoch year.
        epoch_day: Fractional day of year of the epoch (1-based).
        international_designator: Launch designator field (8 chars max).

    Returns:
        A :class:`TLE` whose two data lines carry valid checksums.
    """
    if not 0 <= catalog_number <= 99_999:
        raise ValueError(f"catalog number must fit 5 digits: {catalog_number}")

    epoch_field = _format_epoch(epoch_year, epoch_day)
    # Unknown-for-unlaunched fields: mean-motion derivatives and B* are zero.
    line1 = (
        f"1 {catalog_number:05d}U {international_designator:<8s} "
        f"{epoch_field}  .00000000  00000-0  00000-0 0    0"
    )
    if len(line1) != 68:
        raise AssertionError(f"TLE line 1 malformed ({len(line1)} chars)")
    line1 += str(tle_checksum(line1))

    inclination_deg = math.degrees(elements.inclination_rad)
    raan_deg = math.degrees(elements.raan_rad)
    argp_deg = math.degrees(elements.arg_periapsis_rad)
    mean_anomaly_deg = math.degrees(elements.mean_anomaly_rad)
    # Eccentricity field: seven digits, implied leading decimal point.
    ecc_field = f"{elements.eccentricity:.7f}"[2:]
    mean_motion = elements.mean_motion_rev_per_day
    if mean_motion >= 100.0:
        raise ValueError(
            f"mean motion {mean_motion:.4f} rev/day does not fit the TLE field")
    line2 = (
        f"2 {catalog_number:05d} {inclination_deg:8.4f} {raan_deg:8.4f} "
        f"{ecc_field} {argp_deg:8.4f} {mean_anomaly_deg:8.4f} "
        f"{mean_motion:11.8f}    0"
    )
    if len(line2) != 68:
        raise AssertionError(f"TLE line 2 malformed ({len(line2)} chars)")
    line2 += str(tle_checksum(line2))

    return TLE(name=name[:24], line1=line1, line2=line2)


def _validate_line(line: str, expected_first_char: str) -> None:
    """Check length, line number, and checksum of one TLE data line."""
    if len(line) != 69:
        raise TLEFormatError(
            f"TLE line must be 69 characters, got {len(line)}: {line!r}")
    if line[0] != expected_first_char:
        raise TLEFormatError(
            f"expected line {expected_first_char}, got {line[0]!r}")
    expected = tle_checksum(line)
    actual = line[68]
    if not actual.isdigit() or int(actual) != expected:
        raise TLEFormatError(
            f"checksum mismatch: computed {expected}, line carries {actual!r}")


def parse_tle(name: str, line1: str, line2: str
              ) -> Tuple[KeplerianElements, int, Tuple[int, float]]:
    """Parse a TLE back into Keplerian elements.

    Returns:
        ``(elements, catalog_number, (epoch_year, epoch_day))``.

    Raises:
        TLEFormatError: On malformed lines or checksum failure.
    """
    _validate_line(line1, "1")
    _validate_line(line2, "2")

    catalog_1 = line1[2:7].strip()
    catalog_2 = line2[2:7].strip()
    if catalog_1 != catalog_2:
        raise TLEFormatError(
            f"catalog numbers disagree between lines: {catalog_1} vs {catalog_2}")
    catalog_number = int(catalog_1)

    epoch_raw = line1[18:32]
    year_two_digit = int(epoch_raw[:2])
    epoch_year = 2000 + year_two_digit if year_two_digit < 57 else 1900 + year_two_digit
    epoch_day = float(epoch_raw[2:])

    inclination_deg = float(line2[8:16])
    raan_deg = float(line2[17:25])
    eccentricity = float("0." + line2[26:33].strip())
    argp_deg = float(line2[34:42])
    mean_anomaly_deg = float(line2[43:51])
    mean_motion_rev_per_day = float(line2[52:63])
    if mean_motion_rev_per_day <= 0.0:
        raise TLEFormatError("mean motion must be positive")

    # Invert Kepler III from the mean motion back to the semi-major axis.
    mean_motion_rad_s = mean_motion_rev_per_day * TWO_PI / 86_400.0
    semi_major_axis_m = (EARTH_MU_M3_PER_S2 / mean_motion_rad_s ** 2) ** (1.0 / 3.0)

    elements = KeplerianElements(
        semi_major_axis_m=semi_major_axis_m,
        eccentricity=eccentricity,
        inclination_rad=math.radians(inclination_deg),
        raan_rad=wrap_angle(math.radians(raan_deg)),
        arg_periapsis_rad=wrap_angle(math.radians(argp_deg)),
        mean_anomaly_rad=wrap_angle(math.radians(mean_anomaly_deg)),
    )
    _ = name  # line 0 carries no orbital information
    return elements, catalog_number, (epoch_year, epoch_day)


def write_tle_file(tles, path) -> None:
    """Write element sets in the standard 3-line (3LE) file format.

    Args:
        tles: The element sets, written in order.
        path: Output file path.
    """
    with open(path, "w") as handle:
        for tle in tles:
            handle.write(tle.name + "\n")
            handle.write(tle.line1 + "\n")
            handle.write(tle.line2 + "\n")


def read_tle_file(path) -> List[TLE]:
    """Read a 3-line-element file back into :class:`TLE` objects.

    Every element set's checksums and structure are validated on read.

    Raises:
        TLEFormatError: On truncated groups or invalid lines.
    """
    with open(path) as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if len(lines) % 3 != 0:
        raise TLEFormatError(
            f"TLE file must hold 3-line groups; got {len(lines)} lines")
    tles: List[TLE] = []
    for i in range(0, len(lines), 3):
        name, line1, line2 = lines[i:i + 3]
        _validate_line(line1, "1")
        _validate_line(line2, "2")
        tles.append(TLE(name=name, line1=line1, line2=line2))
    return tles
