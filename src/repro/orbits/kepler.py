"""Keplerian orbital elements and anomaly conversions.

The constellations in the paper's Table 1 are all circular-orbit shells, but
the machinery here supports general elliptical orbits so that TLE round-trips
and perturbation-free propagation are exact for any bound orbit.

Conventions:

* Angles are radians internally; constructors accept degrees via the
  ``*_deg`` keyword helpers.
* The epoch is the simulation's t = 0; elements are osculating at the epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..geo.constants import EARTH_MU_M3_PER_S2, WGS72

__all__ = [
    "KeplerianElements",
    "orbital_period_s",
    "mean_motion_rad_per_s",
    "orbital_velocity_m_per_s",
    "semi_major_axis_from_period",
    "mean_to_eccentric_anomaly",
    "eccentric_to_true_anomaly",
    "true_to_eccentric_anomaly",
    "eccentric_to_mean_anomaly",
    "mean_to_true_anomaly",
    "wrap_angle",
]

TWO_PI = 2.0 * math.pi


def wrap_angle(angle_rad: float) -> float:
    """Wrap an angle to [0, 2*pi)."""
    wrapped = math.fmod(angle_rad, TWO_PI)
    if wrapped < 0.0:
        wrapped += TWO_PI
    # Tiny negative inputs round to exactly 2*pi above; keep the
    # half-open interval.
    if wrapped >= TWO_PI:
        wrapped = 0.0
    return wrapped


@dataclass(frozen=True)
class KeplerianElements:
    """Classical orbital elements of an Earth-orbiting object.

    Attributes:
        semi_major_axis_m: Semi-major axis ``a`` (meters, measured from the
            Earth's center).  For the circular shells of Table 1 this is
            Earth radius + altitude.
        eccentricity: Orbit eccentricity ``e`` in [0, 1).
        inclination_rad: Inclination ``i`` of the orbital plane against the
            equatorial plane, in [0, pi].
        raan_rad: Right ascension of the ascending node (capital Omega).
        arg_periapsis_rad: Argument of periapsis (small omega).  Undefined
            for circular orbits; by convention zero there.
        mean_anomaly_rad: Mean anomaly ``M`` at the epoch.
        mu_m3_per_s2: Gravitational parameter; WGS72 Earth by default.
    """

    semi_major_axis_m: float
    eccentricity: float = 0.0
    inclination_rad: float = 0.0
    raan_rad: float = 0.0
    arg_periapsis_rad: float = 0.0
    mean_anomaly_rad: float = 0.0
    mu_m3_per_s2: float = EARTH_MU_M3_PER_S2

    def __post_init__(self) -> None:
        if self.semi_major_axis_m <= 0.0:
            raise ValueError(
                f"semi-major axis must be positive, got {self.semi_major_axis_m}")
        if not 0.0 <= self.eccentricity < 1.0:
            raise ValueError(
                f"eccentricity must be in [0, 1), got {self.eccentricity}")
        if not 0.0 <= self.inclination_rad <= math.pi:
            raise ValueError(
                f"inclination must be in [0, pi], got {self.inclination_rad}")

    @classmethod
    def circular(cls, altitude_m: float, inclination_deg: float,
                 raan_deg: float = 0.0, mean_anomaly_deg: float = 0.0,
                 earth_radius_m: float = WGS72.semi_major_axis_m,
                 ) -> "KeplerianElements":
        """Build elements for a circular orbit from filing-style parameters.

        Args:
            altitude_m: Height above the (equatorial) Earth surface — the
                ``h`` column of paper Table 1.
            inclination_deg: Inclination in degrees — the ``i`` column.
            raan_deg: Ascending-node longitude in degrees; orbits of a shell
                spread this uniformly over the Equator.
            mean_anomaly_deg: Position of the satellite along the orbit.
            earth_radius_m: Equatorial radius to add the altitude to.
        """
        return cls(
            semi_major_axis_m=earth_radius_m + altitude_m,
            eccentricity=0.0,
            inclination_rad=math.radians(inclination_deg),
            raan_rad=wrap_angle(math.radians(raan_deg)),
            arg_periapsis_rad=0.0,
            mean_anomaly_rad=wrap_angle(math.radians(mean_anomaly_deg)),
        )

    @property
    def period_s(self) -> float:
        """Orbital period via Kepler's third law (seconds)."""
        return orbital_period_s(self.semi_major_axis_m, self.mu_m3_per_s2)

    @property
    def mean_motion_rad_per_s(self) -> float:
        """Mean motion ``n = sqrt(mu / a^3)`` (rad/s)."""
        return mean_motion_rad_per_s(self.semi_major_axis_m, self.mu_m3_per_s2)

    @property
    def mean_motion_rev_per_day(self) -> float:
        """Mean motion in revolutions per day — the TLE representation."""
        return self.mean_motion_rad_per_s * 86_400.0 / TWO_PI

    def mean_anomaly_at(self, time_s: float) -> float:
        """Mean anomaly after ``time_s`` seconds of unperturbed motion."""
        return wrap_angle(self.mean_anomaly_rad
                          + self.mean_motion_rad_per_s * time_s)

    def with_mean_anomaly(self, mean_anomaly_rad: float) -> "KeplerianElements":
        """A copy of these elements with a different mean anomaly."""
        return replace(self, mean_anomaly_rad=wrap_angle(mean_anomaly_rad))


def orbital_period_s(semi_major_axis_m: float,
                     mu_m3_per_s2: float = EARTH_MU_M3_PER_S2) -> float:
    """Kepler's third law: ``T = 2*pi * sqrt(a^3 / mu)``."""
    if semi_major_axis_m <= 0.0:
        raise ValueError("semi-major axis must be positive")
    return TWO_PI * math.sqrt(semi_major_axis_m ** 3 / mu_m3_per_s2)


def mean_motion_rad_per_s(semi_major_axis_m: float,
                          mu_m3_per_s2: float = EARTH_MU_M3_PER_S2) -> float:
    """Mean motion ``n = sqrt(mu / a^3)`` (rad/s)."""
    if semi_major_axis_m <= 0.0:
        raise ValueError("semi-major axis must be positive")
    return math.sqrt(mu_m3_per_s2 / semi_major_axis_m ** 3)


def orbital_velocity_m_per_s(semi_major_axis_m: float,
                             mu_m3_per_s2: float = EARTH_MU_M3_PER_S2) -> float:
    """Circular orbital velocity ``v = sqrt(mu / a)`` (m/s).

    At h = 550 km this is ~7.6 km/s, i.e. more than 27,000 km/h — the paper's
    headline satellite speed (§2.3).
    """
    if semi_major_axis_m <= 0.0:
        raise ValueError("semi-major axis must be positive")
    return math.sqrt(mu_m3_per_s2 / semi_major_axis_m)


def semi_major_axis_from_period(period_s: float,
                                mu_m3_per_s2: float = EARTH_MU_M3_PER_S2
                                ) -> float:
    """Invert Kepler's third law: the ``a`` giving orbital period ``T``."""
    if period_s <= 0.0:
        raise ValueError("period must be positive")
    return (mu_m3_per_s2 * (period_s / TWO_PI) ** 2) ** (1.0 / 3.0)


def mean_to_eccentric_anomaly(mean_anomaly_rad: float, eccentricity: float,
                              tolerance: float = 1e-12,
                              max_iterations: int = 50) -> float:
    """Solve Kepler's equation ``M = E - e*sin(E)`` for ``E``.

    Uses Newton-Raphson with the standard starting guess; converges
    quadratically for all e < 1.  For circular orbits (e = 0) this is the
    identity.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ValueError(f"eccentricity must be in [0, 1), got {eccentricity}")
    m = wrap_angle(mean_anomaly_rad)
    if eccentricity == 0.0:
        return m
    # A good initial guess: E ~ M for small e, E ~ pi for large e.
    e_anom = m if eccentricity < 0.8 else math.pi
    for _ in range(max_iterations):
        f = e_anom - eccentricity * math.sin(e_anom) - m
        f_prime = 1.0 - eccentricity * math.cos(e_anom)
        delta = f / f_prime
        e_anom -= delta
        if abs(delta) < tolerance:
            break
    return wrap_angle(e_anom)


def eccentric_to_true_anomaly(eccentric_anomaly_rad: float,
                              eccentricity: float) -> float:
    """True anomaly ``nu`` from the eccentric anomaly ``E``."""
    if eccentricity == 0.0:
        return wrap_angle(eccentric_anomaly_rad)
    half_e = eccentric_anomaly_rad / 2.0
    nu = 2.0 * math.atan2(
        math.sqrt(1.0 + eccentricity) * math.sin(half_e),
        math.sqrt(1.0 - eccentricity) * math.cos(half_e),
    )
    return wrap_angle(nu)


def true_to_eccentric_anomaly(true_anomaly_rad: float,
                              eccentricity: float) -> float:
    """Eccentric anomaly ``E`` from the true anomaly ``nu``."""
    if eccentricity == 0.0:
        return wrap_angle(true_anomaly_rad)
    half_nu = true_anomaly_rad / 2.0
    e_anom = 2.0 * math.atan2(
        math.sqrt(1.0 - eccentricity) * math.sin(half_nu),
        math.sqrt(1.0 + eccentricity) * math.cos(half_nu),
    )
    return wrap_angle(e_anom)


def eccentric_to_mean_anomaly(eccentric_anomaly_rad: float,
                              eccentricity: float) -> float:
    """Kepler's equation forward: ``M = E - e*sin(E)``."""
    return wrap_angle(eccentric_anomaly_rad
                      - eccentricity * math.sin(eccentric_anomaly_rad))


def mean_to_true_anomaly(mean_anomaly_rad: float, eccentricity: float) -> float:
    """Compose the mean -> eccentric -> true anomaly chain."""
    e_anom = mean_to_eccentric_anomaly(mean_anomaly_rad, eccentricity)
    return eccentric_to_true_anomaly(e_anom, eccentricity)
