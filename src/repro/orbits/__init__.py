"""Orbital mechanics substrate: Keplerian elements, propagation, TLEs, shells."""

from .kepler import (
    KeplerianElements,
    eccentric_to_mean_anomaly,
    eccentric_to_true_anomaly,
    mean_motion_rad_per_s,
    mean_to_eccentric_anomaly,
    mean_to_true_anomaly,
    orbital_period_s,
    orbital_velocity_m_per_s,
    semi_major_axis_from_period,
    true_to_eccentric_anomaly,
    wrap_angle,
)
from .propagation import (
    OrbitState,
    perifocal_to_eci_matrix,
    propagate_to_ecef,
    propagate_to_eci,
)
from .shell import SatelliteIndex, Shell
from .tle import TLE, TLEFormatError, generate_tle, parse_tle, tle_checksum

__all__ = [
    "KeplerianElements",
    "eccentric_to_mean_anomaly",
    "eccentric_to_true_anomaly",
    "mean_motion_rad_per_s",
    "mean_to_eccentric_anomaly",
    "mean_to_true_anomaly",
    "orbital_period_s",
    "orbital_velocity_m_per_s",
    "semi_major_axis_from_period",
    "true_to_eccentric_anomaly",
    "wrap_angle",
    "OrbitState",
    "perifocal_to_eci_matrix",
    "propagate_to_ecef",
    "propagate_to_eci",
    "SatelliteIndex",
    "Shell",
    "TLE",
    "TLEFormatError",
    "generate_tle",
    "parse_tle",
    "tle_checksum",
]
