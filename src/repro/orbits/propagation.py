"""Two-body propagation of Keplerian orbits.

Given osculating elements at the epoch, computes ECI (and via GMST rotation,
ECEF) position and velocity at any later time, assuming unperturbed two-body
motion.  This plays the role that the ns-3 satellite mobility model (itself
wrapping an SGP4-style propagator) plays for the original Hypatia.

Accuracy note (paper §3.2): the ns-3 model accrues 1-3 km of error per day
against true trajectories; the paper argues this is immaterial for
simulations under a few hours.  Two-body propagation of the filings'
*nominal* circular orbits is the same class of approximation — the dominant
omitted term (J2 nodal precession) moves a 550 km / 53 deg orbit's node by
about 5 degrees per day, i.e. ~0.01 degrees over a 200 s experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..geo.coordinates import eci_to_ecef
from .kepler import (
    KeplerianElements,
    eccentric_to_true_anomaly,
    mean_to_eccentric_anomaly,
)

__all__ = ["OrbitState", "propagate_to_eci", "propagate_to_ecef",
           "perifocal_to_eci_matrix"]


@dataclass(frozen=True)
class OrbitState:
    """Position and velocity of an orbiting object at one instant.

    Attributes:
        position_m: 3-vector position in the requested frame (meters).
        velocity_m_per_s: 3-vector velocity in the requested frame (m/s).
        time_s: Seconds past the epoch this state is valid at.
    """

    position_m: np.ndarray
    velocity_m_per_s: np.ndarray
    time_s: float

    @property
    def speed_m_per_s(self) -> float:
        """Magnitude of the velocity vector."""
        return float(np.linalg.norm(self.velocity_m_per_s))

    @property
    def radius_m(self) -> float:
        """Distance from the Earth's center."""
        return float(np.linalg.norm(self.position_m))


def perifocal_to_eci_matrix(elements: KeplerianElements) -> np.ndarray:
    """Rotation matrix taking perifocal (PQW) coordinates to ECI.

    The composition R3(-RAAN) * R1(-i) * R3(-argp), written out explicitly
    to avoid three matrix multiplications per call.
    """
    cos_o = math.cos(elements.raan_rad)
    sin_o = math.sin(elements.raan_rad)
    cos_i = math.cos(elements.inclination_rad)
    sin_i = math.sin(elements.inclination_rad)
    cos_w = math.cos(elements.arg_periapsis_rad)
    sin_w = math.sin(elements.arg_periapsis_rad)
    return np.array([
        [cos_o * cos_w - sin_o * sin_w * cos_i,
         -cos_o * sin_w - sin_o * cos_w * cos_i,
         sin_o * sin_i],
        [sin_o * cos_w + cos_o * sin_w * cos_i,
         -sin_o * sin_w + cos_o * cos_w * cos_i,
         -cos_o * sin_i],
        [sin_w * sin_i,
         cos_w * sin_i,
         cos_i],
    ])


def _perifocal_state(elements: KeplerianElements,
                     time_s: float) -> Tuple[np.ndarray, np.ndarray]:
    """Position/velocity in the perifocal frame after ``time_s`` seconds."""
    a = elements.semi_major_axis_m
    e = elements.eccentricity
    mu = elements.mu_m3_per_s2
    mean_anomaly = elements.mean_anomaly_at(time_s)
    e_anom = mean_to_eccentric_anomaly(mean_anomaly, e)
    nu = eccentric_to_true_anomaly(e_anom, e)
    # Orbit radius at this true anomaly.
    r = a * (1.0 - e * math.cos(e_anom))
    cos_nu, sin_nu = math.cos(nu), math.sin(nu)
    position = np.array([r * cos_nu, r * sin_nu, 0.0])
    # Vis-viva-consistent velocity in the perifocal frame.
    p = a * (1.0 - e * e)
    h = math.sqrt(mu * p)  # specific angular momentum
    velocity = np.array([
        -(mu / h) * sin_nu,
        (mu / h) * (e + cos_nu),
        0.0,
    ])
    return position, velocity


def propagate_to_eci(elements: KeplerianElements, time_s: float) -> OrbitState:
    """Two-body-propagate elements to an ECI state at ``time_s``."""
    position_pqw, velocity_pqw = _perifocal_state(elements, time_s)
    rot = perifocal_to_eci_matrix(elements)
    return OrbitState(
        position_m=rot @ position_pqw,
        velocity_m_per_s=rot @ velocity_pqw,
        time_s=time_s,
    )


def propagate_to_ecef(elements: KeplerianElements, time_s: float,
                      gmst_at_epoch_rad: float = 0.0) -> OrbitState:
    """Two-body-propagate elements to an ECEF state at ``time_s``.

    The returned velocity is the ECI velocity rotated into the ECEF frame
    (i.e. it does not subtract the frame's own rotation); for the link-length
    geometry this framework needs, only positions matter.
    """
    eci = propagate_to_eci(elements, time_s)
    return OrbitState(
        position_m=eci_to_ecef(eci.position_m, time_s, gmst_at_epoch_rad),
        velocity_m_per_s=eci_to_ecef(eci.velocity_m_per_s, time_s,
                                     gmst_at_epoch_rad),
        time_s=time_s,
    )
