"""Orbital shells: uniform Walker-delta-style satellite arrangements.

Paper §2.1: "A set of orbits with the same inclination and height, and
crossing the Equator at uniform spacing from each other, is called an
orbital shell.  Satellites within one orbit are uniformly spaced out."

This module turns a shell description (the rows of paper Table 1) into one
:class:`~repro.orbits.kepler.KeplerianElements` per satellite.  The
inter-plane phase offset follows the Walker-delta convention: adjacent
orbital planes are shifted in mean anomaly by ``F / (orbits * sats_per_orbit)``
of a revolution, which is what produces the staggered "+Grid"-friendly
geometry of real constellations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from .kepler import KeplerianElements

__all__ = ["Shell", "SatelliteIndex"]


@dataclass(frozen=True)
class SatelliteIndex:
    """Identifies one satellite inside a shell.

    Attributes:
        orbit: Orbital-plane index in ``[0, num_orbits)``.
        position_in_orbit: Slot index along the orbit in
            ``[0, satellites_per_orbit)``.
    """

    orbit: int
    position_in_orbit: int


@dataclass(frozen=True)
class Shell:
    """One orbital shell of a constellation (a row of paper Table 1).

    Attributes:
        name: Shell label, e.g. ``"S1"`` or ``"K1"``.
        num_orbits: Number of orbital planes.
        satellites_per_orbit: Satellites in each plane.
        altitude_m: Height ``h`` above the Earth's surface (meters).
        inclination_deg: Inclination ``i`` in degrees.
        phase_offset_rel: Walker phasing factor ``F`` expressed as a fraction
            of the inter-satellite spacing by which adjacent planes are
            shifted.  The conventional choice for +Grid constellations is
            ``F = 1`` slot spread over all planes (default behaviour when
            this is ``None``): plane ``o`` is shifted by
            ``o / num_orbits`` of one in-orbit slot.
    """

    name: str
    num_orbits: int
    satellites_per_orbit: int
    altitude_m: float
    inclination_deg: float
    phase_offset_rel: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.num_orbits < 1:
            raise ValueError(f"need at least one orbit, got {self.num_orbits}")
        if self.satellites_per_orbit < 1:
            raise ValueError(
                f"need at least one satellite per orbit, got "
                f"{self.satellites_per_orbit}")
        if self.altitude_m <= 0.0:
            raise ValueError(f"altitude must be positive, got {self.altitude_m}")
        if not 0.0 <= self.inclination_deg <= 180.0:
            raise ValueError(
                f"inclination must be in [0, 180], got {self.inclination_deg}")
        if not 0.0 <= self.phase_offset_rel < 1.0:
            raise ValueError(
                f"phase offset must be in [0, 1), got {self.phase_offset_rel}")

    @property
    def total_satellites(self) -> int:
        """Total satellite count of the shell."""
        return self.num_orbits * self.satellites_per_orbit

    @property
    def altitude_km(self) -> float:
        """Altitude in kilometers, as Table 1 quotes it."""
        return self.altitude_m / 1000.0

    def satellite_id(self, index: SatelliteIndex) -> int:
        """Flat id of a satellite: orbits are laid out consecutively."""
        self._check_index(index)
        return index.orbit * self.satellites_per_orbit + index.position_in_orbit

    def satellite_index(self, satellite_id: int) -> SatelliteIndex:
        """Inverse of :meth:`satellite_id`."""
        if not 0 <= satellite_id < self.total_satellites:
            raise ValueError(
                f"satellite id {satellite_id} out of range "
                f"[0, {self.total_satellites})")
        orbit, position = divmod(satellite_id, self.satellites_per_orbit)
        return SatelliteIndex(orbit=orbit, position_in_orbit=position)

    def elements_for(self, index: SatelliteIndex) -> KeplerianElements:
        """Keplerian elements of one satellite of the shell at the epoch."""
        self._check_index(index)
        raan_deg = 360.0 * index.orbit / self.num_orbits
        slot_deg = 360.0 / self.satellites_per_orbit
        phase_deg = slot_deg * (index.position_in_orbit
                                + self.phase_offset_rel * index.orbit)
        return KeplerianElements.circular(
            altitude_m=self.altitude_m,
            inclination_deg=self.inclination_deg,
            raan_deg=raan_deg,
            mean_anomaly_deg=phase_deg % 360.0,
        )

    def all_elements(self) -> List[KeplerianElements]:
        """Elements for every satellite, ordered by flat satellite id."""
        return [self.elements_for(index) for index in self.iter_indices()]

    def iter_indices(self) -> Iterator[SatelliteIndex]:
        """Iterate satellite indices in flat-id order."""
        for orbit in range(self.num_orbits):
            for position in range(self.satellites_per_orbit):
                yield SatelliteIndex(orbit=orbit, position_in_orbit=position)

    def grid_neighbors(self, index: SatelliteIndex
                       ) -> Tuple[SatelliteIndex, SatelliteIndex,
                                  SatelliteIndex, SatelliteIndex]:
        """The four +Grid neighbors of a satellite (paper §3.1).

        Two links to the immediate neighbors within the orbit, and two to
        the same-slot satellites in the adjacent orbits, all wrapping
        around.
        """
        self._check_index(index)
        same_orbit_prev = SatelliteIndex(
            index.orbit,
            (index.position_in_orbit - 1) % self.satellites_per_orbit)
        same_orbit_next = SatelliteIndex(
            index.orbit,
            (index.position_in_orbit + 1) % self.satellites_per_orbit)
        prev_orbit = SatelliteIndex(
            (index.orbit - 1) % self.num_orbits, index.position_in_orbit)
        next_orbit = SatelliteIndex(
            (index.orbit + 1) % self.num_orbits, index.position_in_orbit)
        return same_orbit_prev, same_orbit_next, prev_orbit, next_orbit

    def _check_index(self, index: SatelliteIndex) -> None:
        if not 0 <= index.orbit < self.num_orbits:
            raise ValueError(
                f"orbit {index.orbit} out of range [0, {self.num_orbits})")
        if not 0 <= index.position_in_orbit < self.satellites_per_orbit:
            raise ValueError(
                f"position {index.position_in_orbit} out of range "
                f"[0, {self.satellites_per_orbit})")
