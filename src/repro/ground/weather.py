"""Weather: rain attenuation over ground-satellite links.

Paper §7 lists "incorporating a weather model would enable work on
reliability and rerouting around bad weather" as future work.  This module
provides the standard first-order model: rain over a ground station
attenuates its radio links, which operators absorb by requiring a *higher*
minimum elevation angle (shorter, steeper atmospheric paths) — heavy rain
can take a station out entirely (penalty >= 90 deg).

Events are explicit and deterministic, so experiments are reproducible;
:meth:`WeatherModel.synthetic` generates a seeded random storm schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["RainEvent", "WeatherModel"]


@dataclass(frozen=True)
class RainEvent:
    """One rain episode over one ground station.

    Attributes:
        gid: Affected ground station.
        start_s / end_s: Active interval (end exclusive).
        elevation_penalty_deg: Added to the station's minimum elevation
            while active; 90 or more forces a total outage.
    """

    gid: int
    start_s: float
    end_s: float
    elevation_penalty_deg: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("event must end after it starts")
        if self.elevation_penalty_deg < 0.0:
            raise ValueError("penalty must be non-negative")

    def active_at(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s


class WeatherModel:
    """A schedule of rain events, queryable per station and time."""

    def __init__(self, events: Sequence[RainEvent]) -> None:
        self._by_gid: Dict[int, List[RainEvent]] = {}
        for event in events:
            self._by_gid.setdefault(event.gid, []).append(event)
        for gid_events in self._by_gid.values():
            gid_events.sort(key=lambda e: e.start_s)

    @property
    def num_events(self) -> int:
        return sum(len(v) for v in self._by_gid.values())

    def iter_events(self) -> List[RainEvent]:
        """All rain events in deterministic (gid, start) order.

        :meth:`repro.faults.FaultSchedule.from_weather` consumes this to
        express the weather model as GSL attenuation fault events.
        """
        return [event for gid in sorted(self._by_gid)
                for event in self._by_gid[gid]]

    def penalty_deg(self, gid: int, time_s: float) -> float:
        """Total elevation penalty over station ``gid`` at ``time_s``."""
        return sum(event.elevation_penalty_deg
                   for event in self._by_gid.get(gid, ())
                   if event.active_at(time_s))

    def min_elevation_deg(self, gid: int, base_deg: float,
                          time_s: float) -> float:
        """Effective minimum elevation, capped at a total outage (90)."""
        return min(90.0, base_deg + self.penalty_deg(gid, time_s))

    def is_raining(self, gid: int, time_s: float) -> bool:
        return self.penalty_deg(gid, time_s) > 0.0

    @classmethod
    def synthetic(cls, num_stations: int, duration_s: float,
                  seed: int = 0, storm_probability: float = 0.2,
                  mean_duration_s: float = 60.0,
                  penalty_deg: float = 25.0) -> "WeatherModel":
        """A seeded random storm schedule.

        Each station independently gets a storm with
        ``storm_probability``; storm start is uniform over the run and its
        duration exponential around ``mean_duration_s``.
        """
        if not 0.0 <= storm_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        rng = random.Random(seed)
        events: List[RainEvent] = []
        for gid in range(num_stations):
            if rng.random() >= storm_probability:
                continue
            start = rng.uniform(0.0, duration_s)
            duration = max(1.0, rng.expovariate(1.0 / mean_duration_s))
            events.append(RainEvent(
                gid=gid, start_s=start,
                end_s=min(start + duration, duration_s + 1.0),
                elevation_penalty_deg=penalty_deg))
        return cls(events)
