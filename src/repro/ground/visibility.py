"""GS-satellite visibility: elevation angles and coverage cones.

Paper §2.1 / Fig. 1: each satellite covers a cone defined by the minimum
angle of elevation ``l``.  A GS can communicate with a satellite only if it
sees it at elevation >= ``l``; smaller ``l`` admits satellites closer to the
horizon (more connectivity options, the root of Telesat's latency advantage
in §5.1).

The elevation of a satellite above a GS's local horizon is computed from the
up-component of the GS->satellite vector in the GS's topocentric frame.  All
routines here are vectorized over satellites, since visibility of an entire
constellation from every GS is recomputed at every forwarding-state time
step.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..geo.constants import EARTH_MEAN_RADIUS_M
from .stations import GroundStation

__all__ = [
    "elevation_angles_deg",
    "batched_elevation_angles_deg",
    "visible_satellite_ids",
    "max_slant_range_m",
    "azimuth_elevation_deg",
]


def _local_up_unit(station: GroundStation) -> np.ndarray:
    """Unit vector of the geodetic vertical (ellipsoid normal) at the GS."""
    lat = station.position.latitude_rad
    lon = station.position.longitude_rad
    return np.array([
        math.cos(lat) * math.cos(lon),
        math.cos(lat) * math.sin(lon),
        math.sin(lat),
    ])


def elevation_angles_deg(station: GroundStation,
                         satellite_positions_ecef_m: np.ndarray) -> np.ndarray:
    """Elevation of each satellite above the GS's horizon, in degrees.

    Args:
        station: The observing ground station.
        satellite_positions_ecef_m: (N, 3) ECEF satellite positions.

    Returns:
        (N,) elevations in degrees; negative below the horizon, 90 directly
        overhead.
    """
    positions = np.atleast_2d(np.asarray(satellite_positions_ecef_m))
    delta = positions - station.ecef_m
    distances = np.linalg.norm(delta, axis=1)
    up = _local_up_unit(station)
    # sin(elevation) is the up-component of the unit pointing vector.
    sin_elev = (delta @ up) / np.maximum(distances, 1e-9)
    sin_elev = np.clip(sin_elev, -1.0, 1.0)
    return np.degrees(np.arcsin(sin_elev))


def batched_elevation_angles_deg(stations: List[GroundStation],
                                 satellite_positions_ecef_m: np.ndarray
                                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Elevations *and* slant ranges of all stations x satellites at once.

    The per-snapshot GSL hot path: one batched computation replaces G
    calls to :func:`elevation_angles_deg` plus G norm evaluations, which
    matters because every forwarding-state update (and every sweep
    worker's inner loop) recomputes visibility of the whole constellation
    from every ground station.

    Args:
        stations: The observing ground stations (length G).
        satellite_positions_ecef_m: (N, 3) ECEF satellite positions.

    Returns:
        ``(elevations_deg, distances_m)``, each of shape (G, N): per
        station, the elevation of every satellite above its horizon and
        the slant range to it.
    """
    positions = np.atleast_2d(np.asarray(satellite_positions_ecef_m,
                                         dtype=np.float64))
    num_sats = positions.shape[0]
    if not stations:
        return (np.empty((0, num_sats)), np.empty((0, num_sats)))
    station_ecef = np.stack([station.ecef_m for station in stations])
    ups = np.stack([_local_up_unit(station) for station in stations])
    delta = positions[None, :, :] - station_ecef[:, None, :]
    distances = np.sqrt(np.einsum("gnk,gnk->gn", delta, delta))
    # sin(elevation) is the up-component of the unit pointing vector.
    sin_elev = (np.einsum("gnk,gk->gn", delta, ups)
                / np.maximum(distances, 1e-9))
    np.clip(sin_elev, -1.0, 1.0, out=sin_elev)
    return np.degrees(np.arcsin(sin_elev)), distances


def azimuth_elevation_deg(station: GroundStation,
                          satellite_positions_ecef_m: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Azimuth and elevation of each satellite as seen from the GS.

    Azimuth follows the paper's Fig. 12 convention: 0 deg = due North,
    90 deg = due East, in [0, 360).

    Returns:
        ``(azimuths_deg, elevations_deg)``, each of shape (N,).
    """
    positions = np.atleast_2d(np.asarray(satellite_positions_ecef_m))
    delta = positions - station.ecef_m
    lat = station.position.latitude_rad
    lon = station.position.longitude_rad
    sin_lat, cos_lat = math.sin(lat), math.cos(lat)
    sin_lon, cos_lon = math.sin(lon), math.cos(lon)
    east = -sin_lon * delta[:, 0] + cos_lon * delta[:, 1]
    north = (-sin_lat * cos_lon * delta[:, 0]
             - sin_lat * sin_lon * delta[:, 1]
             + cos_lat * delta[:, 2])
    up = (cos_lat * cos_lon * delta[:, 0]
          + cos_lat * sin_lon * delta[:, 1]
          + sin_lat * delta[:, 2])
    horizontal = np.hypot(east, north)
    elevations = np.degrees(np.arctan2(up, horizontal))
    azimuths = np.degrees(np.arctan2(east, north)) % 360.0
    return azimuths, elevations


def visible_satellite_ids(station: GroundStation,
                          satellite_positions_ecef_m: np.ndarray,
                          min_elevation_deg: float) -> np.ndarray:
    """Ids (row indices) of satellites visible above ``min_elevation_deg``."""
    elevations = elevation_angles_deg(station, satellite_positions_ecef_m)
    return np.nonzero(elevations >= min_elevation_deg)[0]


def max_slant_range_m(altitude_m: float, min_elevation_deg: float,
                      earth_radius_m: float = EARTH_MEAN_RADIUS_M,
                      orbit_radius_m: Optional[float] = None) -> float:
    """Longest possible GS-satellite link at a given minimum elevation.

    For a satellite at orbit radius ``R + h`` seen at elevation ``l`` from a
    station at radius ``R``, the slant range follows from the law of
    cosines:

        d = -R sin(l) + sqrt((R + h)^2 - R^2 cos^2(l))

    The range is maximal at the minimum elevation, so this bounds every
    admissible GSL length — handy as a cheap distance-based visibility
    prefilter and for worst-case GSL latency estimates.

    Args:
        altitude_m: Satellite altitude ``h`` above the surface.
        min_elevation_deg: Minimum elevation angle ``l`` in degrees.
        earth_radius_m: Station's distance from the Earth's center.
        orbit_radius_m: Satellite's distance from the Earth's center;
            defaults to ``earth_radius_m + altitude_m``.  Pass it
            explicitly when station and satellite radii differ (ellipsoidal
            stations, equatorial-radius orbits).

    Returns:
        The maximum admissible slant range in meters.
    """
    if altitude_m <= 0.0:
        raise ValueError(f"altitude must be positive, got {altitude_m}")
    if not 0.0 <= min_elevation_deg <= 90.0:
        raise ValueError(
            f"min elevation must be in [0, 90], got {min_elevation_deg}")
    l_rad = math.radians(min_elevation_deg)
    r = earth_radius_m
    orbit_radius = (orbit_radius_m if orbit_radius_m is not None
                    else earth_radius_m + altitude_m)
    if orbit_radius <= r:
        raise ValueError("orbit radius must exceed the station radius")
    return (-r * math.sin(l_rad)
            + math.sqrt(orbit_radius ** 2 - (r * math.cos(l_rad)) ** 2))
