"""Ground stations and ground-station sets.

Paper §3.1: Hypatia simulates static ground stations (GSes) with multiple
parabolic antennas.  A GS is fixed in the ECEF frame; its Cartesian position
is computed once and cached.

This module also builds the *relay grids* of Appendix A: a lattice of
candidate GS relays between two endpoints, used for "bent-pipe"
constellations that eschew inter-satellite links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geo.coordinates import GeodeticPosition, geodetic_to_ecef
from .cities import City, top_cities

__all__ = ["GroundStation", "ground_stations_from_cities",
           "relay_grid_between"]


@dataclass(frozen=True)
class GroundStation:
    """A static ground station.

    Attributes:
        gid: Ground station id, unique within one experiment; assigned
            consecutively from 0.
        name: Human-readable name (usually a city name).
        position: Geodetic position.
        is_relay: True for Appendix-A bent-pipe relay stations, which may
            forward traffic but never originate or terminate it.
    """

    gid: int
    name: str
    position: GeodeticPosition
    is_relay: bool = False
    _ecef_cache: tuple = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        ecef = geodetic_to_ecef(self.position)
        object.__setattr__(self, "_ecef_cache", tuple(float(v) for v in ecef))

    @property
    def ecef_m(self) -> np.ndarray:
        """Cached ECEF position (meters)."""
        return np.array(self._ecef_cache)

    @property
    def latitude_deg(self) -> float:
        return self.position.latitude_deg

    @property
    def longitude_deg(self) -> float:
        return self.position.longitude_deg


def ground_stations_from_cities(cities: Optional[Sequence[City]] = None,
                                count: int = 100) -> List[GroundStation]:
    """Ground stations at city locations.

    Args:
        cities: Explicit city list; defaults to the ``count`` most populous.
        count: Number of top cities when ``cities`` is not given.

    Returns:
        Ground stations with gids 0..len-1 in city-rank order.
    """
    if cities is None:
        cities = top_cities(count)
    return [
        GroundStation(gid=gid, name=city.name, position=city.position)
        for gid, city in enumerate(cities)
    ]


def relay_grid_between(a: GeodeticPosition, b: GeodeticPosition,
                       rows: int = 5, columns: int = 7,
                       margin_deg: float = 3.0,
                       first_gid: int = 0) -> List[GroundStation]:
    """A lattice of candidate GS relays spanning the box between two points.

    Reproduces the Appendix-A setup (Fig. 16(b)): a grid of ground stations
    between the endpoints such that bent-pipe routing has multiple relays to
    choose from.  The grid covers the endpoints' bounding box, expanded by
    ``margin_deg`` on every side, sampled ``rows x columns``.

    Note: the grid is laid out in latitude/longitude space, which is
    adequate for the continental scales of the Appendix-A experiment
    (Paris-Moscow); it does not attempt to handle paths crossing the
    antimeridian.

    Args:
        a: First endpoint.
        b: Second endpoint.
        rows: Grid rows (latitude direction).
        columns: Grid columns (longitude direction).
        margin_deg: Bounding-box expansion in degrees.
        first_gid: gid of the first relay; the rest follow consecutively.

    Returns:
        Relay ground stations (``is_relay=True``) named ``relay-<r>-<c>``.
    """
    if rows < 2 or columns < 2:
        raise ValueError("relay grid needs at least 2 rows and 2 columns")
    lat_low = min(a.latitude_deg, b.latitude_deg) - margin_deg
    lat_high = max(a.latitude_deg, b.latitude_deg) + margin_deg
    lon_low = min(a.longitude_deg, b.longitude_deg) - margin_deg
    lon_high = max(a.longitude_deg, b.longitude_deg) + margin_deg
    lat_low = max(-89.0, lat_low)
    lat_high = min(89.0, lat_high)
    lon_low = max(-180.0, lon_low)
    lon_high = min(180.0, lon_high)

    relays: List[GroundStation] = []
    for r in range(rows):
        lat = lat_low + (lat_high - lat_low) * r / (rows - 1)
        for c in range(columns):
            lon = lon_low + (lon_high - lon_low) * c / (columns - 1)
            relays.append(GroundStation(
                gid=first_gid + len(relays),
                name=f"relay-{r}-{c}",
                position=GeodeticPosition(lat, lon, 0.0),
                is_relay=True,
            ))
    return relays
