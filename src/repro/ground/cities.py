"""The world's 100 most populous cities — the paper's ground station set.

Paper §3.4 and §5 place ground stations at the 100 most populous cities and
study connections between all pairs.  This module embeds that dataset
(metropolitan-area population estimates circa 2020, WGS84 coordinates) so
the workload is reproducible offline.

Coordinates are city centers to ~0.01 degree; at LEO geometry scales the
resulting position error (~1 km) is far below link-length variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..geo.coordinates import GeodeticPosition

__all__ = ["City", "top_cities", "city_by_name", "CITY_RECORDS"]


@dataclass(frozen=True)
class City:
    """One city usable as a ground station site.

    Attributes:
        rank: Population rank, 1 = most populous.
        name: City name (unique within the dataset).
        position: Geodetic position at zero altitude.
        population: Metropolitan population estimate.
    """

    rank: int
    name: str
    position: GeodeticPosition
    population: int

    @property
    def latitude_deg(self) -> float:
        return self.position.latitude_deg

    @property
    def longitude_deg(self) -> float:
        return self.position.longitude_deg


#: (rank, name, latitude_deg, longitude_deg, population) records.
CITY_RECORDS: Tuple[Tuple[int, str, float, float, int], ...] = (
    (1, "Tokyo", 35.69, 139.69, 37_400_000),
    (2, "Delhi", 28.61, 77.21, 29_400_000),
    (3, "Shanghai", 31.23, 121.47, 26_300_000),
    (4, "Sao Paulo", -23.55, -46.63, 21_800_000),
    (5, "Mexico City", 19.43, -99.13, 21_600_000),
    (6, "Cairo", 30.04, 31.24, 20_500_000),
    (7, "Mumbai", 19.08, 72.88, 20_000_000),
    (8, "Beijing", 39.90, 116.41, 19_600_000),
    (9, "Dhaka", 23.81, 90.41, 19_600_000),
    (10, "Osaka", 34.69, 135.50, 19_300_000),
    (11, "New York", 40.71, -74.01, 18_800_000),
    (12, "Karachi", 24.86, 67.01, 15_400_000),
    (13, "Buenos Aires", -34.60, -58.38, 15_000_000),
    (14, "Chongqing", 29.56, 106.55, 14_800_000),
    (15, "Istanbul", 41.01, 28.98, 14_700_000),
    (16, "Kolkata", 22.57, 88.36, 14_700_000),
    (17, "Manila", 14.60, 120.98, 13_500_000),
    (18, "Lagos", 6.52, 3.38, 13_400_000),
    (19, "Rio de Janeiro", -22.91, -43.17, 13_300_000),
    (20, "Tianjin", 39.34, 117.36, 13_200_000),
    (21, "Kinshasa", -4.44, 15.27, 13_200_000),
    (22, "Guangzhou", 23.13, 113.26, 12_600_000),
    (23, "Los Angeles", 34.05, -118.24, 12_400_000),
    (24, "Moscow", 55.76, 37.62, 12_400_000),
    (25, "Shenzhen", 22.54, 114.06, 12_000_000),
    (26, "Lahore", 31.55, 74.34, 11_700_000),
    (27, "Bangalore", 12.97, 77.59, 11_400_000),
    (28, "Paris", 48.86, 2.35, 10_900_000),
    (29, "Bogota", 4.71, -74.07, 10_600_000),
    (30, "Jakarta", -6.21, 106.85, 10_500_000),
    (31, "Chennai", 13.08, 80.27, 10_500_000),
    (32, "Lima", -12.05, -77.04, 10_400_000),
    (33, "Bangkok", 13.76, 100.50, 10_200_000),
    (34, "Seoul", 37.57, 126.98, 9_960_000),
    (35, "Nagoya", 35.18, 136.91, 9_550_000),
    (36, "Hyderabad", 17.39, 78.49, 9_480_000),
    (37, "London", 51.51, -0.13, 9_050_000),
    (38, "Tehran", 35.69, 51.39, 8_900_000),
    (39, "Chicago", 41.88, -87.63, 8_860_000),
    (40, "Chengdu", 30.57, 104.07, 8_810_000),
    (41, "Nanjing", 32.06, 118.80, 8_250_000),
    (42, "Wuhan", 30.59, 114.31, 8_180_000),
    (43, "Ho Chi Minh City", 10.82, 106.63, 8_140_000),
    (44, "Luanda", -8.84, 13.23, 7_950_000),
    (45, "Ahmedabad", 23.02, 72.57, 7_680_000),
    (46, "Kuala Lumpur", 3.14, 101.69, 7_560_000),
    (47, "Xian", 34.34, 108.94, 7_440_000),
    (48, "Hong Kong", 22.32, 114.17, 7_430_000),
    (49, "Dongguan", 23.02, 113.75, 7_360_000),
    (50, "Hangzhou", 30.27, 120.16, 7_240_000),
    (51, "Foshan", 23.02, 113.12, 7_240_000),
    (52, "Shenyang", 41.81, 123.43, 7_220_000),
    (53, "Riyadh", 24.71, 46.68, 7_070_000),
    (54, "Baghdad", 33.31, 44.37, 6_970_000),
    (55, "Santiago", -33.45, -70.67, 6_770_000),
    (56, "Surat", 21.17, 72.83, 6_560_000),
    (57, "Madrid", 40.42, -3.70, 6_500_000),
    (58, "Suzhou", 31.30, 120.58, 6_340_000),
    (59, "Pune", 18.52, 73.86, 6_280_000),
    (60, "Harbin", 45.80, 126.53, 6_120_000),
    (61, "Houston", 29.76, -95.37, 6_120_000),
    (62, "Dallas", 32.78, -96.80, 6_100_000),
    (63, "Toronto", 43.65, -79.38, 6_080_000),
    (64, "Dar es Salaam", -6.79, 39.21, 6_050_000),
    (65, "Miami", 25.76, -80.19, 6_040_000),
    (66, "Belo Horizonte", -19.92, -43.94, 5_970_000),
    (67, "Singapore", 1.35, 103.82, 5_870_000),
    (68, "Philadelphia", 39.95, -75.17, 5_700_000),
    (69, "Atlanta", 33.75, -84.39, 5_570_000),
    (70, "Fukuoka", 33.59, 130.40, 5_550_000),
    (71, "Khartoum", 15.50, 32.56, 5_530_000),
    (72, "Barcelona", 41.39, 2.17, 5_490_000),
    (73, "Johannesburg", -26.20, 28.05, 5_490_000),
    (74, "Saint Petersburg", 59.93, 30.34, 5_380_000),
    (75, "Qingdao", 36.07, 120.38, 5_380_000),
    (76, "Dalian", 38.91, 121.61, 5_300_000),
    (77, "Washington", 38.91, -77.04, 5_210_000),
    (78, "Yangon", 16.87, 96.20, 5_160_000),
    (79, "Alexandria", 31.20, 29.92, 5_090_000),
    (80, "Jinan", 36.65, 117.12, 5_050_000),
    (81, "Guadalajara", 20.67, -103.35, 5_020_000),
    (82, "Zhengzhou", 34.75, 113.63, 4_940_000),
    (83, "Ankara", 39.93, 32.86, 4_920_000),
    (84, "Chittagong", 22.36, 91.78, 4_910_000),
    (85, "Melbourne", -37.81, 144.96, 4_870_000),
    (86, "Abidjan", 5.36, -4.01, 4_800_000),
    (87, "Sydney", -33.87, 151.21, 4_790_000),
    (88, "Monterrey", 25.69, -100.32, 4_710_000),
    (89, "Brasilia", -15.79, -47.88, 4_560_000),
    (90, "Nairobi", -1.29, 36.82, 4_390_000),
    (91, "Hanoi", 21.03, 105.85, 4_380_000),
    (92, "Boston", 42.36, -71.06, 4_310_000),
    (93, "Phoenix", 33.45, -112.07, 4_220_000),
    (94, "Montreal", 45.50, -73.57, 4_220_000),
    (95, "Porto Alegre", -30.03, -51.22, 4_090_000),
    (96, "Recife", -8.05, -34.88, 4_050_000),
    (97, "Fortaleza", -3.72, -38.54, 4_000_000),
    (98, "Accra", 5.60, -0.19, 4_000_000),
    (99, "Medellin", 6.25, -75.56, 3_930_000),
    (100, "Kano", 12.00, 8.52, 3_820_000),
)


def _build_cities() -> Tuple[List[City], Dict[str, City]]:
    cities: List[City] = []
    by_name: Dict[str, City] = {}
    for rank, name, lat, lon, population in CITY_RECORDS:
        city = City(rank=rank, name=name,
                    position=GeodeticPosition(lat, lon, 0.0),
                    population=population)
        cities.append(city)
        by_name[name] = city
    return cities, by_name


_ALL_CITIES, _CITIES_BY_NAME = _build_cities()


def top_cities(count: int = 100) -> List[City]:
    """The ``count`` most populous cities, by rank.

    Args:
        count: How many cities to return, between 1 and 100.
    """
    if not 1 <= count <= len(_ALL_CITIES):
        raise ValueError(
            f"count must be in [1, {len(_ALL_CITIES)}], got {count}")
    return list(_ALL_CITIES[:count])


def city_by_name(name: str) -> City:
    """Look up a city by its exact name.

    Raises:
        KeyError: If the city is not in the dataset.
    """
    try:
        return _CITIES_BY_NAME[name]
    except KeyError:
        raise KeyError(f"city {name!r} not in the top-100 dataset") from None
