"""Ground segment: cities, ground stations, GS-satellite visibility."""

from .cities import CITY_RECORDS, City, city_by_name, top_cities
from .stations import (
    GroundStation,
    ground_stations_from_cities,
    relay_grid_between,
)
from .visibility import (
    azimuth_elevation_deg,
    elevation_angles_deg,
    max_slant_range_m,
    visible_satellite_ids,
)
from .weather import RainEvent, WeatherModel

__all__ = [
    "CITY_RECORDS",
    "City",
    "city_by_name",
    "top_cities",
    "GroundStation",
    "ground_stations_from_cities",
    "relay_grid_between",
    "azimuth_elevation_deg",
    "elevation_angles_deg",
    "max_slant_range_m",
    "visible_satellite_ids",
    "RainEvent",
    "WeatherModel",
]
