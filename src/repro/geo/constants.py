"""Physical and geodetic constants used throughout the framework.

All distances are in meters, all times in seconds, and all angles in radians
unless a name explicitly says otherwise (``*_deg``, ``*_km``).

The constellations reproduced here (paper Table 1) are specified against the
WGS72 world geodetic system, the datum used by the TLE format and by NORAD's
SGP4 propagator.  We therefore carry both WGS72 and WGS84 parameter sets;
WGS72 is the default for orbital work, while the geodetic helpers accept an
explicit ellipsoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Speed of light in vacuum (m/s).  Used to convert path lengths to latencies
#: and to compute the "geodesic RTT" lower bound of paper Fig. 6.
SPEED_OF_LIGHT_M_PER_S = 299_792_458.0

#: Standard gravitational parameter of the Earth, mu = G * M_earth (m^3/s^2),
#: WGS72 value (the one baked into the TLE/SGP4 ecosystem).
EARTH_MU_M3_PER_S2 = 3.986_008e14

#: Mean Earth radius used for coverage cones and great-circle distances (m).
EARTH_MEAN_RADIUS_M = 6_371_000.0

#: Sidereal day: time for one full Earth rotation relative to the stars (s).
SIDEREAL_DAY_S = 86_164.0905

#: Earth's rotation rate (rad/s), derived from the sidereal day.
EARTH_ROTATION_RATE_RAD_PER_S = 2.0 * math.pi / SIDEREAL_DAY_S

#: Conventional LEO ceiling (paper §1): low Earth orbit ends at 2000 km.
LEO_MAX_ALTITUDE_M = 2_000_000.0

#: Speed of light in optical fiber is roughly 2c/3 (paper §5.1, citing [9]).
FIBER_REFRACTIVE_SLOWDOWN = 3.0 / 2.0


@dataclass(frozen=True)
class Ellipsoid:
    """A reference ellipsoid for geodetic <-> Cartesian conversions.

    Attributes:
        name: Human-readable datum name.
        semi_major_axis_m: Equatorial radius ``a`` in meters.
        inverse_flattening: ``1/f``; flattening ``f = (a - b) / a``.
    """

    name: str
    semi_major_axis_m: float
    inverse_flattening: float

    @property
    def flattening(self) -> float:
        """Flattening ``f`` of the ellipsoid."""
        return 1.0 / self.inverse_flattening

    @property
    def semi_minor_axis_m(self) -> float:
        """Polar radius ``b = a * (1 - f)`` in meters."""
        return self.semi_major_axis_m * (1.0 - self.flattening)

    @property
    def eccentricity_squared(self) -> float:
        """First eccentricity squared, ``e^2 = f * (2 - f)``."""
        f = self.flattening
        return f * (2.0 - f)


#: WGS72: datum of the TLE format and of the constellation filings we model.
WGS72 = Ellipsoid(name="WGS72", semi_major_axis_m=6_378_135.0,
                  inverse_flattening=298.26)

#: WGS84: datum of GPS coordinates; used for the city dataset.
WGS84 = Ellipsoid(name="WGS84", semi_major_axis_m=6_378_137.0,
                  inverse_flattening=298.257_223_563)
