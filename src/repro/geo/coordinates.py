"""Coordinate frames and conversions.

Three frames are used throughout:

* **ECI** (Earth-centered inertial): the frame in which two-body orbital
  motion is simple.  X points to the vernal equinox, Z along the rotation
  axis.
* **ECEF** (Earth-centered, Earth-fixed): rotates with the Earth.  Ground
  stations are fixed in ECEF; satellite positions must be rotated into it
  before computing ground-satellite geometry.
* **Geodetic**: latitude / longitude / altitude against a reference
  ellipsoid.

The ECI -> ECEF rotation is a single rotation about Z by the Greenwich Mean
Sidereal Time (GMST) angle.  Since every experiment in the paper spans at
most a few hundred seconds, we use the linear GMST model (constant rotation
rate from a reference epoch), which is exact to well under a meter over such
horizons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .constants import (
    EARTH_ROTATION_RATE_RAD_PER_S,
    Ellipsoid,
    WGS84,
)

__all__ = [
    "GeodeticPosition",
    "gmst_angle_rad",
    "eci_to_ecef",
    "ecef_to_eci",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "rotation_about_z",
]


@dataclass(frozen=True)
class GeodeticPosition:
    """A point given in geodetic coordinates.

    Attributes:
        latitude_deg: Geodetic latitude in degrees, north positive.
        longitude_deg: Longitude in degrees, east positive, in [-180, 180].
        altitude_m: Height above the ellipsoid in meters.
    """

    latitude_deg: float
    longitude_deg: float
    altitude_m: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(
                f"latitude must be in [-90, 90], got {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise ValueError(
                f"longitude must be in [-180, 180], got {self.longitude_deg}")

    @property
    def latitude_rad(self) -> float:
        return math.radians(self.latitude_deg)

    @property
    def longitude_rad(self) -> float:
        return math.radians(self.longitude_deg)


def gmst_angle_rad(time_s: float, gmst_at_epoch_rad: float = 0.0) -> float:
    """Greenwich Mean Sidereal Time angle at ``time_s`` past the epoch.

    Args:
        time_s: Seconds since the simulation epoch.
        gmst_at_epoch_rad: GMST at the epoch itself.  Simulations are
            invariant to this offset (it shifts all longitudes uniformly), so
            it defaults to zero.

    Returns:
        The rotation angle of the Earth in radians, wrapped to [0, 2*pi).
    """
    angle = gmst_at_epoch_rad + EARTH_ROTATION_RATE_RAD_PER_S * time_s
    return angle % (2.0 * math.pi)


def rotation_about_z(angle_rad: float) -> np.ndarray:
    """Right-handed rotation matrix about the +Z axis by ``angle_rad``."""
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    return np.array([
        [c, s, 0.0],
        [-s, c, 0.0],
        [0.0, 0.0, 1.0],
    ])


def eci_to_ecef(position_eci_m: np.ndarray, time_s: float,
                gmst_at_epoch_rad: float = 0.0) -> np.ndarray:
    """Rotate an ECI position vector into the ECEF frame at ``time_s``.

    Accepts a single 3-vector or an (N, 3) array of vectors.
    """
    theta = gmst_angle_rad(time_s, gmst_at_epoch_rad)
    rot = rotation_about_z(theta)
    return np.asarray(position_eci_m) @ rot.T


def ecef_to_eci(position_ecef_m: np.ndarray, time_s: float,
                gmst_at_epoch_rad: float = 0.0) -> np.ndarray:
    """Rotate an ECEF position vector into the ECI frame at ``time_s``."""
    theta = gmst_angle_rad(time_s, gmst_at_epoch_rad)
    rot = rotation_about_z(-theta)
    return np.asarray(position_ecef_m) @ rot.T


def geodetic_to_ecef(position: GeodeticPosition,
                     ellipsoid: Ellipsoid = WGS84) -> np.ndarray:
    """Convert geodetic coordinates to an ECEF Cartesian vector (meters)."""
    lat = position.latitude_rad
    lon = position.longitude_rad
    alt = position.altitude_m
    a = ellipsoid.semi_major_axis_m
    e2 = ellipsoid.eccentricity_squared
    sin_lat = math.sin(lat)
    cos_lat = math.cos(lat)
    # Prime-vertical radius of curvature.
    n = a / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
    x = (n + alt) * cos_lat * math.cos(lon)
    y = (n + alt) * cos_lat * math.sin(lon)
    z = (n * (1.0 - e2) + alt) * sin_lat
    return np.array([x, y, z])


def ecef_to_geodetic(position_ecef_m: np.ndarray,
                     ellipsoid: Ellipsoid = WGS84,
                     max_iterations: int = 10,
                     tolerance_rad: float = 1e-12) -> GeodeticPosition:
    """Convert an ECEF Cartesian vector back to geodetic coordinates.

    Uses the classic iterative latitude refinement, which converges to
    sub-millimeter accuracy in a handful of iterations for any point above
    the Earth's core.
    """
    x, y, z = (float(v) for v in np.asarray(position_ecef_m))
    a = ellipsoid.semi_major_axis_m
    e2 = ellipsoid.eccentricity_squared
    lon = math.atan2(y, x)
    p = math.hypot(x, y)
    if p < 1e-9:
        # On the polar axis the longitude is arbitrary; latitude is +/-90.
        lat = math.copysign(math.pi / 2.0, z)
        n = a / math.sqrt(1.0 - e2 * math.sin(lat) ** 2)
        alt = abs(z) - n * (1.0 - e2)
        return GeodeticPosition(math.degrees(lat), 0.0, alt)

    lat = math.atan2(z, p * (1.0 - e2))
    for _ in range(max_iterations):
        sin_lat = math.sin(lat)
        n = a / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
        new_lat = math.atan2(z + e2 * n * sin_lat, p)
        if abs(new_lat - lat) < tolerance_rad:
            lat = new_lat
            break
        lat = new_lat
    sin_lat = math.sin(lat)
    n = a / math.sqrt(1.0 - e2 * sin_lat * sin_lat)
    cos_lat = math.cos(lat)
    if abs(cos_lat) > 1e-9:
        alt = p / cos_lat - n
    else:
        alt = abs(z) - n * (1.0 - e2)
    lon_deg = math.degrees(lon)
    if lon_deg == -180.0:
        lon_deg = 180.0
    return GeodeticPosition(math.degrees(lat), lon_deg, alt)


def topocentric_enu(observer_ecef_m: np.ndarray,
                    observer_geodetic: GeodeticPosition,
                    target_ecef_m: np.ndarray) -> Tuple[float, float, float]:
    """Express ``target`` in the observer's local East-North-Up frame.

    Returns:
        ``(east_m, north_m, up_m)`` components of the observer->target vector.
    """
    lat = observer_geodetic.latitude_rad
    lon = observer_geodetic.longitude_rad
    delta = np.asarray(target_ecef_m) - np.asarray(observer_ecef_m)
    sin_lat, cos_lat = math.sin(lat), math.cos(lat)
    sin_lon, cos_lon = math.sin(lon), math.cos(lon)
    east = -sin_lon * delta[0] + cos_lon * delta[1]
    north = (-sin_lat * cos_lon * delta[0]
             - sin_lat * sin_lon * delta[1]
             + cos_lat * delta[2])
    up = (cos_lat * cos_lon * delta[0]
          + cos_lat * sin_lon * delta[1]
          + sin_lat * delta[2])
    return float(east), float(north), float(up)
