"""Distance and latency primitives.

Two notions of distance matter for LEO networking:

* **Straight-line (chord) distance** between two points in space — this is
  what a radio or laser link traverses, so it determines link latency.
* **Great-circle distance** along the Earth's surface — together with the
  speed of light it gives the *geodesic RTT*, the unbeatable lower bound the
  paper compares constellation RTTs against (Fig. 6).
"""

from __future__ import annotations

import math

import numpy as np

from .constants import EARTH_MEAN_RADIUS_M, SPEED_OF_LIGHT_M_PER_S
from .coordinates import GeodeticPosition

__all__ = [
    "straight_line_distance_m",
    "great_circle_distance_m",
    "central_angle_rad",
    "propagation_delay_s",
    "geodesic_rtt_s",
]


def straight_line_distance_m(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two Cartesian positions (meters)."""
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


def central_angle_rad(a: GeodeticPosition, b: GeodeticPosition) -> float:
    """Central angle between two surface points, via the haversine formula.

    The haversine form is numerically stable for both nearby and antipodal
    points, unlike the spherical law of cosines.
    """
    lat1, lon1 = a.latitude_rad, a.longitude_rad
    lat2, lon2 = b.latitude_rad, b.longitude_rad
    sin_dlat = math.sin((lat2 - lat1) / 2.0)
    sin_dlon = math.sin((lon2 - lon1) / 2.0)
    h = (sin_dlat * sin_dlat
         + math.cos(lat1) * math.cos(lat2) * sin_dlon * sin_dlon)
    h = min(1.0, max(0.0, h))
    return 2.0 * math.asin(math.sqrt(h))


def great_circle_distance_m(a: GeodeticPosition, b: GeodeticPosition,
                            radius_m: float = EARTH_MEAN_RADIUS_M) -> float:
    """Great-circle (surface) distance between two geodetic points (m)."""
    return radius_m * central_angle_rad(a, b)


def propagation_delay_s(distance_m: float,
                        speed_m_per_s: float = SPEED_OF_LIGHT_M_PER_S) -> float:
    """One-way propagation delay over ``distance_m`` at ``speed_m_per_s``."""
    if distance_m < 0.0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    return distance_m / speed_m_per_s


def geodesic_rtt_s(a: GeodeticPosition, b: GeodeticPosition) -> float:
    """The geodesic RTT of paper Fig. 6.

    Time to travel from ``a`` to ``b`` and back along the great circle at
    the speed of light in vacuum.  No realizable network can beat this.
    """
    return 2.0 * propagation_delay_s(great_circle_distance_m(a, b))
