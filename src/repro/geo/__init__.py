"""Geodesy substrate: constants, coordinate frames, distances, latencies."""

from .constants import (
    EARTH_MEAN_RADIUS_M,
    EARTH_MU_M3_PER_S2,
    EARTH_ROTATION_RATE_RAD_PER_S,
    FIBER_REFRACTIVE_SLOWDOWN,
    LEO_MAX_ALTITUDE_M,
    SIDEREAL_DAY_S,
    SPEED_OF_LIGHT_M_PER_S,
    Ellipsoid,
    WGS72,
    WGS84,
)
from .coordinates import (
    GeodeticPosition,
    ecef_to_eci,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    gmst_angle_rad,
    rotation_about_z,
    topocentric_enu,
)
from .distance import (
    central_angle_rad,
    geodesic_rtt_s,
    great_circle_distance_m,
    propagation_delay_s,
    straight_line_distance_m,
)

__all__ = [
    "EARTH_MEAN_RADIUS_M",
    "EARTH_MU_M3_PER_S2",
    "EARTH_ROTATION_RATE_RAD_PER_S",
    "FIBER_REFRACTIVE_SLOWDOWN",
    "LEO_MAX_ALTITUDE_M",
    "SIDEREAL_DAY_S",
    "SPEED_OF_LIGHT_M_PER_S",
    "Ellipsoid",
    "WGS72",
    "WGS84",
    "GeodeticPosition",
    "ecef_to_eci",
    "ecef_to_geodetic",
    "eci_to_ecef",
    "geodetic_to_ecef",
    "gmst_angle_rad",
    "rotation_about_z",
    "topocentric_enu",
    "central_angle_rad",
    "geodesic_rtt_s",
    "great_circle_distance_m",
    "propagation_delay_s",
    "straight_line_distance_m",
]
