"""Time-varying network topology: ISLs, GSLs, snapshots, dynamic state."""

from .dynamic_state import (
    DynamicState,
    PairTimeline,
    count_path_changes,
    satellites_of_path,
    snapshot_times,
)
from .gsl import GslEdges, GslPolicy, compute_gsl_edges
from .isl import (
    isl_lengths_m,
    no_isls,
    plus_grid_isls,
    single_ring_isls,
    validate_isl_pairs,
)
from .network import LeoNetwork, TopologySnapshot

__all__ = [
    "DynamicState",
    "PairTimeline",
    "count_path_changes",
    "satellites_of_path",
    "snapshot_times",
    "GslEdges",
    "GslPolicy",
    "compute_gsl_edges",
    "isl_lengths_m",
    "no_isls",
    "plus_grid_isls",
    "single_ring_isls",
    "validate_isl_pairs",
    "LeoNetwork",
    "TopologySnapshot",
]
