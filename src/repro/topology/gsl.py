"""Ground-satellite link (GSL) connectivity policies.

Paper §3.1 offers two GS configurations: a GS may (a) connect to every
satellite above its minimum elevation angle, or (b) connect only to its
nearest visible satellite (the single-phased-array user-terminal model).
The policy decides which GSL edges exist in a topology snapshot; link
lengths are slant ranges.
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..ground.stations import GroundStation
from ..ground.visibility import batched_elevation_angles_deg

__all__ = ["GslPolicy", "GslEdges", "compute_gsl_edges"]


class GslPolicy(enum.Enum):
    """How a ground station selects satellites to link with."""

    #: Connect to every satellite above the minimum elevation (default for
    #: gateway-class GSes with multiple parabolic antennas).
    ALL_VISIBLE = "all_visible"

    #: Connect only to the nearest visible satellite (single phased-array
    #: user-terminal model).
    NEAREST_ONLY = "nearest_only"


@dataclass(frozen=True)
class GslEdges:
    """GSL candidates of one ground station at one instant.

    Attributes:
        gid: Ground station id.
        satellite_ids: (K,) ids of linkable satellites.
        lengths_m: (K,) slant ranges to those satellites, same order.
    """

    gid: int
    satellite_ids: np.ndarray
    lengths_m: np.ndarray

    def __post_init__(self) -> None:
        if len(self.satellite_ids) != len(self.lengths_m):
            raise ValueError("satellite_ids and lengths_m length mismatch")

    @property
    def is_connected(self) -> bool:
        """Whether the GS can reach any satellite at all right now.

        St. Petersburg's intermittent loss of Kuiper connectivity (paper
        Fig. 3(a)/Fig. 12) shows up as this being False.
        """
        return len(self.satellite_ids) > 0

    def nearest_satellite(self) -> int:
        """Id of the closest linkable satellite.

        Raises:
            ValueError: If no satellite is visible.
        """
        if not self.is_connected:
            raise ValueError(f"ground station {self.gid} sees no satellite")
        return int(self.satellite_ids[int(np.argmin(self.lengths_m))])


def compute_gsl_edges(stations: Sequence[GroundStation],
                      satellite_positions_ecef_m: np.ndarray,
                      min_elevation_deg,
                      policy: GslPolicy = GslPolicy.ALL_VISIBLE,
                      excluded_satellites: Optional[Set[int]] = None,
                      ) -> Dict[int, GslEdges]:
    """GSL candidate edges for every ground station at one instant.

    Args:
        stations: The ground stations.
        satellite_positions_ecef_m: (N, 3) ECEF satellite positions.
        min_elevation_deg: Minimum elevation angle ``l`` — any real scalar
            (Python float, ``np.float32`` from a weather model, ...), or a
            mapping gid -> real for per-station values (e.g. a weather
            model's effective elevations).
        policy: Satellite selection policy.
        excluded_satellites: Satellites no GS may link to (failed ones).

    Returns:
        Mapping gid -> :class:`GslEdges`.  Stations that see no satellite
        get an empty edge set (they are disconnected at this instant).

    All stations' elevations and slant ranges come from one batched
    station x satellite computation
    (:func:`~repro.ground.visibility.batched_elevation_angles_deg`) —
    this function sits on the per-snapshot hot path of both the
    forwarding controller and the sweep workers.
    """
    edges: Dict[int, GslEdges] = {}
    if not stations:
        return edges
    if isinstance(min_elevation_deg, numbers.Real):
        thresholds = np.full(len(stations), float(min_elevation_deg))
    else:
        thresholds = np.array([float(min_elevation_deg[station.gid])
                               for station in stations])
    elevations, distances = batched_elevation_angles_deg(
        stations, satellite_positions_ecef_m)
    visible_mask = elevations >= thresholds[:, None]
    excluded = None
    if excluded_satellites:
        excluded = np.fromiter(excluded_satellites, dtype=np.int64,
                               count=len(excluded_satellites))
    for row, station in enumerate(stations):
        visible = np.nonzero(visible_mask[row])[0]
        if excluded is not None:
            # np.isin keeps the int64 dtype even when it empties the set.
            visible = visible[~np.isin(visible, excluded)]
        if len(visible) == 0:
            edges[station.gid] = GslEdges(
                gid=station.gid,
                satellite_ids=np.empty(0, dtype=np.int64),
                lengths_m=np.empty(0))
            continue
        lengths = distances[row, visible]
        if policy is GslPolicy.NEAREST_ONLY:
            best = int(np.argmin(lengths))
            visible = visible[best:best + 1]
            lengths = lengths[best:best + 1]
        edges[station.gid] = GslEdges(
            gid=station.gid,
            satellite_ids=visible.astype(np.int64),
            lengths_m=lengths)
    return edges
