"""Dynamic state: forwarding/path evolution over discrete time steps.

Paper §3.1/§5.3: Hypatia converts the continuous process of satellite
motion into discrete intervals (default 100 ms) at which forwarding state
is recomputed; link latencies stay continuous in between.  This module
drives that schedule: it walks the snapshots, records each tracked pair's
shortest path and distance, and exposes the timelines downstream analyses
(Figs. 3, 6-9) consume.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.constants import SPEED_OF_LIGHT_M_PER_S
from .network import LeoNetwork

__all__ = ["snapshot_times", "PairTimeline", "DynamicState",
           "satellites_of_path", "count_path_changes",
           "compute_pair_chunk", "make_routing_engine"]


def snapshot_times(duration_s: float, step_s: float) -> np.ndarray:
    """The forwarding-state update instants: 0, step, 2*step, ... < duration.

    Args:
        duration_s: Simulation duration.
        step_s: Time-step granularity (paper default 0.1 s).
    """
    if duration_s <= 0.0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if step_s <= 0.0:
        raise ValueError(f"step must be positive, got {step_s}")
    # ceil(duration / step) in floats can land one tick past the end in
    # either direction (8.2 / 0.1 rounds up to 83; a downward-rounding
    # quotient could lose a valid tick), so over-generate by one and trim
    # to the defining property: exactly the ticks whose float64 value
    # k * step is strictly below the duration.
    count = int(np.ceil(duration_s / step_s))
    times = np.arange(count + 1) * step_s
    return times[times < duration_s]


def satellites_of_path(path: Optional[Sequence[int]],
                       num_satellites: int) -> frozenset:
    """The set of satellite ids composing a path (endpoints excluded).

    Paper §5.2 counts a "path change" whenever this set differs between two
    successive time steps.
    """
    if path is None:
        return frozenset()
    return frozenset(node for node in path if node < num_satellites)


@dataclass
class PairTimeline:
    """Per-snapshot path history of one GS pair.

    Attributes:
        src_gid: Source ground station id.
        dst_gid: Destination ground station id.
        times_s: (T,) snapshot times.
        distances_m: (T,) shortest-path distance; inf while disconnected.
        paths: T node-id tuples (None while disconnected).
    """

    src_gid: int
    dst_gid: int
    times_s: np.ndarray
    distances_m: np.ndarray
    paths: List[Optional[Tuple[int, ...]]] = field(default_factory=list)

    @property
    def rtts_s(self) -> np.ndarray:
        """Propagation-only RTT series (seconds); inf while disconnected."""
        return 2.0 * self.distances_m / SPEED_OF_LIGHT_M_PER_S

    @property
    def connected_mask(self) -> np.ndarray:
        """(T,) bool: snapshots at which the pair had a path."""
        return np.isfinite(self.distances_m)

    def hop_counts(self) -> np.ndarray:
        """(T,) number of hops (edges) per snapshot; -1 while disconnected.

        Always ``int64``, including the empty and the all-disconnected
        cases (an untyped ``np.array([])`` would silently be float64).
        """
        return np.array([
            len(path) - 1 if path is not None else -1 for path in self.paths
        ], dtype=np.int64)

    def satellite_sets(self, num_satellites: int) -> List[frozenset]:
        """Per-snapshot satellite membership of the path."""
        return [satellites_of_path(path, num_satellites)
                for path in self.paths]


def count_path_changes(satellite_sets: Sequence[frozenset]) -> int:
    """Number of snapshot-to-snapshot changes in path satellite membership.

    Transitions into or out of disconnection (empty set) count as changes,
    except that the initial state establishes the baseline without counting.
    """
    changes = 0
    for previous, current in zip(satellite_sets, satellite_sets[1:]):
        if current != previous:
            changes += 1
    return changes


def make_routing_engine(network: LeoNetwork, routing: str = "incremental"):
    """Build the routing engine a timeline walk should use.

    ``"incremental"`` (the default everywhere) repairs destination trees
    between consecutive snapshots when the topology delta is sparse and
    falls back to the batched from-scratch Dijkstra otherwise — always
    bit-identical to ``"scratch"`` (see :mod:`repro.routing.incremental`).
    """
    # Imported here: repro.routing depends on repro.topology for its
    # type signatures, so a module-level import would be circular.
    if routing == "incremental":
        from ..routing.incremental import IncrementalRouter
        return IncrementalRouter(network)
    if routing == "scratch":
        from ..routing.engine import RoutingEngine
        return RoutingEngine(network)
    raise ValueError(f"unknown routing mode {routing!r}; "
                     f"expected 'incremental' or 'scratch'")


def compute_pair_chunk(network: LeoNetwork,
                       pairs: Sequence[Tuple[int, int]],
                       times_s: np.ndarray,
                       engine=None,
                       routing: str = "incremental",
                       ) -> Dict[Tuple[int, int],
                                 Tuple[np.ndarray,
                                       List[Optional[Tuple[int, ...]]]]]:
    """Per-snapshot distances and paths of ``pairs`` over ``times_s``.

    The shared inner loop of :meth:`DynamicState.compute` and the sweep
    workers (:mod:`repro.sweep`): a module-level function so
    multiprocessing can pickle it by reference, operating on a contiguous
    chunk of the snapshot schedule.  All destination trees of one
    snapshot come from a single batched Dijkstra
    (:meth:`RoutingEngine.route_to_many`), repaired incrementally between
    snapshots when the topology delta is sparse (the default ``routing``).

    Args:
        network: The LEO network to snapshot.
        pairs: (src_gid, dst_gid) pairs to track.
        times_s: The snapshot instants of this chunk, ascending.
        engine: Optional pre-built :class:`RoutingEngine` over ``network``
            (one is created when omitted; overrides ``routing``).
        routing: ``"incremental"`` or ``"scratch"`` — see
            :func:`make_routing_engine`.  Bit-identical results either
            way; incremental is faster under sparse topology deltas.

    Returns:
        pair -> ``(distances_m, paths)`` with ``distances_m`` of shape
        ``(len(times_s),)`` (inf while disconnected) and ``paths`` a list
        of node-id tuples (None while disconnected).
    """
    if engine is None:
        engine = make_routing_engine(network, routing)
    pairs = [(int(src), int(dst)) for src, dst in pairs]
    distances = {pair: np.full(len(times_s), np.inf) for pair in pairs}
    paths: Dict[Tuple[int, int], List[Optional[Tuple[int, ...]]]] = {
        pair: [] for pair in pairs}
    destinations = sorted({dst for _, dst in pairs})
    for t_index, time_s in enumerate(times_s):
        snapshot = network.snapshot(float(time_s))
        multi = engine.route_to_many(snapshot, destinations)
        for pair in pairs:
            src_gid, dst_gid = pair
            routing_state = multi.routing_for(dst_gid)
            path, distance = engine.path_and_distance_via(
                routing_state, snapshot, src_gid)
            if path is None:
                paths[pair].append(None)
                continue
            distances[pair][t_index] = distance
            paths[pair].append(tuple(path))
    return {pair: (distances[pair], paths[pair]) for pair in pairs}


class DynamicState:
    """Walks a network's snapshots and records tracked-pair timelines.

    Args:
        network: The LEO network.
        pairs: (src_gid, dst_gid) pairs to track.
        duration_s: How long to simulate.
        step_s: Forwarding-state recomputation interval.

    Example:
        >>> state = DynamicState(network, [(0, 5)], duration_s=10.0,
        ...                      step_s=1.0)
        >>> timelines = state.compute()
        >>> timelines[(0, 5)].rtts_s.shape
        (10,)
    """

    def __init__(self, network: LeoNetwork,
                 pairs: Sequence[Tuple[int, int]],
                 duration_s: float, step_s: float = 0.1,
                 routing: str = "incremental") -> None:
        if not pairs:
            raise ValueError("need at least one pair to track")
        for src, dst in pairs:
            if src == dst:
                raise ValueError(f"pair ({src}, {dst}) has equal endpoints")
        self.network = network
        self.pairs = [(int(s), int(d)) for s, d in pairs]
        self.times_s = snapshot_times(duration_s, step_s)
        self.step_s = step_s
        self.routing = routing
        self.engine = make_routing_engine(network, routing)

    def compute(self, workers: Optional[int] = None,
                metrics=None) -> Dict[Tuple[int, int], PairTimeline]:
        """Run the schedule and return one timeline per tracked pair.

        All destination trees of one snapshot come from a single batched
        Dijkstra (:meth:`RoutingEngine.route_to_many`), so tracking a full
        permutation traffic matrix costs one C-level graph sweep per
        snapshot rather than one Python-level call per destination.

        Args:
            workers: Number of worker processes for the snapshot sweep.
                ``None`` or 1 runs serially in-process; larger values
                shard the schedule into contiguous chunks evaluated by
                :func:`repro.sweep.sweep_timelines` — results are
                bit-identical to the serial walk, merged in time order.
                Requires the network to be expressible as a picklable
                :class:`repro.sweep.NetworkSpec` (a registered ISL
                builder; see :func:`repro.sweep.register_isl_builder`).
            metrics: Optional :class:`repro.obs.MetricsRegistry`
                receiving per-worker timing series (``sweep.*``).
        """
        if workers is not None:
            # Imported lazily: repro.sweep builds on this module.
            from ..sweep import resolve_workers
            workers = resolve_workers(workers)
        if workers is not None and workers > 1:
            from ..sweep import NetworkSpec, sweep_timelines
            return sweep_timelines(
                NetworkSpec.from_network(self.network), self.pairs,
                self.times_s, workers=workers, metrics=metrics,
                routing=self.routing, network=self.network)
        started = time.perf_counter()
        chunk = compute_pair_chunk(self.network, self.pairs, self.times_s,
                                   engine=self.engine)
        if metrics is not None:
            # Same instrument names the parallel engine publishes, so
            # consumers (e.g. the sweep CLI) need not special-case serial
            # runs; build time is 0 — the network already exists here.
            from ..sweep import record_sweep_metrics
            wall_s = time.perf_counter() - started
            record_sweep_metrics(
                metrics, self.times_s,
                [(0, 0.0, wall_s, len(self.times_s), os.getpid(),
                  0, len(self.times_s))],
                effective_workers=1, wall_s=wall_s)
        return {
            pair: PairTimeline(src_gid=pair[0], dst_gid=pair[1],
                               times_s=self.times_s,
                               distances_m=distances, paths=paths)
            for pair, (distances, paths) in chunk.items()
        }
