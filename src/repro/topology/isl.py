"""Inter-satellite link (ISL) interconnect patterns.

Paper §3.1: the proposed mega-constellations hint at 4 ISLs per satellite,
and a large body of satellite-networking literature converges on the same
connectivity pattern — two links to the immediate neighbors in the orbit,
two links to satellites in adjacent orbits — forming the mesh recent work
calls "+Grid".  +Grid is Hypatia's default; constellations eschewing ISLs
entirely ("bent pipe", Appendix A) are supported by an empty interconnect.

ISLs are *static* in membership: which satellites are linked never changes
(ISL setup takes tens of seconds, so operators avoid dynamic re-targeting —
paper §3.1).  Only the link lengths change as satellites move.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..constellations.builder import Constellation
from ..orbits.shell import SatelliteIndex

__all__ = ["plus_grid_isls", "no_isls", "single_ring_isls",
           "validate_isl_pairs", "isl_lengths_m"]


def plus_grid_isls(constellation: Constellation) -> np.ndarray:
    """The +Grid interconnect: 4 ISLs per satellite, within each shell.

    Each satellite links to its predecessor and successor in the same orbit
    and to the same-slot satellite in the two adjacent orbits (all indices
    wrapping around).  Every undirected link appears exactly once.

    Args:
        constellation: The constellation to wire up.  Multi-shell
            constellations get an independent +Grid per shell (no
            inter-shell ISLs, matching the paper's model).

    Returns:
        (L, 2) int array of global satellite-id pairs with ``a < b`` per row.
    """
    pairs: List[Tuple[int, int]] = []
    for shell in constellation.shells:
        for index in shell.iter_indices():
            this_id = constellation.satellite_id(shell.name, index)
            # Forward links only; the wrap-around partner emits the reverse.
            next_in_orbit = SatelliteIndex(
                index.orbit,
                (index.position_in_orbit + 1) % shell.satellites_per_orbit)
            next_orbit = SatelliteIndex(
                (index.orbit + 1) % shell.num_orbits, index.position_in_orbit)
            for neighbor in (next_in_orbit, next_orbit):
                other_id = constellation.satellite_id(shell.name, neighbor)
                if other_id != this_id:
                    pairs.append((min(this_id, other_id),
                                  max(this_id, other_id)))
    unique = sorted(set(pairs))
    if not unique:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(unique, dtype=np.int64)


def single_ring_isls(constellation: Constellation) -> np.ndarray:
    """Intra-orbit-only ISLs: 2 per satellite, no cross-orbit links.

    Not a paper configuration, but a useful ablation: it isolates how much
    of +Grid's path diversity comes from the inter-orbit links.
    """
    pairs: List[Tuple[int, int]] = []
    for shell in constellation.shells:
        if shell.satellites_per_orbit < 2:
            continue
        for index in shell.iter_indices():
            this_id = constellation.satellite_id(shell.name, index)
            next_in_orbit = SatelliteIndex(
                index.orbit,
                (index.position_in_orbit + 1) % shell.satellites_per_orbit)
            other_id = constellation.satellite_id(shell.name, next_in_orbit)
            if other_id != this_id:
                pairs.append((min(this_id, other_id), max(this_id, other_id)))
    unique = sorted(set(pairs))
    if not unique:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(unique, dtype=np.int64)


def no_isls(constellation: Constellation) -> np.ndarray:
    """The bent-pipe interconnect of Appendix A: no ISLs at all."""
    _ = constellation
    return np.empty((0, 2), dtype=np.int64)


def validate_isl_pairs(pairs: np.ndarray, num_satellites: int) -> None:
    """Sanity-check a custom ISL pair array.

    Raises:
        ValueError: On out-of-range ids, self-links, or duplicate links.
    """
    pairs = np.asarray(pairs)
    if pairs.size == 0:
        return
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"ISL pairs must be (L, 2), got {pairs.shape}")
    if pairs.min() < 0 or pairs.max() >= num_satellites:
        raise ValueError("ISL pair references a satellite id out of range")
    if (pairs[:, 0] == pairs[:, 1]).any():
        raise ValueError("ISL pair links a satellite to itself")
    canonical = {tuple(sorted(map(int, row))) for row in pairs}
    if len(canonical) != len(pairs):
        raise ValueError("duplicate ISL pairs")


def isl_lengths_m(pairs: np.ndarray,
                  satellite_positions_m: np.ndarray) -> np.ndarray:
    """Length of every ISL given current satellite positions.

    Args:
        pairs: (L, 2) satellite-id pairs.
        satellite_positions_m: (N, 3) positions (any Cartesian frame).

    Returns:
        (L,) link lengths in meters.
    """
    pairs = np.asarray(pairs)
    if pairs.size == 0:
        return np.empty(0)
    delta = (satellite_positions_m[pairs[:, 0]]
             - satellite_positions_m[pairs[:, 1]])
    return np.linalg.norm(delta, axis=1)
