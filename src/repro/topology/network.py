"""The time-varying LEO network model and its instantaneous snapshots.

A :class:`LeoNetwork` bundles a constellation, a set of ground stations, an
ISL interconnect, and GSL connectivity parameters.  Calling
:meth:`LeoNetwork.snapshot` materializes the network at one instant: all
satellite positions, every ISL with its current length, and every
admissible GSL with its slant range.

Node numbering convention used by every downstream component (routing,
packet simulation, visualization):

* satellites occupy ids ``0 .. num_satellites-1`` (the constellation's
  global satellite ids);
* ground stations occupy ids ``num_satellites + gid``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional,
                    Sequence, Tuple)

import networkx as nx
import numpy as np

from ..constellations.builder import Constellation
from ..geo.constants import SPEED_OF_LIGHT_M_PER_S
from ..ground.stations import GroundStation
from .gsl import GslEdges, GslPolicy, compute_gsl_edges
from .isl import isl_lengths_m, plus_grid_isls, validate_isl_pairs

if TYPE_CHECKING:
    from ..faults.schedule import FaultSchedule
    from ..ground.weather import WeatherModel

__all__ = ["LeoNetwork", "TopologySnapshot"]


@dataclass(frozen=True)
class TopologySnapshot:
    """The network frozen at one instant.

    Attributes:
        time_s: Snapshot time (seconds past the epoch).
        satellite_positions_m: (N, 3) ECEF satellite positions.
        isl_pairs: (L, 2) satellite-id pairs of the static ISL interconnect.
        isl_lengths_m: (L,) current ISL lengths.
        gsl_edges: gid -> admissible GSLs right now.
        num_satellites: Satellite count N (GS node ids start here).
        num_ground_stations: Ground station count G.
        relay_gids: gids of relay ground stations (may forward traffic).
    """

    time_s: float
    satellite_positions_m: np.ndarray
    isl_pairs: np.ndarray
    isl_lengths_m: np.ndarray
    gsl_edges: Dict[int, GslEdges]
    num_satellites: int
    num_ground_stations: int
    relay_gids: frozenset = frozenset()

    @property
    def num_nodes(self) -> int:
        """Total node count (satellites + ground stations)."""
        return self.num_satellites + self.num_ground_stations

    def gs_node_id(self, gid: int) -> int:
        """Graph node id of ground station ``gid``."""
        if not 0 <= gid < self.num_ground_stations:
            raise ValueError(f"gid {gid} out of range "
                             f"[0, {self.num_ground_stations})")
        return self.num_satellites + gid

    def is_ground_node(self, node_id: int) -> bool:
        """Whether a node id denotes a ground station."""
        return node_id >= self.num_satellites

    def gsl_edge_arrays(self, gids: Sequence[int]
                        ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Concatenated GSL edge arrays of many ground stations.

        The batched routing path appends all destinations' GSLs to the
        transit graph in one shot; this assembles the COO triplets for it.

        Returns:
            ``(gs_nodes, satellite_ids, lengths_m)`` — equal-length arrays
            with one entry per admissible GSL of the listed stations, in
            input order.  Disconnected stations contribute nothing.
        """
        nodes_list: List[np.ndarray] = []
        sats_list: List[np.ndarray] = []
        lengths_list: List[np.ndarray] = []
        for gid in gids:
            edges = self.gsl_edges[gid]
            if not edges.is_connected:
                continue
            node = self.gs_node_id(gid)
            nodes_list.append(np.full(len(edges.satellite_ids), node,
                                      dtype=np.int64))
            sats_list.append(edges.satellite_ids.astype(np.int64))
            lengths_list.append(edges.lengths_m.astype(np.float64))
        if not nodes_list:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0))
        return (np.concatenate(nodes_list),
                np.concatenate(sats_list),
                np.concatenate(lengths_list))

    def to_networkx(self, weight: str = "distance_m") -> nx.Graph:
        """The snapshot as a weighted undirected networkx graph.

        Edge attributes: ``distance_m`` and ``delay_s`` (propagation).
        Satellite nodes get ``kind="satellite"``; GS nodes ``kind="gs"``.
        This is the representation the paper's own analysis pipeline uses
        (paper §3.1: "we use a networkx module to generate the network
        graph").
        """
        _ = weight  # both weights are always attached
        graph = nx.Graph()
        for sat_id in range(self.num_satellites):
            graph.add_node(sat_id, kind="satellite")
        for gid in range(self.num_ground_stations):
            graph.add_node(self.gs_node_id(gid), kind="gs", gid=gid,
                           is_relay=gid in self.relay_gids)
        for (a, b), length in zip(self.isl_pairs, self.isl_lengths_m):
            graph.add_edge(int(a), int(b), distance_m=float(length),
                           delay_s=float(length) / SPEED_OF_LIGHT_M_PER_S,
                           kind="isl")
        for gid, edges in self.gsl_edges.items():
            gs_node = self.gs_node_id(gid)
            for sat_id, length in zip(edges.satellite_ids, edges.lengths_m):
                graph.add_edge(gs_node, int(sat_id),
                               distance_m=float(length),
                               delay_s=float(length) / SPEED_OF_LIGHT_M_PER_S,
                               kind="gsl")
        return graph


class LeoNetwork:
    """A LEO constellation network whose topology evolves with time.

    Args:
        constellation: The satellites.
        ground_stations: The ground segment; gids must be 0..G-1 and match
            each station's position in the sequence.
        min_elevation_deg: Minimum GS elevation angle ``l``.
        isl_builder: Callable building the static ISL pair array from the
            constellation; defaults to +Grid.  Pass
            :func:`repro.topology.isl.no_isls` for bent-pipe experiments.
        gsl_policy: Satellite-selection policy for ground stations.
        weather: Optional rain model; internally folded into the fault
            schedule (one code path evaluates both).
        failed_satellites: Satellites dead for the whole run (their ISLs
            are dropped once, at construction).
        faults: Optional :class:`repro.faults.FaultSchedule`; snapshots
            at time *t* exclude nodes/edges faulted at *t*, so routing
            reroutes at the next forwarding tick and recovers when the
            event ends.

    Example:
        >>> from repro.constellations import Constellation, KUIPER_K1
        >>> from repro.ground import ground_stations_from_cities
        >>> network = LeoNetwork(Constellation([KUIPER_K1]),
        ...                      ground_stations_from_cities(count=10),
        ...                      min_elevation_deg=30.0)
        >>> snap = network.snapshot(0.0)
        >>> snap.num_nodes
        1166
    """

    def __init__(self, constellation: Constellation,
                 ground_stations: Sequence[GroundStation],
                 min_elevation_deg: float,
                 isl_builder: Callable[[Constellation], np.ndarray]
                 = plus_grid_isls,
                 gsl_policy: GslPolicy = GslPolicy.ALL_VISIBLE,
                 weather: Optional["WeatherModel"] = None,
                 failed_satellites: Sequence[int] = (),
                 faults: Optional["FaultSchedule"] = None) -> None:
        for i, station in enumerate(ground_stations):
            if station.gid != i:
                raise ValueError(
                    f"ground station gids must be consecutive from 0; "
                    f"position {i} has gid {station.gid}")
        if not 0.0 <= min_elevation_deg <= 90.0:
            raise ValueError(
                f"min elevation must be in [0, 90], got {min_elevation_deg}")
        self.constellation = constellation
        self.ground_stations: List[GroundStation] = list(ground_stations)
        self.min_elevation_deg = min_elevation_deg
        self.gsl_policy = gsl_policy
        self.weather = weather
        self.faults = faults
        # Rain is one producer of GSL attenuation faults: fold a weather
        # model into the (possibly empty) explicit schedule so snapshot()
        # evaluates both through a single code path.
        combined = faults
        if weather is not None and weather.num_events:
            from ..faults.schedule import FaultSchedule
            rain = FaultSchedule.from_weather(weather)
            combined = rain if combined is None else combined.merged(rain)
        self._fault_view = \
            combined if combined is not None and not combined.is_empty \
            else None
        # Memo of the last dynamically-masked ISL array: fault windows are
        # long relative to the 100 ms snapshot grid, so consecutive
        # snapshots usually share the same (outages, cuts) key.
        self._isl_mask_key: Optional[Tuple[FrozenSet[int],
                                           FrozenSet[Tuple[int, int]]]] = None
        self._isl_mask_pairs: Optional[np.ndarray] = None
        #: The builder callable, kept so :class:`repro.sweep.NetworkSpec`
        #: can reverse-map it to a picklable name for worker rebuilds.
        self.isl_builder = isl_builder
        self.failed_satellites = frozenset(int(s) for s in failed_satellites)
        for sat in self.failed_satellites:
            if not 0 <= sat < constellation.num_satellites:
                raise ValueError(f"failed satellite {sat} out of range")
        if faults is not None:
            for event in faults:
                if event.satellite is not None and not \
                        0 <= event.satellite < constellation.num_satellites:
                    raise ValueError(
                        f"fault satellite {event.satellite} out of range")
                if event.gid is not None and not \
                        0 <= event.gid < len(self.ground_stations):
                    raise ValueError(f"fault gid {event.gid} out of range")
        self.isl_pairs = np.asarray(isl_builder(constellation))
        validate_isl_pairs(self.isl_pairs, constellation.num_satellites)
        if self.failed_satellites and len(self.isl_pairs):
            alive = np.array([
                a not in self.failed_satellites
                and b not in self.failed_satellites
                for a, b in self.isl_pairs
            ])
            self.isl_pairs = self.isl_pairs[alive]

    @property
    def fault_view(self) -> Optional["FaultSchedule"]:
        """The combined fault schedule snapshots evaluate (explicit
        faults plus weather-derived attenuation), or None when no fault
        can ever be active."""
        return self._fault_view

    def set_faults(self, faults: Optional["FaultSchedule"]) -> None:
        """Replace the explicit fault schedule on a live network.

        Rebuilds the combined fault view (explicit + weather) and drops
        the ISL-mask memo, so the next snapshot evaluates the new
        schedule; :class:`repro.service.LiveSimulationService` uses this
        to inject faults while the constellation flies.  Event bounds
        are validated like at construction.
        """
        if faults is not None:
            for event in faults:
                if event.satellite is not None and not \
                        0 <= event.satellite < self.constellation.num_satellites:
                    raise ValueError(
                        f"fault satellite {event.satellite} out of range")
                if event.gid is not None and not \
                        0 <= event.gid < len(self.ground_stations):
                    raise ValueError(f"fault gid {event.gid} out of range")
        self.faults = faults
        combined = faults
        if self.weather is not None and self.weather.num_events:
            from ..faults.schedule import FaultSchedule
            rain = FaultSchedule.from_weather(self.weather)
            combined = rain if combined is None else combined.merged(rain)
        self._fault_view = \
            combined if combined is not None and not combined.is_empty \
            else None
        self._isl_mask_key = None
        self._isl_mask_pairs = None

    @property
    def num_satellites(self) -> int:
        return self.constellation.num_satellites

    @property
    def num_ground_stations(self) -> int:
        return len(self.ground_stations)

    @property
    def num_nodes(self) -> int:
        return self.num_satellites + self.num_ground_stations

    def gs_node_id(self, gid: int) -> int:
        """Graph node id of ground station ``gid``."""
        if not 0 <= gid < self.num_ground_stations:
            raise ValueError(f"gid {gid} out of range")
        return self.num_satellites + gid

    def station_by_name(self, name: str) -> GroundStation:
        """Find a ground station by name.

        Raises:
            KeyError: If no station has that name.
        """
        for station in self.ground_stations:
            if station.name == name:
                return station
        raise KeyError(f"no ground station named {name!r}")

    def _masked_isl_pairs(self, outaged: FrozenSet[int],
                          cut: FrozenSet[Tuple[int, int]]) -> np.ndarray:
        """ISL pairs minus links touching an outaged satellite or cut
        outright, memoized on the (outages, cuts) key — fault windows are
        long relative to the snapshot grid, so the key rarely changes."""
        key = (outaged, cut)
        if key == self._isl_mask_key and self._isl_mask_pairs is not None:
            return self._isl_mask_pairs
        alive = np.array([
            a not in outaged and b not in outaged
            and (min(a, b), max(a, b)) not in cut
            for a, b in self.isl_pairs
        ]) if len(self.isl_pairs) else np.empty(0, dtype=bool)
        self._isl_mask_key = key
        self._isl_mask_pairs = self.isl_pairs[alive] \
            if len(self.isl_pairs) else self.isl_pairs
        return self._isl_mask_pairs

    def snapshot(self, time_s: float) -> TopologySnapshot:
        """Materialize the topology at ``time_s``.

        Fault events active at ``time_s`` (including rain, folded into
        the fault view) are excluded: outaged satellites lose their ISLs
        and GSLs, cut ISLs vanish, cut stations are disconnected, and
        attenuated stations see a higher effective minimum elevation.
        Statically failed satellites carry no GSLs (their ISLs were
        already dropped at construction).
        """
        positions = self.constellation.positions_ecef_m(time_s)
        isl_pairs = self.isl_pairs
        excluded = self.failed_satellites
        cut_gids: FrozenSet[int] = frozenset()
        faults = self._fault_view
        if faults is not None:
            outaged = faults.failed_satellites_at(time_s)
            cut_isls = faults.cut_isls_at(time_s)
            if outaged or cut_isls:
                isl_pairs = self._masked_isl_pairs(outaged, cut_isls)
            if outaged:
                excluded = excluded | outaged
            cut_gids = faults.cut_gids_at(time_s)
        if faults is not None or self.weather is not None:
            elevation = {}
            for station in self.ground_stations:
                if station.gid in cut_gids:
                    elevation[station.gid] = float("inf")
                    continue
                penalty = faults.elevation_penalty_deg(
                    station.gid, time_s) if faults is not None else 0.0
                elevation[station.gid] = min(
                    90.0, self.min_elevation_deg + penalty)
        else:
            elevation = self.min_elevation_deg
        return TopologySnapshot(
            time_s=time_s,
            satellite_positions_m=positions,
            isl_pairs=isl_pairs,
            isl_lengths_m=isl_lengths_m(isl_pairs, positions),
            gsl_edges=compute_gsl_edges(
                self.ground_stations, positions,
                elevation, self.gsl_policy,
                excluded_satellites=excluded or None),
            num_satellites=self.num_satellites,
            num_ground_stations=self.num_ground_stations,
            relay_gids=frozenset(
                station.gid for station in self.ground_stations
                if station.is_relay),
        )
