"""Deterministic fault schedules: what breaks, when, and for how long.

Paper §7 invites reliability work ("rerouting around failures and bad
weather").  This module is the repo's fault model: a
:class:`FaultSchedule` is an explicit, seeded, *plain-data* list of
:class:`FaultEvent` s — satellite outages, ISL cuts, ground-station (GSL)
cuts, rain-style elevation attenuation, and stochastic per-link packet
loss/corruption — each with a start and an end (recovery).

Design contract (the determinism the test suite enforces):

* A schedule is pure data: frozen dataclasses, picklable, JSON
  round-trippable.  It crosses the sweep-engine process boundary inside
  :class:`repro.sweep.NetworkSpec` untouched, so ``workers=N`` stays
  bit-identical to serial.
* All queries are functions of time only.  Overlapping events *stack*
  order-independently: elevation penalties add, loss rates combine as
  ``1 - prod(1 - r_i)``.
* Topology faults (outages/cuts) act through
  :meth:`repro.topology.network.LeoNetwork.snapshot` — routing reroutes
  at the next forwarding tick, never retroactively.
* Packet-level faults (loss/corruption) act through the per-device
  seeded Bernoulli hook (:class:`repro.faults.injector.LinkFaultInjector`),
  whose RNG stream depends only on ``(schedule.seed, device name)``.

The weather model is one *producer* of fault events:
:meth:`FaultSchedule.from_weather` maps every
:class:`~repro.ground.weather.RainEvent` to an equivalent
``GSL_ATTENUATION`` event, and :class:`LeoNetwork` evaluates both through
the same code path.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass
from typing import (Any, Dict, FrozenSet, Hashable, Iterator, List, Optional,
                    Sequence, Tuple)

from ..ground.weather import WeatherModel

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]


class FaultKind(enum.Enum):
    """The fault-event taxonomy (see DESIGN.md "Fault model")."""

    #: A satellite goes dark: all its ISLs and GSLs vanish while active.
    SATELLITE_OUTAGE = "satellite_outage"

    #: One inter-satellite link is cut (both directions).
    ISL_CUT = "isl_cut"

    #: A ground station loses all its GSLs (uplink and downlink).
    GSL_CUT = "gsl_cut"

    #: A ground station's effective minimum elevation rises by
    #: ``elevation_penalty_deg`` (rain attenuation; >= 90 is a full cut).
    GSL_ATTENUATION = "gsl_attenuation"

    #: Stochastic packet loss at rate ``rate`` on one link's devices.
    PACKET_LOSS = "packet_loss"

    #: Stochastic packet corruption at rate ``rate`` (corrupted packets
    #: are discarded at the transmitter, like loss, but accounted apart).
    PACKET_CORRUPTION = "packet_corruption"


#: Kinds that target an ISL / a ground station, for validation.
_ISL_KINDS = (FaultKind.ISL_CUT, FaultKind.PACKET_LOSS,
              FaultKind.PACKET_CORRUPTION)
_GID_KINDS = (FaultKind.GSL_CUT, FaultKind.GSL_ATTENUATION,
              FaultKind.PACKET_LOSS, FaultKind.PACKET_CORRUPTION)


@dataclass(frozen=True)
class FaultEvent:
    """One fault episode, active over ``[start_s, end_s)``.

    Exactly one target field is set, depending on ``kind``:
    ``satellite`` (SATELLITE_OUTAGE), ``isl`` (ISL_CUT, or loss/corruption
    on an ISL), or ``gid`` (GSL_CUT / GSL_ATTENUATION, or loss/corruption
    on a station's uplink device).  Use the classmethod constructors.

    Attributes:
        kind: The fault taxonomy entry.
        start_s / end_s: Active interval (end exclusive — recovery time).
        satellite: Failed satellite id (SATELLITE_OUTAGE only).
        isl: Normalized ``(min, max)`` satellite pair of the targeted ISL.
        gid: Targeted ground station.
        rate: Per-packet drop probability (loss/corruption kinds).
        elevation_penalty_deg: Added minimum elevation (GSL_ATTENUATION).
    """

    kind: FaultKind
    start_s: float
    end_s: float
    satellite: Optional[int] = None
    isl: Optional[Tuple[int, int]] = None
    gid: Optional[int] = None
    rate: float = 1.0
    elevation_penalty_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(
                f"fault must end after it starts "
                f"({self.start_s} .. {self.end_s})")
        targets = [t is not None for t in (self.satellite, self.isl,
                                           self.gid)]
        if sum(targets) != 1:
            raise ValueError("exactly one of satellite/isl/gid must be set")
        if self.kind is FaultKind.SATELLITE_OUTAGE and self.satellite is None:
            raise ValueError("satellite outage needs a satellite target")
        if self.kind is FaultKind.ISL_CUT and self.isl is None:
            raise ValueError("ISL cut needs an isl target")
        if self.kind in (FaultKind.GSL_CUT, FaultKind.GSL_ATTENUATION) \
                and self.gid is None:
            raise ValueError(f"{self.kind.value} needs a gid target")
        if self.isl is not None:
            a, b = self.isl
            if a == b:
                raise ValueError("ISL endpoints must differ")
            if (a, b) != (min(a, b), max(a, b)):
                raise ValueError(
                    f"isl pair must be normalized (min, max), got {self.isl}")
        if self.kind in (FaultKind.PACKET_LOSS, FaultKind.PACKET_CORRUPTION):
            if not 0.0 < self.rate <= 1.0:
                raise ValueError(
                    f"loss/corruption rate must be in (0, 1], got {self.rate}")
        if self.elevation_penalty_deg < 0.0:
            raise ValueError("elevation penalty must be non-negative")
        if self.kind is FaultKind.GSL_ATTENUATION \
                and self.elevation_penalty_deg == 0.0:
            raise ValueError("attenuation needs a positive penalty")

    # -- constructors ---------------------------------------------------

    @classmethod
    def satellite_outage(cls, satellite: int, start_s: float,
                         end_s: float) -> "FaultEvent":
        """A satellite goes dark over ``[start_s, end_s)``."""
        return cls(FaultKind.SATELLITE_OUTAGE, start_s, end_s,
                   satellite=int(satellite))

    @classmethod
    def isl_cut(cls, sat_a: int, sat_b: int, start_s: float,
                end_s: float) -> "FaultEvent":
        """One ISL is cut (both directions)."""
        a, b = int(sat_a), int(sat_b)
        return cls(FaultKind.ISL_CUT, start_s, end_s,
                   isl=(min(a, b), max(a, b)))

    @classmethod
    def gsl_cut(cls, gid: int, start_s: float, end_s: float) -> "FaultEvent":
        """A ground station loses all GSL connectivity."""
        return cls(FaultKind.GSL_CUT, start_s, end_s, gid=int(gid))

    @classmethod
    def gsl_attenuation(cls, gid: int, start_s: float, end_s: float,
                        elevation_penalty_deg: float) -> "FaultEvent":
        """Rain-style elevation penalty over one station."""
        return cls(FaultKind.GSL_ATTENUATION, start_s, end_s, gid=int(gid),
                   elevation_penalty_deg=float(elevation_penalty_deg))

    @classmethod
    def packet_loss(cls, start_s: float, end_s: float, rate: float,
                    isl: Optional[Tuple[int, int]] = None,
                    gid: Optional[int] = None) -> "FaultEvent":
        """Stochastic loss on an ISL (both directions) or a GS uplink."""
        if isl is not None:
            a, b = int(isl[0]), int(isl[1])
            isl = (min(a, b), max(a, b))
        return cls(FaultKind.PACKET_LOSS, start_s, end_s, isl=isl,
                   gid=int(gid) if gid is not None else None,
                   rate=float(rate))

    @classmethod
    def packet_corruption(cls, start_s: float, end_s: float, rate: float,
                          isl: Optional[Tuple[int, int]] = None,
                          gid: Optional[int] = None) -> "FaultEvent":
        """Stochastic corruption on an ISL or a GS uplink."""
        if isl is not None:
            a, b = int(isl[0]), int(isl[1])
            isl = (min(a, b), max(a, b))
        return cls(FaultKind.PACKET_CORRUPTION, start_s, end_s, isl=isl,
                   gid=int(gid) if gid is not None else None,
                   rate=float(rate))

    # -- queries --------------------------------------------------------

    def active_at(self, time_s: float) -> bool:
        """Whether the event is active at ``time_s`` (end exclusive)."""
        return self.start_s <= time_s < self.end_s

    @property
    def is_stochastic(self) -> bool:
        """Loss/corruption events act per packet, not on the topology."""
        return self.kind in (FaultKind.PACKET_LOSS,
                             FaultKind.PACKET_CORRUPTION)

    # -- (de)serialization ----------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Compact JSON-friendly form (sentinel fields omitted)."""
        record: Dict[str, Any] = {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }
        if self.satellite is not None:
            record["satellite"] = self.satellite
        if self.isl is not None:
            record["isl"] = list(self.isl)
        if self.gid is not None:
            record["gid"] = self.gid
        if self.is_stochastic:
            record["rate"] = self.rate
        if self.kind is FaultKind.GSL_ATTENUATION:
            record["elevation_penalty_deg"] = self.elevation_penalty_deg
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultEvent":
        isl = record.get("isl")
        return cls(
            kind=FaultKind(record["kind"]),
            start_s=float(record["start_s"]),
            end_s=float(record["end_s"]),
            satellite=record.get("satellite"),
            isl=tuple(int(s) for s in isl) if isl is not None else None,
            gid=record.get("gid"),
            rate=float(record.get("rate", 1.0)),
            elevation_penalty_deg=float(
                record.get("elevation_penalty_deg", 0.0)),
        )


def _sort_key(event: FaultEvent) -> tuple:
    """Total, content-only order — schedules with equal events compare
    and iterate identically regardless of construction order."""
    return (event.start_s, event.end_s, event.kind.value,
            -1 if event.satellite is None else event.satellite,
            event.isl if event.isl is not None else (-1, -1),
            -1 if event.gid is None else event.gid,
            event.rate, event.elevation_penalty_deg)


class FaultSchedule:
    """An immutable, time-queryable collection of fault events.

    Args:
        events: The fault events, any order (stored schedule-sorted).
        seed: Base seed of the packet-level Bernoulli streams (each
            device derives its own stream from ``(seed, device name)``).

    Example::

        schedule = FaultSchedule([
            FaultEvent.satellite_outage(17, start_s=30.0, end_s=90.0),
            FaultEvent.packet_loss(10.0, 20.0, rate=0.05, isl=(3, 4)),
        ])
        network = LeoNetwork(..., faults=schedule)
    """

    def __init__(self, events: Sequence[FaultEvent] = (),
                 seed: int = 0) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=_sort_key))
        self.seed = int(seed)

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events and self.seed == other.seed

    def __repr__(self) -> str:
        return (f"FaultSchedule({len(self.events)} events, "
                f"seed={self.seed})")

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def end_s(self) -> float:
        """When the last event recovers (0 for an empty schedule)."""
        return max((event.end_s for event in self.events), default=0.0)

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """Union of two schedules (keeps this schedule's seed)."""
        return FaultSchedule(self.events + other.events, seed=self.seed)

    # -- time queries (all pure functions of t) -------------------------

    def active_at(self, time_s: float) -> List[FaultEvent]:
        """Every event active at ``time_s``, in schedule order."""
        return [event for event in self.events if event.active_at(time_s)]

    def failed_satellites_at(self, time_s: float) -> FrozenSet[int]:
        """Satellites in outage at ``time_s``."""
        return frozenset(
            event.satellite for event in self.events
            if event.kind is FaultKind.SATELLITE_OUTAGE
            and event.active_at(time_s))

    def cut_isls_at(self, time_s: float) -> FrozenSet[Tuple[int, int]]:
        """Normalized (min, max) pairs of ISLs cut at ``time_s``."""
        return frozenset(
            event.isl for event in self.events
            if event.kind is FaultKind.ISL_CUT and event.active_at(time_s))

    def cut_gids_at(self, time_s: float) -> FrozenSet[int]:
        """Ground stations with all GSLs cut at ``time_s``."""
        return frozenset(
            event.gid for event in self.events
            if event.kind is FaultKind.GSL_CUT and event.active_at(time_s))

    def elevation_penalty_deg(self, gid: int, time_s: float) -> float:
        """Summed attenuation penalty over station ``gid`` at ``time_s``.

        Addition is commutative, so overlapping events stack
        order-independently (the property test's invariant).
        """
        return sum(event.elevation_penalty_deg for event in self.events
                   if event.kind is FaultKind.GSL_ATTENUATION
                   and event.gid == gid and event.active_at(time_s))

    def loss_events_for_isl(self, sat_a: int, sat_b: int
                            ) -> Tuple[FaultEvent, ...]:
        """Loss/corruption events targeting one ISL (any direction)."""
        key = (min(sat_a, sat_b), max(sat_a, sat_b))
        return tuple(event for event in self.events
                     if event.is_stochastic and event.isl == key)

    def loss_events_for_gid(self, gid: int) -> Tuple[FaultEvent, ...]:
        """Loss/corruption events targeting one station's uplink."""
        return tuple(event for event in self.events
                     if event.is_stochastic and event.gid == gid)

    def combined_rate(self, events: Sequence[FaultEvent],
                      time_s: float) -> float:
        """Active events' rates combined as independent Bernoulli trials:
        ``1 - prod(1 - r_i)`` — order-independent by construction."""
        survive = 1.0
        for event in events:
            if event.active_at(time_s):
                survive *= 1.0 - event.rate
        return 1.0 - survive

    def capacity_factor(self, device: Hashable, num_satellites: int,
                        time_s: float) -> float:
        """Effective capacity multiplier of a fluid-engine device key.

        Device keys follow :func:`repro.fluid.engine.path_devices`:
        ``(a, b)`` for a directed ISL, ``("gsl", node)`` for a node's
        shared GSL device.  Cut/outaged links are zero-capacity; active
        loss/corruption scales capacity by the expected survival rate.
        """
        if isinstance(device, tuple) and len(device) == 2 \
                and device[0] == "gsl":
            node = int(device[1])
            if node < num_satellites:
                if node in self.failed_satellites_at(time_s):
                    return 0.0
                return 1.0
            gid = node - num_satellites
            if gid in self.cut_gids_at(time_s):
                return 0.0
            return 1.0 - self.combined_rate(
                self.loss_events_for_gid(gid), time_s)
        a, b = int(device[0]), int(device[1])
        failed = self.failed_satellites_at(time_s)
        if a in failed or b in failed:
            return 0.0
        if (min(a, b), max(a, b)) in self.cut_isls_at(time_s):
            return 0.0
        return 1.0 - self.combined_rate(
            self.loss_events_for_isl(a, b), time_s)

    # -- producers ------------------------------------------------------

    @classmethod
    def from_weather(cls, weather: WeatherModel,
                     seed: int = 0) -> "FaultSchedule":
        """The weather model expressed as GSL attenuation fault events.

        This is the unification hook: :class:`LeoNetwork` folds a
        configured :class:`~repro.ground.weather.WeatherModel` into its
        fault schedule through this conversion, so rain and explicit
        faults act through one code path.  Penalties sum identically to
        :meth:`WeatherModel.penalty_deg`.
        """
        return cls([
            FaultEvent.gsl_attenuation(
                rain.gid, rain.start_s, rain.end_s,
                elevation_penalty_deg=rain.elevation_penalty_deg)
            for rain in weather.iter_events()
            if rain.elevation_penalty_deg > 0.0
        ], seed=seed)

    @classmethod
    def synthetic(cls, num_satellites: int, num_stations: int,
                  duration_s: float, seed: int = 0,
                  satellite_outage_probability: float = 0.02,
                  gsl_cut_probability: float = 0.05,
                  loss_probability: float = 0.05,
                  mean_duration_s: float = 30.0,
                  mean_loss_rate: float = 0.05,
                  isl_pairs: Optional[Sequence[Tuple[int, int]]] = None,
                  isl_cut_probability: float = 0.002,
                  ) -> "FaultSchedule":
        """A seeded random fault schedule (mirrors
        :meth:`WeatherModel.synthetic`).

        Each satellite independently suffers an outage with
        ``satellite_outage_probability``; each station a GSL cut with
        ``gsl_cut_probability`` and a lossy-uplink episode with
        ``loss_probability``; each ISL (when ``isl_pairs`` is given) a
        cut with ``isl_cut_probability``.  Starts are uniform over the
        run, durations exponential around ``mean_duration_s``, loss
        rates exponential around ``mean_loss_rate`` (capped at 1).
        Identical arguments produce an identical, schedule-sorted event
        list.
        """
        for name, p in (("satellite outage", satellite_outage_probability),
                        ("gsl cut", gsl_cut_probability),
                        ("loss", loss_probability),
                        ("isl cut", isl_cut_probability)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        rng = random.Random(seed)
        events: List[FaultEvent] = []

        def window() -> Tuple[float, float]:
            start = rng.uniform(0.0, duration_s)
            length = max(1.0, rng.expovariate(1.0 / mean_duration_s))
            return start, min(start + length, duration_s + 1.0)

        for sat in range(num_satellites):
            if rng.random() < satellite_outage_probability:
                start, end = window()
                events.append(FaultEvent.satellite_outage(sat, start, end))
        for gid in range(num_stations):
            if rng.random() < gsl_cut_probability:
                start, end = window()
                events.append(FaultEvent.gsl_cut(gid, start, end))
            if rng.random() < loss_probability:
                start, end = window()
                rate = min(1.0, max(0.005,
                                    rng.expovariate(1.0 / mean_loss_rate)))
                events.append(FaultEvent.packet_loss(start, end, rate,
                                                     gid=gid))
        if isl_pairs is not None:
            for a, b in isl_pairs:
                if rng.random() < isl_cut_probability:
                    start, end = window()
                    events.append(FaultEvent.isl_cut(int(a), int(b),
                                                     start, end))
        return cls(events, seed=seed)

    # -- (de)serialization ----------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        if "events" not in payload:
            raise ValueError("fault schedule payload has no 'events' key")
        return cls([FaultEvent.from_dict(record)
                    for record in payload["events"]],
                   seed=int(payload.get("seed", 0)))

    def to_json(self, path: str, indent: Optional[int] = 1) -> None:
        """Write the schedule as JSON (the ``--faults`` file format)."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.as_dict(), stream, indent=indent)
            stream.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "FaultSchedule":
        """Load a schedule written by :meth:`to_json`."""
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))
