"""Deterministic fault injection: seeded schedules of outages, link cuts,
attenuation, and stochastic packet loss (see DESIGN.md "Fault model")."""

from .injector import LinkFaultInjector
from .schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultEvent", "FaultKind", "FaultSchedule", "LinkFaultInjector"]
