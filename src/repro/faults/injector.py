"""Per-device seeded Bernoulli fault injection for the packet simulator.

Each :class:`LinkFaultInjector` owns an independent
:class:`random.Random` stream derived from ``(schedule.seed, device
name)``.  Seeding with the *string* ``"{seed}:{name}"`` routes through
CPython's sha512-based ``Random.seed(str)`` path, which is stable across
processes and independent of ``PYTHONHASHSEED`` — the property the
determinism regression test relies on.

The stream is consumed **only while a loss/corruption event is active**
on the device (one draw per offered packet), so adding a fault window at
t=[10, 20) cannot perturb packet outcomes outside that window, and two
devices' outcomes never couple through a shared RNG.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from .schedule import FaultEvent, FaultKind

__all__ = ["LinkFaultInjector"]


class LinkFaultInjector:
    """Seeded per-packet loss/corruption decisions for one link device.

    Args:
        name: The owning device's name (part of the RNG seed).
        events: The loss/corruption events targeting this device.
        seed: The fault schedule's base seed.

    Example:
        >>> injector = LinkFaultInjector(
        ...     "isl-3-4",
        ...     [FaultEvent.packet_loss(10.0, 20.0, 0.5, isl=(3, 4))],
        ...     seed=0)
        >>> injector.drop_reason(5.0) is None
        True
    """

    __slots__ = ("name", "events", "_rng", "_window_starts")

    def __init__(self, name: str, events: Sequence[FaultEvent],
                 seed: int = 0) -> None:
        self.name = name
        self.events: Tuple[FaultEvent, ...] = tuple(
            event for event in events if event.is_stochastic)
        self._rng = random.Random(f"{seed}:{name}")
        self._window_starts = tuple(event.start_s for event in self.events)

    @property
    def has_events(self) -> bool:
        return bool(self.events)

    def earliest_start_s(self) -> float:
        """When the first loss window opens (inf when none)."""
        return min(self._window_starts, default=float("inf"))

    def extend(self, events: Sequence[FaultEvent], now_s: float) -> None:
        """Add loss/corruption events to a *live* injector.

        The RNG stream is untouched — draws already consumed stay
        consumed — so extending with future windows keeps past packet
        outcomes exactly as they were, and a run where the events were
        present from t=0 but inactive until now is indistinguishable.
        Events whose window already opened are rejected: splicing one in
        mid-window would make the stream position ambiguous.
        """
        fresh = tuple(e for e in events if e.is_stochastic)
        for event in fresh:
            if event.start_s < now_s:
                raise ValueError(
                    f"cannot inject event starting at {event.start_s} "
                    f"into live injector {self.name!r} at t={now_s}; "
                    f"only future windows preserve the draw sequence")
        from .schedule import _sort_key
        self.events = tuple(sorted(self.events + fresh, key=_sort_key))
        self._window_starts = tuple(e.start_s for e in self.events)

    def drop_reason(self, now: float) -> Optional[str]:
        """Decide this packet's fate at transmit time.

        Returns ``"loss"`` / ``"corruption"`` when the packet must be
        discarded, else ``None``.  Active overlapping events combine as
        independent trials: each active event gets its own draw, so the
        effective drop probability is ``1 - prod(1 - r_i)`` and the
        outcome does not depend on event order (events iterate in the
        schedule's content-sorted order anyway).
        """
        verdict: Optional[str] = None
        for event in self.events:
            if not event.active_at(now):
                continue
            if self._rng.random() < event.rate:
                # Keep drawing for the remaining active events so the
                # stream position stays a pure function of the offered-
                # packet sequence, but report the first matching kind.
                if verdict is None:
                    verdict = ("loss"
                               if event.kind is FaultKind.PACKET_LOSS
                               else "corruption")
        return verdict
