"""Fast node-position and propagation-delay service for the simulator.

Paper §3.2: while forwarding state is recomputed at discrete time steps,
*latencies are correctly calculated based on satellite motion* continuously.
Every packet transmission therefore asks "how far apart are these two nodes
right now?".

Computing a full constellation position array per packet would dominate the
simulation, so this service:

* evaluates single-satellite positions in O(1) from the constellation's
  cached circular-orbit arrays, and
* memoizes positions on a configurable time quantum (default 1 ms — over
  1 ms a satellite moves ~7.6 m, i.e. a delay error < 0.03 microseconds).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from ..geo.constants import SPEED_OF_LIGHT_M_PER_S
from ..topology.network import LeoNetwork

__all__ = ["PositionService"]


class PositionService:
    """Per-node positions and pairwise propagation delays over time.

    Args:
        network: The network whose node-numbering is used.
        quantum_s: Positions are evaluated on this time grid; lookups in
            between reuse the grid point.  Zero disables quantization.
        cache_entries: Size of one memo generation.  The memo is bounded
            by keeping *two* generations: when the young generation fills
            up it becomes the old one, and old-generation hits are promoted
            back.  Entries touched recently (the simulation's current time
            buckets) therefore survive eviction — a plain ``clear()`` used
            to throw away the hot bucket mid-transmission-burst and force
            recomputation of positions still in active use.
    """

    def __init__(self, network: LeoNetwork, quantum_s: float = 0.001,
                 cache_entries: int = 200_000) -> None:
        if quantum_s < 0.0:
            raise ValueError(f"quantum must be >= 0, got {quantum_s}")
        if cache_entries < 1:
            raise ValueError(
                f"cache_entries must be >= 1, got {cache_entries}")
        self._network = network
        self._quantum_s = quantum_s
        constellation = network.constellation
        if not constellation._all_circular:
            raise NotImplementedError(
                "PositionService's O(1) path requires circular orbits; all "
                "paper constellations are circular")
        self._num_sats = constellation.num_satellites
        self._epoch_offset_s = constellation.epoch_offset_s
        # Cached circular-orbit arrays (shared with the constellation).
        self._radius = constellation._radius_m
        self._raan = constellation._raan_rad
        self._incl = constellation._inclination_rad
        self._anom = constellation._anomaly_rad
        self._motion = constellation._mean_motion
        from ..geo.constants import EARTH_ROTATION_RATE_RAD_PER_S
        self._earth_rate = EARTH_ROTATION_RATE_RAD_PER_S
        self._gs_positions = {
            network.gs_node_id(gs.gid): tuple(gs.ecef_m)
            for gs in network.ground_stations
        }
        self._cache_entries = int(cache_entries)
        self._cache: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
        self._old_cache: Dict[Tuple[int, int],
                              Tuple[float, float, float]] = {}
        #: Number of actual orbit propagations (cache-miss accounting).
        self.position_computes = 0

    def position_m(self, node_id: int, time_s: float
                   ) -> Tuple[float, float, float]:
        """ECEF position of any node (satellite or GS) at ``time_s``."""
        if node_id >= self._num_sats:
            return self._gs_positions[node_id]
        if self._quantum_s > 0.0:
            bucket = int(time_s / self._quantum_s)
            key = (node_id, bucket)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            cached = self._old_cache.get(key)
            if cached is None:
                quantized_time = bucket * self._quantum_s
                cached = self._satellite_position(node_id, quantized_time)
            # Insert (or promote an old-generation hit) into the young
            # generation, then rotate generations when it fills up: stale
            # buckets age out while actively used ones keep getting
            # promoted and are never recomputed.
            self._cache[key] = cached
            if len(self._cache) > self._cache_entries:
                self._old_cache = self._cache
                self._cache = {}
            return cached
        return self._satellite_position(node_id, time_s)

    def _satellite_position(self, sat_id: int, time_s: float
                            ) -> Tuple[float, float, float]:
        """Scalar circular-orbit propagation + Earth rotation."""
        self.position_computes += 1
        time_s = time_s + self._epoch_offset_s
        u = self._anom[sat_id] + self._motion[sat_id] * time_s
        r = self._radius[sat_id]
        cos_u, sin_u = math.cos(u), math.sin(u)
        cos_o, sin_o = math.cos(self._raan[sat_id]), math.sin(self._raan[sat_id])
        cos_i, sin_i = math.cos(self._incl[sat_id]), math.sin(self._incl[sat_id])
        x_eci = r * (cos_u * cos_o - sin_u * cos_i * sin_o)
        y_eci = r * (cos_u * sin_o + sin_u * cos_i * cos_o)
        z = r * sin_u * sin_i
        theta = self._earth_rate * time_s
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        return (x_eci * cos_t + y_eci * sin_t,
                -x_eci * sin_t + y_eci * cos_t,
                z)

    def distance_m(self, node_a: int, node_b: int, time_s: float) -> float:
        """Straight-line distance between two nodes at ``time_s``."""
        ax, ay, az = self.position_m(node_a, time_s)
        bx, by, bz = self.position_m(node_b, time_s)
        return math.sqrt((ax - bx) ** 2 + (ay - by) ** 2 + (az - bz) ** 2)

    def delay_s(self, node_a: int, node_b: int, time_s: float) -> float:
        """One-way propagation delay between two nodes at ``time_s``."""
        return self.distance_m(node_a, node_b, time_s) / SPEED_OF_LIGHT_M_PER_S
