"""The packet-level LEO network simulator.

This is the reproduction of Hypatia's ns-3 module: a discrete-event
simulator over the time-varying constellation topology, with

* drop-tail devices per ISL direction and one shared GSL device per node,
* live per-packet propagation delays from satellite geometry,
* periodic forwarding-state updates injected as events (paper §3.1),
* loss-free GS handoffs (in-flight packets are still delivered after a
  satellite moves out of reach; new packets just stop being routed to it —
  paper §3.1's simplifying assumption).

Applications (TCP/UDP/ping, in :mod:`repro.transport`) attach to ground
station nodes and exchange packets identified by flow ids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

from ..faults.injector import LinkFaultInjector
from ..obs import spans
from ..obs.metrics import MetricsRegistry
from ..obs.probes import SimulatorProbe
from ..obs.report import RunReport, packet_run_report
from ..obs.trace import NULL_TRACER, PKT_DELIVER, PKT_DROP, Tracer
from ..routing.engine import RoutingPerfCounters
from ..topology.network import LeoNetwork
from .devices import DROPPED_FAULT, LinkDevice
from .events import EventScheduler
from .forwarding import ForwardingController
from .packet import Packet
from .positions import PositionService

__all__ = ["LinkConfig", "PacketSimulator", "SimulationStats"]

#: Packets are dropped after this many forwarding steps; transient routing
#: inconsistencies during state updates can otherwise loop a packet.
MAX_HOPS = 64


@dataclass(frozen=True)
class LinkConfig:
    """Link-layer parameters, uniform across the network (paper §3.4).

    Attributes:
        isl_rate_bps: Line rate of every ISL.
        gsl_rate_bps: Line rate of every GSL device.
        isl_queue_packets: Drop-tail queue capacity per ISL device.
        gsl_queue_packets: Drop-tail queue capacity per GSL device.
    """

    isl_rate_bps: float = 10_000_000.0
    gsl_rate_bps: float = 10_000_000.0
    isl_queue_packets: int = 100
    gsl_queue_packets: int = 100

    def __post_init__(self) -> None:
        if self.isl_rate_bps <= 0 or self.gsl_rate_bps <= 0:
            raise ValueError("link rates must be positive")
        if self.isl_queue_packets < 0 or self.gsl_queue_packets < 0:
            raise ValueError("queue sizes must be non-negative")


class SimulationStats:
    """Network-layer counters and perf accounting of one simulation run.

    Besides packet counters, carries the scalability-facing metrics the
    Fig. 2 benchmark records: wall-clock time inside :meth:`run`, events
    processed, and the routing engine's shared perf counters.
    """

    def __init__(self) -> None:
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped_no_route = 0
        self.packets_dropped_queue = 0
        self.packets_dropped_ttl = 0
        self.packets_dropped_no_handler = 0
        self.packets_dropped_fault = 0
        self.wall_time_s = 0.0
        self.events_processed = 0
        self.routing = RoutingPerfCounters()

    @property
    def packets_dropped(self) -> int:
        """All drops regardless of cause."""
        return (self.packets_dropped_no_route + self.packets_dropped_queue
                + self.packets_dropped_ttl
                + self.packets_dropped_no_handler
                + self.packets_dropped_fault)

    @property
    def events_per_wall_s(self) -> float:
        """Scheduler throughput (events per wall-clock second)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_processed / self.wall_time_s

    def as_dict(self) -> Dict[str, int]:
        """The packet counters as a flat dict (report-facing)."""
        return {
            "packets_forwarded": self.packets_forwarded,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "packets_dropped_no_route": self.packets_dropped_no_route,
            "packets_dropped_queue": self.packets_dropped_queue,
            "packets_dropped_ttl": self.packets_dropped_ttl,
            "packets_dropped_no_handler": self.packets_dropped_no_handler,
            "packets_dropped_fault": self.packets_dropped_fault,
        }

    def perf_summary(self) -> Dict[str, float]:
        """Flat benchmark-facing summary of the run's performance."""
        summary = {
            "wall_time_s": self.wall_time_s,
            "events_processed": self.events_processed,
            "events_per_wall_s": self.events_per_wall_s,
        }
        summary.update(self.routing.as_dict())
        return summary


class PacketSimulator:
    """Discrete-event packet simulation over a LEO network.

    Args:
        network: Constellation + ground stations + connectivity parameters.
        link_config: Uniform link rates and queue sizes.
        forwarding_interval_s: Forwarding-state update period (default
            100 ms, the paper's default granularity).
        position_quantum_s: Geometry memoization grid for per-packet delays.

    Typical use::

        sim = PacketSimulator(network)
        app = TcpSender(...); app.install(sim)
        sim.run(200.0)
    """

    def __init__(self, network: LeoNetwork,
                 link_config: Optional[LinkConfig] = None,
                 forwarding_interval_s: float = 0.1,
                 position_quantum_s: float = 0.001,
                 isl_rate_overrides: Optional[
                     Dict[Tuple[int, int], float]] = None,
                 gsl_rate_overrides: Optional[Dict[int, float]] = None,
                 tracer: Optional[Tracer] = None
                 ) -> None:
        """See class docstring.

        ``isl_rate_overrides`` (keyed by *directed* satellite pair) and
        ``gsl_rate_overrides`` (keyed by node id) assign individual
        devices a line rate different from the uniform config — the
        paper's §7 link-capacity heterogeneity ("satellite capabilities
        may advance over time").  An undirected upgrade needs both
        directions.

        ``tracer`` (default: the no-op ``NULL_TRACER``) receives the
        structured trace events of every layer — device enqueue/tx/drop,
        network-layer drops and deliveries, forwarding-state updates,
        and route changes.
        """
        self.network = network
        self.config = link_config or LinkConfig()
        isl_rate_overrides = isl_rate_overrides or {}
        gsl_rate_overrides = gsl_rate_overrides or {}
        self.scheduler = EventScheduler()
        self.positions = PositionService(network, quantum_s=position_quantum_s)
        self.stats = SimulationStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.forwarding = ForwardingController(
            network, self.scheduler, update_interval_s=forwarding_interval_s,
            perf=self.stats.routing, tracer=self.tracer)
        self._num_sats = network.num_satellites
        # Stochastic loss/corruption events live on the network's fault
        # schedule; each affected device gets its own injector whose RNG
        # stream is derived from (schedule seed, device name).
        faults = network.faults
        self._faults = faults if faults is not None and len(faults) else None
        isl_pair_set = {(int(a), int(b)) for a, b in network.isl_pairs}
        isl_pair_set |= {(b, a) for a, b in isl_pair_set}
        for key in isl_rate_overrides:
            if tuple(key) not in isl_pair_set:
                raise ValueError(f"ISL rate override for non-ISL {key}")
        for node in gsl_rate_overrides:
            if not 0 <= int(node) < network.num_nodes:
                raise ValueError(
                    f"GSL rate override for unknown node {node}")
        self._isl_devices: Dict[Tuple[int, int], LinkDevice] = {}
        for a, b in network.isl_pairs:
            a, b = int(a), int(b)
            for src, dst in ((a, b), (b, a)):
                rate = isl_rate_overrides.get((src, dst),
                                              self.config.isl_rate_bps)
                self._isl_devices[(src, dst)] = LinkDevice(
                    self.scheduler, self.positions, src,
                    rate, self.config.isl_queue_packets,
                    self._receive, name=f"isl-{src}-{dst}",
                    tracer=self.tracer,
                    fault_injector=self._injector_for_isl(src, dst))
        self._gsl_devices: Dict[int, LinkDevice] = {}
        for node in range(network.num_nodes):
            rate = gsl_rate_overrides.get(node, self.config.gsl_rate_bps)
            self._gsl_devices[node] = LinkDevice(
                self.scheduler, self.positions, node,
                rate, self.config.gsl_queue_packets,
                self._receive, name=f"gsl-{node}", tracer=self.tracer,
                fault_injector=self._injector_for_gsl(node))
        # (node_id, flow_id) -> packet handler of the application endpoint.
        self._handlers: Dict[Tuple[int, int], Callable[[Packet], None]] = {}
        self._started = False

    def _injector_for_isl(self, src: int,
                          dst: int) -> Optional[LinkFaultInjector]:
        """Seeded injector of one directed ISL device (None when no
        loss/corruption event targets the link — the common case)."""
        if self._faults is None:
            return None
        events = self._faults.loss_events_for_isl(src, dst)
        if not events:
            return None
        return LinkFaultInjector(f"isl-{src}-{dst}", events,
                                 seed=self._faults.seed)

    def _injector_for_gsl(self, node: int) -> Optional[LinkFaultInjector]:
        """Seeded injector of a node's shared GSL device.

        A gid-targeted loss event acts on the *station's* uplink device
        only; the satellite-side GSL devices are shared across stations,
        so per-station downlink loss cannot be attributed there.
        """
        if self._faults is None or node < self._num_sats:
            return None
        events = self._faults.loss_events_for_gid(node - self._num_sats)
        if not events:
            return None
        return LinkFaultInjector(f"gsl-{node}", events,
                                 seed=self._faults.seed)

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.scheduler.now

    def gs_node_id(self, gid: int) -> int:
        """Node id of ground station ``gid``."""
        return self.network.gs_node_id(gid)

    def gid_of_node(self, node_id: int) -> int:
        """Ground station id of a GS node."""
        if node_id < self._num_sats:
            raise ValueError(f"node {node_id} is a satellite")
        return node_id - self._num_sats

    def register_handler(self, node_id: int, flow_id: int,
                         handler: Callable[[Packet], None]) -> None:
        """Receive packets of ``flow_id`` arriving at ``node_id``."""
        key = (node_id, flow_id)
        if key in self._handlers:
            raise ValueError(
                f"flow {flow_id} already has a handler at node {node_id}")
        self._handlers[key] = handler
        if node_id >= self._num_sats:
            # Any endpoint of the flow may be a destination of its packets.
            self.forwarding.register_destination(self.gid_of_node(node_id))

    def send(self, packet: Packet) -> None:
        """Inject a packet at its source node (called by applications)."""
        self._forward(packet.src_node, packet)

    def run(self, duration_s: float) -> None:
        """Start (if needed) and run the simulation until ``duration_s``."""
        profiler = spans.ACTIVE
        span = (profiler.begin("packet.event_loop")
                if profiler.enabled else -1)
        start = time.perf_counter()
        if not self._started:
            self._started = True
            self.forwarding.start()
        self.scheduler.run(until_s=duration_s)
        self.stats.wall_time_s += time.perf_counter() - start
        self.stats.events_processed = self.scheduler.events_processed
        if span != -1:
            profiler.end(span)

    def isl_device(self, from_sat: int, to_sat: int) -> LinkDevice:
        """The directed device of an ISL (for stats inspection)."""
        return self._isl_devices[(from_sat, to_sat)]

    def gsl_device(self, node_id: int) -> LinkDevice:
        """The shared GSL device of a node (for stats inspection)."""
        return self._gsl_devices[node_id]

    def iter_devices(self) -> Iterator[LinkDevice]:
        """All devices (ISL directions first, then GSLs)."""
        yield from self._isl_devices.values()
        yield from self._gsl_devices.values()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_probe(self, registry: Optional[MetricsRegistry] = None,
                     interval_s: float = 1.0,
                     links: Optional[Iterable[str]] = None,
                     active_only: bool = True) -> SimulatorProbe:
        """Start a periodic metrics probe on this simulation's clock.

        Records per-link queue depth / utilization / throughput and
        scheduler event-rate series into ``registry`` every
        ``interval_s`` simulated seconds; see
        :class:`repro.obs.probes.SimulatorProbe`.
        """
        return SimulatorProbe(self, registry=registry, interval_s=interval_s,
                              links=links, active_only=active_only).start()

    def report(self, duration_s: Optional[float] = None,
               registry: Optional[MetricsRegistry] = None,
               include_series: bool = True) -> RunReport:
        """The unified run report (stats + optional metrics + trace)."""
        return packet_run_report(
            self, duration_s if duration_s is not None else self.now,
            registry=registry, include_series=include_series)

    # ------------------------------------------------------------------
    # Forwarding plane
    # ------------------------------------------------------------------

    def _forward(self, node: int, packet: Packet) -> None:
        if packet.hops >= MAX_HOPS:
            self.stats.packets_dropped_ttl += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(self.scheduler.now, PKT_DROP, node=node,
                            flow=packet.flow_id, seq=packet.seq,
                            reason="ttl")
            return
        packet.hops += 1
        dst_gid = packet.dst_node - self._num_sats
        if node >= self._num_sats:
            next_hop = self.forwarding.next_hop_from_ground(
                node - self._num_sats, dst_gid)
        else:
            next_hop = self.forwarding.next_hop_from_satellite(node, dst_gid)
        if next_hop is None:
            self.stats.packets_dropped_no_route += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(self.scheduler.now, PKT_DROP, node=node,
                            flow=packet.flow_id, seq=packet.seq,
                            reason="no_route")
            return
        device = self._device_for(node, next_hop)
        self.stats.packets_forwarded += 1
        accepted = device.enqueue(packet, next_hop)
        if not accepted:
            if accepted is DROPPED_FAULT:
                self.stats.packets_dropped_fault += 1
            else:
                self.stats.packets_dropped_queue += 1

    def _device_for(self, node: int, next_hop: int) -> LinkDevice:
        if node < self._num_sats and next_hop < self._num_sats:
            return self._isl_devices[(node, next_hop)]
        return self._gsl_devices[node]

    def _receive(self, packet: Packet, node: int) -> None:
        if node == packet.dst_node:
            handler = self._handlers.get((node, packet.flow_id))
            if handler is not None:
                self.stats.packets_delivered += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.emit(self.scheduler.now, PKT_DELIVER, node=node,
                                flow=packet.flow_id, seq=packet.seq)
                handler(packet)
            else:
                # The packet reached its destination but no application
                # claims the flow; count it so no packet ever vanishes
                # from the accounting.
                self.stats.packets_dropped_no_handler += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.emit(self.scheduler.now, PKT_DROP, node=node,
                                flow=packet.flow_id, seq=packet.seq,
                                reason="no_handler")
            return
        self._forward(node, packet)
