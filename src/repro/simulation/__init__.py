"""Packet-level discrete-event network simulator (the ns-3 substitute)."""

from .devices import DeviceStats, LinkDevice
from .events import EventScheduler
from .forwarding import ForwardingController
from .packet import DEFAULT_HEADER_BYTES, DEFAULT_MTU_BYTES, Packet
from .positions import PositionService
from .simulator import LinkConfig, PacketSimulator, SimulationStats

__all__ = [
    "DeviceStats",
    "LinkDevice",
    "EventScheduler",
    "ForwardingController",
    "DEFAULT_HEADER_BYTES",
    "DEFAULT_MTU_BYTES",
    "Packet",
    "PositionService",
    "LinkConfig",
    "PacketSimulator",
    "SimulationStats",
]
