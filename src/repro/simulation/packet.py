"""The packet: the unit every simulated byte travels in.

Packets are deliberately plain mutable objects with ``__slots__``: the
simulator creates hundreds of thousands of them, so attribute-dict overhead
matters.  Transport protocols stash their header fields directly on the
packet (seq, ack, timestamps); the network layer only reads ``dst_node``
and ``size_bytes``.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

__all__ = ["Packet", "DEFAULT_HEADER_BYTES", "DEFAULT_MTU_BYTES"]

#: Combined IP+transport header size assumed throughout (bytes).
DEFAULT_HEADER_BYTES = 40

#: Total packet size used by the paper's experiments (bytes).
DEFAULT_MTU_BYTES = 1500

_packet_ids = itertools.count()


class Packet:
    """One simulated packet.

    Attributes:
        packet_id: Globally unique id (debugging / tracing).
        flow_id: The flow this packet belongs to; the destination node uses
            it to hand the packet to the right application.
        src_node: Originating node id.
        dst_node: Destination node id (a ground station).
        size_bytes: Wire size including headers.
        payload_bytes: Goodput-counted bytes (size minus headers).
        kind: "data", "ack", "ping", or "pong".
        seq: Transport sequence number (packet-granularity).
        ack: Cumulative ACK number carried by ACK packets.
        ts_echo: Timestamp echoed back for RTT measurement.
        sent_at_s: When the transport sent this packet.
        retransmit: Whether this is a retransmission (Karn's rule).
        hops: Incremented at every forwarding step.
    """

    __slots__ = ("packet_id", "flow_id", "src_node", "dst_node",
                 "size_bytes", "payload_bytes", "kind", "seq", "ack",
                 "ts_echo", "sent_at_s", "retransmit", "hops", "sack")

    def __init__(self, flow_id: int, src_node: int, dst_node: int,
                 size_bytes: int, kind: str = "data",
                 payload_bytes: Optional[int] = None,
                 seq: int = -1, ack: int = -1,
                 ts_echo: float = -1.0, sent_at_s: float = -1.0,
                 retransmit: bool = False) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.src_node = src_node
        self.dst_node = dst_node
        self.size_bytes = size_bytes
        if payload_bytes is None:
            payload_bytes = max(0, size_bytes - DEFAULT_HEADER_BYTES)
        self.payload_bytes = payload_bytes
        self.kind = kind
        self.seq = seq
        self.ack = ack
        self.ts_echo = ts_echo
        self.sent_at_s = sent_at_s
        self.retransmit = retransmit
        self.hops = 0
        # SACK blocks piggybacked on ACKs: tuple of (start, end) ranges.
        self.sack: Tuple[Tuple[int, int], ...] = ()

    def __repr__(self) -> str:
        return (f"Packet(id={self.packet_id}, flow={self.flow_id}, "
                f"{self.kind}, seq={self.seq}, ack={self.ack}, "
                f"{self.src_node}->{self.dst_node})")
