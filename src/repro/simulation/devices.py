"""Network devices: drop-tail queues feeding rate-limited transmitters.

Mirrors the ns-3 point-to-point device model the paper's experiments use:

* every device owns a FIFO drop-tail queue sized in packets (paper default
  100);
* transmission takes ``size * 8 / rate`` seconds of exclusive device time
  (serialization delay);
* on transmit completion the packet incurs the *current* propagation delay
  to its next hop — recomputed from live satellite geometry — and is
  delivered there.

Per paper §3.1, each satellite has one device per ISL plus a single shared
GSL device; each ground station has a single GSL device.  The sharing is
load-bearing: in the Appendix-A bent-pipe experiment, data packets and the
reverse flow's ACKs contend for the same satellite GSL device queue, which
visibly perturbs TCP (Fig. 19(b)).
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Deque, Optional, Tuple

from ..obs.trace import (NULL_TRACER, PKT_DROP, PKT_ENQUEUE, PKT_TX_FINISH,
                         PKT_TX_START, WARNING, Tracer)
from .events import EventScheduler
from .packet import Packet
from .positions import PositionService

__all__ = ["LinkDevice", "DeviceStats", "DROPPED_FAULT"]


class _DroppedFault:
    """Falsy sentinel :meth:`LinkDevice.enqueue` returns for an injected
    fault drop, so call sites keep their ``if not enqueue(...)`` shape
    while the simulator can still tell fault drops from queue drops."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "DROPPED_FAULT"


#: The shared fault-drop sentinel (identity-comparable, always falsy).
DROPPED_FAULT = _DroppedFault()


class DeviceStats:
    """Counters of one device, for utilization and loss accounting."""

    __slots__ = ("packets_sent", "bytes_sent", "packets_dropped",
                 "packets_dropped_fault", "busy_time_s")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.packets_dropped_fault = 0
        self.busy_time_s = 0.0

    def utilization(self, rate_bps: float, duration_s: float,
                    tracer: Optional[Tracer] = None,
                    link_name: str = "",
                    busy_time_s: Optional[float] = None) -> float:
        """Fraction of ``duration_s`` the transmitter was busy.

        Returns the *raw* busy-time ratio.  A ratio above 1.0 means the
        busy-time accounting and the measurement window disagree (true
        oversubscription, e.g. a window shorter than the busy time fed
        into it) — it is reported as-is, with a
        :data:`~repro.obs.trace.WARNING` trace event when an enabled
        ``tracer`` is given, instead of being silently clamped.

        Args:
            busy_time_s: Busy-time override; pass
                :meth:`LinkDevice.busy_time_s` to pro-rate a still
                in-flight serialization at the measurement boundary.
        """
        if duration_s <= 0.0:
            return 0.0
        _ = rate_bps
        busy = self.busy_time_s if busy_time_s is None else busy_time_s
        ratio = busy / duration_s
        if ratio > 1.0 and tracer is not None and tracer.enabled:
            tracer.emit(duration_s, WARNING, link=link_name, value=ratio,
                        reason="utilization_above_1")
        return ratio


class LinkDevice:
    """One transmitting device of a node (an ISL endpoint or a GSL radio).

    Args:
        scheduler: The simulation clock.
        positions: Geometry service for live propagation delays.
        node_id: Owning node.
        rate_bps: Line rate (bits/second).
        queue_packets: Drop-tail queue capacity, in packets, *excluding* the
            packet currently being serialized (ns-3 convention).
        deliver: Callback ``(packet, to_node)`` invoked at the receiver after
            serialization + propagation.
        name: Diagnostic label, e.g. ``"isl-17-18"`` or ``"gsl-1203"``.
        tracer: Trace sink for enqueue/tx/drop events; the default
            :data:`~repro.obs.trace.NULL_TRACER` costs one attribute
            check per event.
        fault_injector: Optional
            :class:`repro.faults.LinkFaultInjector`; when set, every
            offered packet is first subjected to its seeded Bernoulli
            loss/corruption decision, and a positive verdict drops the
            packet with the ``fault`` reason (returning
            :data:`DROPPED_FAULT`).
    """

    __slots__ = ("_scheduler", "_positions", "node_id", "rate_bps",
                 "queue_packets", "_deliver", "name", "_queue", "_busy",
                 "stats", "_tracer", "_tx_start_s", "_fault_injector")

    def __init__(self, scheduler: EventScheduler, positions: PositionService,
                 node_id: int, rate_bps: float, queue_packets: int,
                 deliver: Callable[[Packet, int], None],
                 name: str = "", tracer: Optional[Tracer] = None,
                 fault_injector=None) -> None:
        if rate_bps <= 0.0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if queue_packets < 0:
            raise ValueError(f"queue size must be >= 0, got {queue_packets}")
        self._scheduler = scheduler
        self._positions = positions
        self.node_id = node_id
        self.rate_bps = rate_bps
        self.queue_packets = queue_packets
        self._deliver = deliver
        self.name = name or f"dev-{node_id}"
        self._queue: Deque[Tuple[Packet, int]] = deque()
        self._busy = False
        self._tx_start_s = 0.0
        self.stats = DeviceStats()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if fault_injector is not None and not fault_injector.has_events:
            fault_injector = None
        self._fault_injector = fault_injector

    @property
    def queue_length(self) -> int:
        """Packets currently waiting (not counting the one in flight)."""
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        """Whether a packet is currently being serialized."""
        return self._busy

    def busy_time_s(self, now: Optional[float] = None) -> float:
        """Cumulative busy time up to ``now`` (default: the current clock).

        Completed serializations are credited in full at transmit finish;
        a still in-flight packet contributes only its elapsed fraction, so
        a measurement window that ends mid-serialization never counts
        transmission time that has not happened yet.
        """
        total = self.stats.busy_time_s
        if self._busy:
            if now is None:
                now = self._scheduler.now
            total += max(0.0, now - self._tx_start_s)
        return total

    def utilization(self, duration_s: float,
                    tracer: Optional[Tracer] = None) -> float:
        """Busy fraction of ``[0, duration_s]``, pro-rating any in-flight
        serialization at the measurement boundary.

        A result above 1.0 now indicates true oversubscription and emits
        a ``utilization_above_1`` WARNING through ``tracer`` (see
        :meth:`DeviceStats.utilization`).
        """
        return self.stats.utilization(
            self.rate_bps, duration_s, tracer=tracer, link_name=self.name,
            busy_time_s=self.busy_time_s())

    def enqueue(self, packet: Packet, to_node: int):
        """Submit a packet for transmission to ``to_node``.

        Returns:
            True on acceptance; plain ``False`` if the drop-tail queue
            was full; the falsy :data:`DROPPED_FAULT` sentinel if an
            injected fault discarded the packet at the transmitter.
        """
        tracer = self._tracer
        injector = self._fault_injector
        if injector is not None:
            verdict = injector.drop_reason(self._scheduler.now)
            if verdict is not None:
                self.stats.packets_dropped_fault += 1
                if tracer.enabled:
                    tracer.emit(self._scheduler.now, PKT_DROP,
                                node=self.node_id, flow=packet.flow_id,
                                link=self.name, seq=packet.seq,
                                reason="fault")
                return DROPPED_FAULT
        if self._busy:
            if len(self._queue) >= self.queue_packets:
                self.stats.packets_dropped += 1
                if tracer.enabled:
                    tracer.emit(self._scheduler.now, PKT_DROP,
                                node=self.node_id, flow=packet.flow_id,
                                link=self.name, seq=packet.seq,
                                value=float(len(self._queue)),
                                reason="queue")
                return False
            self._queue.append((packet, to_node))
            if tracer.enabled:
                tracer.emit(self._scheduler.now, PKT_ENQUEUE,
                            node=self.node_id, flow=packet.flow_id,
                            link=self.name, seq=packet.seq,
                            value=float(len(self._queue)))
            return True
        if tracer.enabled:
            tracer.emit(self._scheduler.now, PKT_ENQUEUE, node=self.node_id,
                        flow=packet.flow_id, link=self.name, seq=packet.seq,
                        value=0.0)
        self._start_transmission(packet, to_node)
        return True

    def _start_transmission(self, packet: Packet, to_node: int) -> None:
        self._busy = True
        self._tx_start_s = self._scheduler.now
        tx_time = packet.size_bytes * 8.0 / self.rate_bps
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(self._scheduler.now, PKT_TX_START, node=self.node_id,
                        flow=packet.flow_id, link=self.name, seq=packet.seq,
                        value=tx_time)
        # partial of a bound method, not a lambda: pending events must
        # survive checkpoint pickling (repro.service).
        self._scheduler.schedule(
            tx_time, partial(self._finish_transmission, packet, to_node))

    def _finish_transmission(self, packet: Packet, to_node: int) -> None:
        now = self._scheduler.now
        # Busy time is credited only once the serialization completed;
        # crediting at start over-counted windows ending mid-packet.
        self.stats.busy_time_s += now - self._tx_start_s
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size_bytes
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(now, PKT_TX_FINISH, node=self.node_id,
                        flow=packet.flow_id, link=self.name, seq=packet.seq)
        # Propagation delay from live geometry at the moment the last bit
        # leaves the transmitter (paper: "latencies are correctly calculated
        # based on satellite motion").
        propagation = self._positions.delay_s(self.node_id, to_node, now)
        self._scheduler.schedule(propagation,
                                 partial(self._deliver, packet, to_node))
        if self._queue:
            next_packet, next_to = self._queue.popleft()
            self._start_transmission(next_packet, next_to)
        else:
            self._busy = False
