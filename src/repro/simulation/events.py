"""Discrete-event scheduling core.

A minimal, fast event queue in the style of ns-3's ``Simulator``: events are
``(time, insertion-order)``-ordered callbacks.  Insertion order breaks ties
so same-time events run FIFO, which keeps packet orderings deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """A discrete-event clock and priority queue.

    Example:
        >>> sched = EventScheduler()
        >>> fired = []
        >>> sched.schedule(2.0, lambda: fired.append(sched.now))
        >>> sched.schedule(1.0, lambda: fired.append(sched.now))
        >>> sched.run()
        >>> fired
        [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Optional[Callable[[], Any]]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._peak_queue_len = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for scalability accounting)."""
        return self._events_processed

    @property
    def peak_queue_len(self) -> int:
        """High-water mark of pending events (scheduler pressure)."""
        return self._peak_queue_len

    def __len__(self) -> int:
        """Events currently pending."""
        return len(self._queue)

    def schedule(self, delay_s: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` after ``delay_s`` seconds of simulated time."""
        if delay_s < 0.0:
            raise ValueError(f"cannot schedule into the past: {delay_s}")
        heapq.heappush(self._queue,
                       (self._now + delay_s, next(self._counter), callback))
        if len(self._queue) > self._peak_queue_len:
            self._peak_queue_len = len(self._queue)

    def schedule_at(self, time_s: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute time ``time_s``."""
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s}, already at {self._now}")
        heapq.heappush(self._queue,
                       (time_s, next(self._counter), callback))
        if len(self._queue) > self._peak_queue_len:
            self._peak_queue_len = len(self._queue)

    def run(self, until_s: Optional[float] = None) -> None:
        """Process events in order until the queue drains or ``until_s``.

        Events scheduled exactly at ``until_s`` are *not* executed, so
        repeated ``run(until_s=...)`` calls partition time cleanly.
        """
        if self._running:
            raise RuntimeError("scheduler is already running")
        self._running = True
        try:
            queue = self._queue
            while queue:
                time_s, _, callback = queue[0]
                if until_s is not None and time_s >= until_s:
                    break
                heapq.heappop(queue)
                self._now = time_s
                self._events_processed += 1
                callback()
            if until_s is not None and self._now < until_s:
                self._now = until_s
        finally:
            self._running = False

    def clear(self) -> None:
        """Drop all pending events (the clock keeps its value)."""
        self._queue.clear()
