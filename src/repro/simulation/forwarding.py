"""Time-stepped forwarding state inside the packet simulator.

Paper §3.1: forwarding state is precomputed at a configurable granularity
(default 100 ms) and its changes are injected into the discrete event
queue: when the event fires, new static routing entries are read, and the
next change event is scheduled one interval later.  This module is that
mechanism.

Between updates, packets follow the *installed* state even though satellites
keep moving — which is exactly what produces the paper's observed detour
spikes (Fig. 3(c)) when a packet chases a path that is no longer shortest.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from typing import TYPE_CHECKING

import numpy as np

from ..obs import spans
from ..obs.trace import FWD_UPDATE, NULL_TRACER, ROUTE_CHANGE, Tracer
from ..routing.engine import (
    UNREACHABLE,
    DestinationRouting,
    MultiDestinationRouting,
    RoutingEngine,
)
from ..topology.network import LeoNetwork, TopologySnapshot
from .events import EventScheduler

if TYPE_CHECKING:
    from ..routing.engine import RoutingPerfCounters

__all__ = ["ForwardingController"]


class ForwardingController:
    """Installs and refreshes shortest-path forwarding state periodically.

    Args:
        network: The LEO network.
        scheduler: The simulation clock to hook update events into.
        update_interval_s: Forwarding-state recomputation period (paper
            default 0.1 s).
        perf: Optional shared routing perf-counter sink (surfaced through
            ``SimulationStats`` by the packet simulator).
        tracer: Trace sink for forwarding-state updates and route-change
            events (default: the no-op ``NULL_TRACER``).

    Each update computes every registered destination's tree in a single
    batched Dijkstra (:meth:`RoutingEngine.route_to_many`).
    """

    def __init__(self, network: LeoNetwork, scheduler: EventScheduler,
                 update_interval_s: float = 0.1,
                 perf: "Optional[RoutingPerfCounters]" = None,
                 tracer: Optional[Tracer] = None) -> None:
        if update_interval_s <= 0.0:
            raise ValueError(
                f"update interval must be positive, got {update_interval_s}")
        self.network = network
        self.update_interval_s = update_interval_s
        self._scheduler = scheduler
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._engine = RoutingEngine(network, perf=perf,
                                     tracer=self._tracer)
        self._destinations: Set[int] = set()
        self._routing: Dict[int, DestinationRouting] = {}
        self._multi: Optional[MultiDestinationRouting] = None
        self._ingress_cache: Dict[Tuple[int, int], Optional[int]] = {}
        self._snapshot: Optional[TopologySnapshot] = None
        self._started = False
        self._num_sats = network.num_satellites
        self._epoch_s = 0.0
        self._update_count = 0

    @property
    def snapshot(self) -> Optional[TopologySnapshot]:
        """The snapshot the installed forwarding state was computed from."""
        return self._snapshot

    def register_destination(self, dst_gid: int) -> None:
        """Declare that traffic will be addressed to this ground station.

        Must be called before :meth:`start` or mid-run; state for newly
        registered destinations is computed at the next update (or
        immediately if the controller is already running).
        """
        if not 0 <= dst_gid < self.network.num_ground_stations:
            raise ValueError(f"gid {dst_gid} out of range")
        self._destinations.add(dst_gid)
        if self._started and self._snapshot is not None:
            self._refresh_routing()

    def start(self) -> None:
        """Install state for time 0 and schedule periodic refreshes."""
        if self._started:
            raise RuntimeError("forwarding controller already started")
        self._started = True
        self._epoch_s = self._scheduler.now
        self._update()

    def _update(self) -> None:
        now = self._scheduler.now
        self._snapshot = self.network.snapshot(now)
        self._refresh_routing()
        # Reschedule on the absolute grid epoch + k * interval: a relative
        # delay accumulates float drift against the paper's 0.1 s snapshot
        # grid (k additions instead of one multiplication).
        self._update_count += 1
        self._scheduler.schedule_at(
            self._epoch_s + self._update_count * self.update_interval_s,
            self._update)

    def _refresh_routing(self) -> None:
        """Recompute all destination trees against the current snapshot."""
        profiler = spans.ACTIVE
        span = (profiler.begin("fwd.refresh_routing")
                if profiler.enabled else -1)
        tracer = self._tracer
        old_routing = self._routing if tracer.enabled else {}
        if self._destinations:
            assert self._snapshot is not None
            self._multi = self._engine.route_to_many(
                self._snapshot, sorted(self._destinations))
            self._routing = {
                dst_gid: self._multi.routing_for(dst_gid)
                for dst_gid in self._destinations
            }
        else:
            self._multi = None
            self._routing = {}
        self._ingress_cache.clear()
        if tracer.enabled:
            now = self._scheduler.now
            tracer.emit(now, FWD_UPDATE, value=float(len(self._routing)))
            for dst_gid, routing in self._routing.items():
                previous = old_routing.get(dst_gid)
                if previous is None:
                    continue
                changed = int(np.count_nonzero(
                    previous.next_hop != routing.next_hop))
                if changed:
                    tracer.emit(now, ROUTE_CHANGE, node=routing.dst_node,
                                seq=dst_gid, value=float(changed))
        if span != -1:
            profiler.end(span)

    # ------------------------------------------------------------------
    # Lookup API used by the packet forwarder
    # ------------------------------------------------------------------

    def next_hop_from_satellite(self, sat_id: int,
                                dst_gid: int) -> Optional[int]:
        """Installed next hop of a satellite toward a destination GS."""
        routing = self._routing.get(dst_gid)
        if routing is None:
            raise KeyError(f"destination gid {dst_gid} was never registered")
        hop = int(routing.next_hop[sat_id])
        return None if hop == UNREACHABLE else hop

    def next_hop_from_ground(self, src_gid: int,
                             dst_gid: int) -> Optional[int]:
        """Installed ingress satellite of a ground station (source/relay).

        For relay GSes the transit tree already contains them, so their
        next hop comes straight from the predecessor array; plain source
        GSes choose the ingress minimizing uplink + satellite distance.
        """
        routing = self._routing.get(dst_gid)
        if routing is None:
            raise KeyError(f"destination gid {dst_gid} was never registered")
        station = self.network.ground_stations[src_gid]
        node_id = self.network.gs_node_id(src_gid)
        if station.is_relay:
            hop = int(routing.next_hop[node_id])
            return None if hop == UNREACHABLE else hop
        key = (src_gid, dst_gid)
        if key not in self._ingress_cache:
            assert self._snapshot is not None and self._multi is not None
            # One vectorized minimization fills the cache for this source
            # against every registered destination at once.
            ingress, _ = self._multi.source_ingress_many(
                self._snapshot.gsl_edges[src_gid])
            for row, gid in enumerate(self._multi.dst_gids):
                sat = int(ingress[row])
                self._ingress_cache[(src_gid, gid)] = (
                    None if sat == UNREACHABLE else sat)
        return self._ingress_cache[key]
