"""Fig. 11: constellation trajectory snapshots (T1 / K1 / S1).

Paper §6: renders the three first shells' satellite trajectories; the
networking-relevant facts are the coverage extents — Telesat's near-polar
inclination covers the poles while Kuiper/Starlink concentrate on the
populated latitudes.  This bench generates the CZML documents the Cesium
renderer would consume and checks those facts.
"""

import pytest

from repro import Hypatia
from repro.viz.czml import constellation_czml, constellation_summary

from _common import scaled, write_result

SHELLS = ["T1", "K1", "S1"]
SCENE_SECONDS = scaled(120.0, 600.0)


def test_fig11_constellation_trajectories(benchmark):
    holder = {}

    def generate_all():
        total_packets = 0
        for shell in SHELLS:
            hypatia = Hypatia.from_shell_name(shell, num_cities=1)
            doc = constellation_czml(hypatia.constellation, SCENE_SECONDS,
                                     step_s=30.0)
            summary = constellation_summary(hypatia.constellation)
            holder[shell] = (doc, summary)
            total_packets += len(doc)
        return total_packets

    benchmark.pedantic(generate_all, rounds=1, iterations=1)

    rows = ["# CZML trajectory documents (Cesium-renderable)"]
    for shell in SHELLS:
        doc, summary = holder[shell]
        config = summary["shells"][0]
        rows.append(
            f"{shell}: {config['orbits']} x {config['satellites_per_orbit']}"
            f" @ {config['altitude_km']:.0f} km, i={config['inclination_deg']}"
            f" deg -> {len(doc) - 1} satellite packets, max |latitude| "
            f"{summary['max_abs_latitude_deg']:.1f} deg")

    _, t1 = holder["T1"]
    _, k1 = holder["K1"]
    _, s1 = holder["S1"]
    # Telesat covers the high latitudes; Kuiper and Starlink do not
    # (paper §6).  T1's 98.98 deg inclination bounds |latitude| at
    # 81 deg; with 13 satellites per orbit the instantaneous maximum sits
    # a few degrees below the bound.
    assert t1["max_abs_latitude_deg"] > 75.0
    assert k1["max_abs_latitude_deg"] < 53.0
    assert s1["max_abs_latitude_deg"] < 54.0
    # Document sizes match the shell populations.
    assert len(holder["S1"][0]) - 1 == 1584
    assert len(holder["K1"][0]) - 1 == 1156
    assert len(holder["T1"][0]) - 1 == 351
    write_result("fig11_trajectories", rows)
