"""Fig. 13: Paris-Luanda shortest-path evolution on Starlink S1.

Paper §6: this north-south pair shows one of the highest RTT variations;
its path picks an orbit and rides it, and the RTT difference between the
best (85 ms) and worst (117 ms) paths comes from how many zig-zag hops are
needed to exit toward the destination.  This bench extracts the path
episodes, reports each one's hop count and RTT range, and exports the
waypoint geography of the extreme episodes.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.viz.paths_viz import episode_geography, path_episodes

from _common import scaled, write_result

DURATION_S = scaled(200.0, 200.0)
STEP_S = scaled(1.0, 0.1)


def test_fig13_paris_luanda_paths(benchmark):
    hypatia = Hypatia.from_shell_name("S1", num_cities=100)
    pair = hypatia.pair("Paris", "Luanda")
    holder = {}

    def sweep():
        timelines = hypatia.compute_timelines([pair], duration_s=DURATION_S,
                                              step_s=STEP_S)
        holder["timeline"] = timelines[pair]
        return len(holder["timeline"].paths)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    timeline = holder["timeline"]
    episodes = [e for e in path_episodes(timeline) if e.path is not None]
    assert episodes, "Paris-Luanda should be connected on S1"

    rows = [f"# Paris -> Luanda over S1, {DURATION_S}s at {STEP_S}s steps",
            f"{'start':>7} {'end':>7} {'hops':>5} {'minRTT':>8} "
            f"{'maxRTT':>8}"]
    for episode in episodes:
        rows.append(f"{episode.start_s:7.1f} {episode.end_s:7.1f} "
                    f"{episode.hops:5d} {episode.min_rtt_s * 1000:7.1f}ms "
                    f"{episode.max_rtt_s * 1000:7.1f}ms")

    shortest = min(episodes, key=lambda e: e.min_rtt_s)
    longest = max(episodes, key=lambda e: e.max_rtt_s)
    rows.append(f"\nshortest-RTT path: {shortest.min_rtt_s * 1000:.1f} ms, "
                f"{shortest.hops} hops (paper: 85 ms)")
    rows.append(f"longest-RTT path:  {longest.max_rtt_s * 1000:.1f} ms, "
                f"{longest.hops} hops (paper: 117 ms)")
    geo = episode_geography(longest, hypatia.network)
    satellite_lats = [wp["latitude_deg"] for wp in geo["waypoints"]
                      if wp["kind"] == "satellite"]
    rows.append(f"longest path satellite latitudes: "
                f"{np.round(satellite_lats, 1).tolist()}")

    # Shape: substantial RTT variation between episodes (paper: 85-117 ms
    # on this pair), within the plausible band for a ~7,000 km pair.
    rtts = timeline.rtts_s[np.isfinite(timeline.rtts_s)]
    assert rtts.min() * 1000 > 45.0
    assert rtts.max() * 1000 < 160.0
    assert rtts.max() - rtts.min() > 0.005  # >= 5 ms of variation
    assert len(episodes) >= 2  # the path changes during the window
    write_result("fig13_path_evolution", rows)
