"""Fig. 7: RTTs and their variation over time, across GS pairs.

Paper protocol (§5.1): same sweep as Fig. 6; three CDFs across pairs —
(a) max RTT, (b) max-min RTT, (c) max/min RTT.  Expected shape: RTT
variation is substantial for all constellations (several ms at the median,
tens of ms in the tail); a nontrivial fraction of pairs see >=20% RTT
change over time.
"""

import numpy as np
import pytest

from _common import format_cdf_summary, write_result
from _sweeps import DURATION_S, STEP_S, rtt_extremes, upper_pairs_mask

SHELLS = ["T1", "K1", "S1"]


def test_fig7_rtt_and_variation(benchmark):
    results = {}

    def sweep_all():
        for shell in SHELLS:
            results[shell] = rtt_extremes(shell)
        return len(results)

    benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    rows = [f"# duration={DURATION_S}s step={STEP_S}s, pairs >= 500 km, "
            f"always-connected pairs only"]
    spreads = {}
    ratios = {}
    for shell in SHELLS:
        result = results[shell]
        mask = upper_pairs_mask(result)
        max_rtt_ms = result["max_rtt_s"][mask] * 1000.0
        spread_ms = (result["max_rtt_s"][mask]
                     - result["min_rtt_s"][mask]) * 1000.0
        ratio = result["max_rtt_s"][mask] / result["min_rtt_s"][mask]
        spreads[shell] = spread_ms
        ratios[shell] = ratio
        rows.append(f"\n== {shell} ==")
        rows += format_cdf_summary("(a) max RTT", max_rtt_ms, unit="ms")
        rows += format_cdf_summary("(b) max - min RTT", spread_ms, unit="ms")
        rows += format_cdf_summary("(c) max / min RTT", ratio, unit="x")
        rows.append(f"fraction of pairs with max >= 1.2x min: "
                    f"{np.mean(ratio >= 1.2):.3f}")

    # Shape: RTTs vary substantially over time for every constellation —
    # the paper's core claim — with multi-ms medians and long tails.
    for shell in SHELLS:
        assert np.median(spreads[shell]) > 1.0, shell
        assert np.percentile(spreads[shell], 90) > 5.0, shell
        assert (ratios[shell] >= 1.0).all()
        assert np.percentile(ratios[shell], 90) > 1.05, shell
    write_result("fig7_rtt_variation", rows)
