"""Sweep-engine gate (the `make bench-sweep` part of `make check`).

The parallel snapshot-sweep contract (DESIGN.md "Sweep engine"): on the
Fig. 8 path-evolution workload — a permutation traffic matrix walked over
forwarding-state snapshots — ``workers=N`` must be bit-identical to
serial, and at 4 workers the wall-clock speedup must reach 1.7x (the
per-chunk network rebuild is the only duplicated work, and it amortizes
over the schedule).

The equality gate always runs; the speedup gate needs real parallelism
and is skipped on machines with fewer than 4 cores.
"""

import os
import time

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.obs import MetricsRegistry
from repro.sweep import NetworkSpec, sweep_timelines
from repro.topology.dynamic_state import snapshot_times

from _common import scaled, write_result

NUM_CITIES = scaled(20, 100)
DURATION_S = scaled(16.0, 200.0)
STEP_S = scaled(2.0, 0.5)
SPEEDUP_WORKERS = 4
MIN_SPEEDUP = 1.7

_CACHE = {}


def _workload():
    """The Fig. 8-style sweep inputs (built once per process)."""
    if not _CACHE:
        hypatia = Hypatia.from_shell_name("K1", num_cities=NUM_CITIES)
        _CACHE["spec"] = NetworkSpec.from_network(hypatia.network)
        _CACHE["pairs"] = random_permutation_pairs(NUM_CITIES)
        _CACHE["times"] = snapshot_times(DURATION_S, STEP_S)
    return _CACHE["spec"], _CACHE["pairs"], _CACHE["times"]


def _timed_sweep(workers: int, metrics=None):
    spec, pairs, times = _workload()
    start = time.perf_counter()
    timelines = sweep_timelines(spec, pairs, times, workers=workers,
                                metrics=metrics)
    return timelines, time.perf_counter() - start


def test_parallel_sweep_is_bit_identical_to_serial():
    spec, pairs, times = _workload()
    serial, _ = _timed_sweep(1)
    parallel, _ = _timed_sweep(SPEEDUP_WORKERS)
    assert set(parallel) == set(serial)
    for pair in pairs:
        assert np.array_equal(parallel[pair].distances_m,
                              serial[pair].distances_m,
                              equal_nan=True), pair
        assert parallel[pair].paths == serial[pair].paths, pair
        assert np.array_equal(parallel[pair].times_s, times)


@pytest.mark.skipif((os.cpu_count() or 1) < SPEEDUP_WORKERS,
                    reason=f"speedup gate needs >= {SPEEDUP_WORKERS} cores")
def test_parallel_sweep_speedup():
    _, serial_wall = _timed_sweep(1)
    registry = MetricsRegistry()
    _, parallel_wall = _timed_sweep(SPEEDUP_WORKERS, metrics=registry)
    speedup = serial_wall / parallel_wall

    rows = [
        "# sweep engine speedup (Fig. 8 path-evolution workload)",
        f"cities                {NUM_CITIES:10d}",
        f"snapshots             {len(_CACHE['times']):10d}",
        f"serial_wall_s         {serial_wall:10.3f}",
        f"parallel_wall_s       {parallel_wall:10.3f}",
        f"workers               {SPEEDUP_WORKERS:10d}",
        f"speedup               {speedup:10.2f}",
        f"min_speedup           {MIN_SPEEDUP:10.2f}",
    ]
    for index in range(SPEEDUP_WORKERS):
        prefix = f"sweep.worker.{index}."
        wall = registry.series_logs[prefix + "wall_s"].values[0]
        build = registry.series_logs[prefix + "build_s"].values[0]
        count = registry.series_logs[prefix + "snapshots"].values[0]
        rows.append(f"worker_{index}  {int(count):4d} snapshots  "
                    f"wall {wall:7.3f}s  (build {build:6.3f}s)")
    write_result("sweep_speedup", rows)

    assert speedup >= MIN_SPEEDUP, (
        f"4-worker sweep reached only {speedup:.2f}x over serial "
        f"(gate {MIN_SPEEDUP:.1f}x)")
