"""Figs. 16-17: Paris-Moscow connectivity, ISLs vs bent-pipe GS relays.

Paper Appendix A: with ISLs, the path goes up, rides lasers, and comes
down; without ISLs ("bent pipe"), it bounces between satellites and a grid
of candidate GS relays placed between the endpoints.  This bench builds
both networks, extracts the paths at the two instants the paper renders
(t ~ 0 and t ~ 159 s), and exports their waypoint geography.
"""

import pytest

from repro import Hypatia
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import relay_grid_between
from repro.viz.paths_viz import PathEpisode, episode_geography

from _common import write_result

SNAPSHOT_TIMES = [0.0, 159.0]


def _relay_grid():
    return relay_grid_between(GeodeticPosition(48.86, 2.35),
                              GeodeticPosition(55.76, 37.62),
                              rows=4, columns=6)


def test_fig16_17_isl_vs_bent_pipe_paths(benchmark):
    holder = {}

    def build_and_route():
        isl = Hypatia.from_shell_name("K1", num_cities=100)
        bent = Hypatia.from_shell_name("K1", num_cities=100,
                                       use_isls=False,
                                       extra_stations=_relay_grid())
        holder["isl"] = (isl, isl.pair("Paris", "Moscow"))
        holder["bent"] = (bent, bent.pair("Paris", "Moscow"))
        count = 0
        for label in ("isl", "bent"):
            hypatia, pair = holder[label]
            for t in SNAPSHOT_TIMES:
                path = hypatia.routing.path(hypatia.snapshot(t), *pair)
                holder[(label, t)] = path
                count += path is not None
        return count

    benchmark.pedantic(build_and_route, rounds=1, iterations=1)

    rows = ["# Paris -> Moscow over K1"]
    for label in ("isl", "bent"):
        hypatia, _ = holder[label]
        num_sats = hypatia.network.num_satellites
        for t in SNAPSHOT_TIMES:
            path = holder[(label, t)]
            rows.append(f"\n== {label} t={t:.0f}s ==")
            if path is None:
                rows.append("(disconnected)")
                continue
            kinds = []
            for node in path:
                if node < num_sats:
                    kinds.append("sat")
                else:
                    station = hypatia.ground_stations[node - num_sats]
                    kinds.append("relay" if station.is_relay else "gs")
            rows.append(" -> ".join(kinds))
            episode = PathEpisode(start_s=t, end_s=t + 1.0,
                                  path=tuple(path), min_rtt_s=0.0,
                                  max_rtt_s=0.0)
            geo = episode_geography(episode, hypatia.network)
            rows.append("waypoints: " + ", ".join(
                f"({wp['latitude_deg']:.0f},{wp['longitude_deg']:.0f})"
                for wp in geo["waypoints"]))

    # Shape checks: the ISL path uses exactly one up and one down GSL with
    # satellites between; the bent-pipe path alternates and uses relays.
    for t in SNAPSHOT_TIMES:
        isl_path = holder[("isl", t)]
        assert isl_path is not None
        isl_hypatia, _ = holder["isl"]
        interior = isl_path[1:-1]
        assert all(n < isl_hypatia.network.num_satellites for n in interior)

        bent_path = holder[("bent", t)]
        assert bent_path is not None
        bent_hypatia, _ = holder["bent"]
        n_sats = bent_hypatia.network.num_satellites
        sat_count = sum(1 for n in bent_path if n < n_sats)
        relay_count = sum(
            1 for n in bent_path
            if n >= n_sats
            and bent_hypatia.ground_stations[n - n_sats].is_relay)
        assert sat_count >= 2, "bent pipe needs multiple bounces"
        assert relay_count >= 1, "paper's scenario uses GS relays"
        # No two satellites adjacent (there are no ISLs).
        for a, b in zip(bent_path, bent_path[1:]):
            assert not (a < n_sats and b < n_sats)
    write_result("fig16_17_bent_pipe_paths", rows)
