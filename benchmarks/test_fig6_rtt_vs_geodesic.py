"""Fig. 6: max RTT over time vs the geodesic RTT, across GS pairs.

Paper protocol (§5.1): Starlink S1, Kuiper K1, Telesat T1 over the 100
most populous cities, all pairs >= 500 km apart.  Expected shape: for all
three constellations, more than ~80% of connected pairs have a maximum RTT
under 2x the geodesic; Telesat achieves the lowest ratios despite the
fewest satellites (its 10 deg minimum elevation), Starlink the highest
(22 satellites per orbit force zig-zag paths).
"""

import numpy as np
import pytest

from _common import format_cdf_summary, write_result
from _sweeps import DURATION_S, STEP_S, rtt_extremes, upper_pairs_mask

SHELLS = ["T1", "K1", "S1"]


def test_fig6_max_rtt_over_geodesic(benchmark):
    results = {}

    def sweep_all():
        for shell in SHELLS:
            results[shell] = rtt_extremes(shell)
        return len(results)

    benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    rows = [f"# duration={DURATION_S}s step={STEP_S}s, pairs >= 500 km, "
            f"always-connected pairs only"]
    ratios = {}
    for shell in SHELLS:
        result = results[shell]
        mask = upper_pairs_mask(result)
        ratio = (result["max_rtt_s"][mask]
                 / result["geodesic_rtt_s"][mask])
        ratios[shell] = ratio
        rows += format_cdf_summary(
            f"{shell} max-RTT / geodesic-RTT", ratio, unit="x")
        rows.append(f"{shell}: fraction of pairs with max RTT < 2x "
                    f"geodesic: {np.mean(ratio < 2.0):.3f}")

    # Shape assertions (paper §5.1): the geodesic is a hard lower bound
    # and the bulk of pairs sit under 2x it for every constellation.
    for shell in SHELLS:
        assert np.mean(ratios[shell] < 2.0) > 0.6, shell
        assert (ratios[shell] >= 1.0).all(), "geodesic RTT is a lower bound"
    # The paper additionally orders the constellations T1 < K1 < S1 at the
    # median; that ordering is sensitive to inter-plane phasing details
    # the filings do not pin down, so it is reported rather than asserted
    # (see EXPERIMENTS.md).
    medians = {shell: float(np.median(ratios[shell])) for shell in SHELLS}
    rows.append(f"median ordering observed: "
                f"{sorted(medians, key=medians.get)} "
                f"(paper: ['T1', 'K1', 'S1'])")
    assert max(medians.values()) < 1.6  # all three stay near the geodesic
    write_result("fig6_rtt_vs_geodesic", rows)
