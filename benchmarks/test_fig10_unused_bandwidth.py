"""Fig. 10: unused bandwidth on an end-end path under cross-traffic.

Paper protocol (§5.4): Kuiper K1 at 10 Mbit/s per link, long-running
TCP-like flows on a fixed permutation of the 100 cities, shortest-path
routing.  The measured quantity is the Rio de Janeiro-St. Petersburg
path's unused bandwidth (capacity minus the most congested on-path link's
utilization) at 1 s granularity, against a baseline with the network
frozen at one instant.

Substitution note: the constellation-wide traffic is run on the fluid AIMD
engine (per DESIGN.md) rather than per-packet ns-3.  Expected shape: the
dynamic network leaves more capacity unused than the frozen one; the paper
reports 31% vs 11% of time with more than a third of capacity unused —
the fluid idealization preserves the ordering and the fluctuating shape,
at smaller magnitudes (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.analysis.bandwidth import unused_bandwidth_stats
from repro.fluid.aimd import AimdFluidSimulation
from repro.fluid.engine import FluidFlow

from _common import scaled, write_result

DURATION_S = scaled(150.0, 200.0)
LINK_RATE_BPS = 10_000_000.0
EPOCH_OFFSET_S = 10.0
FREEZE_AT_S = 5.0


def test_fig10_unused_bandwidth(benchmark):
    hypatia = Hypatia.from_shell_name("K1", num_cities=100,
                                      epoch_offset_s=EPOCH_OFFSET_S)
    rio_sp = hypatia.pair("Rio de Janeiro", "Saint Petersburg")
    pairs = random_permutation_pairs(100)
    flows = [FluidFlow(src, dst) for src, dst in pairs
             if (src, dst) != rio_sp]
    flows.append(FluidFlow(*rio_sp))
    flow_index = len(flows) - 1
    holder = {}

    def run_both():
        dynamic = AimdFluidSimulation(
            hypatia.network, flows, link_capacity_bps=LINK_RATE_BPS)
        holder["dynamic"] = dynamic.run(DURATION_S, step_s=1.0)
        static = AimdFluidSimulation(
            hypatia.network, flows, link_capacity_bps=LINK_RATE_BPS,
            freeze_topology_at_s=FREEZE_AT_S)
        holder["static"] = static.run(DURATION_S, step_s=1.0)
        return 2

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [f"# K1, 100-city permutation, {LINK_RATE_BPS / 1e6:.0f} Mbit/s "
            f"links, {DURATION_S}s, Rio de Janeiro -> Saint Petersburg"]
    stats = {}
    for label in ("dynamic", "static"):
        unused = holder[label].unused_bandwidth_bps(flow_index)
        stats[label] = unused_bandwidth_stats(unused, LINK_RATE_BPS)
        rows.append(
            f"{label:>8}: mean unused "
            f"{stats[label].mean_unused_bps / 1e6:.2f} Mbit/s, "
            f"time with > 1/3 capacity unused: "
            f"{stats[label].fraction_above_third * 100:.1f}%, "
            f"connected {stats[label].connected_fraction * 100:.0f}% "
            f"(paper: 31% dynamic vs 11% static)")
        series = unused[~np.isnan(unused)] / 1e6
        rows.append(f"          series: p50 {np.percentile(series, 50):.2f} "
                    f"p90 {np.percentile(series, 90):.2f} "
                    f"max {series.max():.2f} Mbit/s")

    # Shape: satellite motion leaves more of the path unused than the
    # frozen network does.
    assert stats["dynamic"].mean_unused_bps > stats["static"].mean_unused_bps
    assert (stats["dynamic"].fraction_above_third
            >= stats["static"].fraction_above_third)
    write_result("fig10_unused_bandwidth", rows)
