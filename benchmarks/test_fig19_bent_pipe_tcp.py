"""Fig. 19: TCP behaviour, ISLs vs bent-pipe — shared-bottleneck effects.

Paper Appendix A: with ISLs, the bottleneck is the source GS's uplink
device; with bent-pipe connectivity, the data packets and the reverse
ACKs share on-path satellite GSL devices, perturbing the window and
costing a modest amount of throughput.  Expected shape: bent-pipe goodput
is modestly lower, and its window sees more disturbance events.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import relay_grid_between
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow

from _common import scaled, write_result

DURATION_S = scaled(60.0, 200.0)
RATE_BPS = 10_000_000.0
QUEUE_PACKETS = 100


def test_fig19_tcp_isl_vs_bent_pipe(benchmark):
    relays = relay_grid_between(GeodeticPosition(48.86, 2.35),
                                GeodeticPosition(55.76, 37.62),
                                rows=4, columns=6)
    studies = {
        "isl": Hypatia.from_shell_name("K1", num_cities=100),
        "bent": Hypatia.from_shell_name("K1", num_cities=100,
                                        use_isls=False,
                                        extra_stations=relays),
    }
    holder = {}

    def run_all():
        events = 0
        for label, hypatia in studies.items():
            pair = hypatia.pair("Paris", "Moscow")
            sim = PacketSimulator(
                hypatia.network,
                LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                           isl_queue_packets=QUEUE_PACKETS,
                           gsl_queue_packets=QUEUE_PACKETS))
            flow = TcpNewRenoFlow(pair[0], pair[1]).install(sim)
            sim.run(DURATION_S)
            holder[label] = flow
            events += sim.scheduler.events_processed
        return events

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [f"# Paris -> Moscow TCP NewReno, {RATE_BPS / 1e6:.0f} Mbit/s, "
            f"{DURATION_S}s"]
    for label in ("isl", "bent"):
        flow = holder[label]
        times, cwnd = flow.cwnd_log.as_arrays()
        late = cwnd[times > DURATION_S * 0.2]
        rows.append(f"\n== {label} ==")
        rows.append(f"goodput: {flow.goodput_bps(DURATION_S) / 1e6:.2f} "
                    f"Mbit/s")
        rows.append(f"cwnd (post-transient): min {late.min():.0f} median "
                    f"{np.median(late):.0f} max {late.max():.0f} pkts")
        rows.append(f"window-cut events: fast rtx {flow.fast_retransmits}, "
                    f"timeouts {flow.timeouts}, reordered arrivals "
                    f"{flow.reordered_arrivals}")

    isl_goodput = holder["isl"].goodput_bps(DURATION_S)
    bent_goodput = holder["bent"].goodput_bps(DURATION_S)
    rows.append(f"\nbent-pipe / ISL goodput ratio: "
                f"{bent_goodput / isl_goodput:.3f} "
                f"(paper: modestly below 1)")
    # Shape: both flows move real data; bent pipe does not beat ISLs.
    assert isl_goodput > 2e6
    assert bent_goodput > 1e6
    assert bent_goodput <= isl_goodput * 1.02
    write_result("fig19_bent_pipe_tcp", rows)
