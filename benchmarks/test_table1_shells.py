"""Table 1: shell configurations of Starlink, Kuiper, and Telesat.

Regenerates the table's rows from the constellation definitions and
benchmarks full constellation instantiation (all 4,409 Starlink phase-1
satellites).
"""

from repro.constellations.builder import Constellation
from repro.constellations.definitions import ALL_SHELLS

from _common import write_result


def test_table1_shell_configurations(benchmark):
    lines = [f"{'shell':>6} {'h (km)':>8} {'orbits':>7} "
             f"{'sats/orbit':>11} {'i':>7}"]
    for spec in ALL_SHELLS.values():
        for shell in spec.shells:
            lines.append(
                f"{shell.name:>6} {shell.altitude_km:8.0f} "
                f"{shell.num_orbits:7d} {shell.satellites_per_orbit:11d} "
                f"{shell.inclination_deg:6.2f}°")
        lines.append(f"  -> {spec.name}: {spec.total_satellites} satellites, "
                     f"min elevation {spec.min_elevation_deg:.0f}°")

    def build_all():
        constellations = [
            Constellation(spec.shells, name=spec.name)
            for spec in ALL_SHELLS.values()
        ]
        return sum(c.num_satellites for c in constellations)

    total = benchmark(build_all)
    assert total == 4409 + 3236 + 1671
    lines.append(f"total satellites instantiated: {total}")
    write_result("table1_shells", lines)
