"""Fig. 18: Paris-Moscow RTT over time, ISLs vs bent-pipe.

Paper Appendix A: the computed (propagation) RTT of the bent-pipe path is
typically ~5 ms above the ISL path's; under a 10 Mbit/s TCP flow, queueing
inflates the TCP-estimated RTT far beyond the computed RTT in both cases.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import relay_grid_between
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow

from _common import scaled, write_result

DURATION_S = scaled(60.0, 200.0)
RATE_BPS = 10_000_000.0
QUEUE_PACKETS = 100


@pytest.fixture(scope="module")
def studies():
    relays = relay_grid_between(GeodeticPosition(48.86, 2.35),
                                GeodeticPosition(55.76, 37.62),
                                rows=4, columns=6)
    return {
        "isl": Hypatia.from_shell_name("K1", num_cities=100),
        "bent": Hypatia.from_shell_name("K1", num_cities=100,
                                        use_isls=False,
                                        extra_stations=relays),
    }


def test_fig18_rtt_isl_vs_bent_pipe(studies, benchmark):
    holder = {}

    def run_all():
        events = 0
        for label, hypatia in studies.items():
            pair = hypatia.pair("Paris", "Moscow")
            timeline = hypatia.compute_timelines(
                [pair], duration_s=DURATION_S, step_s=1.0)[pair]
            sim = PacketSimulator(
                hypatia.network,
                LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                           isl_queue_packets=QUEUE_PACKETS,
                           gsl_queue_packets=QUEUE_PACKETS))
            flow = TcpNewRenoFlow(pair[0], pair[1]).install(sim)
            sim.run(DURATION_S)
            holder[label] = (timeline, flow)
            events += sim.scheduler.events_processed
        return events

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [f"# Paris -> Moscow, {RATE_BPS / 1e6:.0f} Mbit/s, "
            f"queue {QUEUE_PACKETS} pkts, {DURATION_S}s"]
    computed = {}
    for label in ("isl", "bent"):
        timeline, flow = holder[label]
        rtts = timeline.rtts_s
        finite = rtts[np.isfinite(rtts)]
        computed[label] = finite
        _, tcp_rtt = flow.rtt_log.as_arrays()
        rows.append(f"\n== {label} ==")
        rows.append(f"computed RTT: mean {finite.mean() * 1000:.1f} ms "
                    f"({finite.min() * 1000:.1f}-"
                    f"{finite.max() * 1000:.1f} ms)")
        rows.append(f"TCP estimated RTT: median "
                    f"{np.median(tcp_rtt) * 1000:.1f} ms, max "
                    f"{tcp_rtt.max() * 1000:.1f} ms")
        rows.append(f"goodput {flow.goodput_bps(DURATION_S) / 1e6:.2f} "
                    f"Mbit/s")

    # Shape: bent pipe's computed RTT is higher (paper: ~+5 ms typical),
    # and queueing inflates the TCP RTT well beyond the computed RTT.
    assert computed["bent"].mean() > computed["isl"].mean()
    assert computed["bent"].mean() - computed["isl"].mean() < 0.040
    for label in ("isl", "bent"):
        timeline, flow = holder[label]
        _, tcp_rtt = flow.rtt_log.as_arrays()
        assert np.median(tcp_rtt) > computed[label].mean()
    write_result("fig18_bent_pipe_rtt", rows)
