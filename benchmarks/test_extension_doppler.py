"""Extension bench: Doppler over ISLs (paper §7 future work).

Quantifies the §2.3 geometry: same-orbit +Grid links hold constant
separation (zero Doppler), while cross-orbit links converge toward the
highest latitudes and diverge over the Equator, sweeping km/s of radial
velocity — GHz of optical carrier shift that ISL transceivers must track.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.analysis.doppler import (
    doppler_shift_hz,
    isl_radial_velocities_m_per_s,
)
from repro.orbits.shell import SatelliteIndex

from _common import write_result

SHELLS = ["K1", "S1"]
SAMPLE_TIMES = [0.0, 500.0, 1000.0, 1500.0, 2000.0]
OPTICAL_CARRIER_HZ = 193.4e12  # 1550 nm


def test_extension_isl_doppler(benchmark):
    holder = {}

    def sweep():
        for shell_name in SHELLS:
            hypatia = Hypatia.from_shell_name(shell_name, num_cities=1)
            constellation = hypatia.constellation
            shell = constellation.shells[0]
            pairs = hypatia.network.isl_pairs
            # Split into intra-orbit and cross-orbit links.
            intra, cross = [], []
            for a, b in pairs:
                if a // shell.satellites_per_orbit == \
                        b // shell.satellites_per_orbit:
                    intra.append((a, b))
                else:
                    cross.append((a, b))
            intra = np.array(intra)
            cross = np.array(cross)
            intra_max = cross_max = 0.0
            for t in SAMPLE_TIMES:
                v_intra = isl_radial_velocities_m_per_s(
                    constellation, intra, float(t))
                v_cross = isl_radial_velocities_m_per_s(
                    constellation, cross, float(t))
                intra_max = max(intra_max, float(np.abs(v_intra).max()))
                cross_max = max(cross_max, float(np.abs(v_cross).max()))
            holder[shell_name] = (intra_max, cross_max)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["# max |radial velocity| over sampled times, by link class",
            f"{'shell':>6} {'intra-orbit (m/s)':>18} "
            f"{'cross-orbit (m/s)':>18} {'optical shift (GHz)':>20}"]
    for shell_name in SHELLS:
        intra_max, cross_max = holder[shell_name]
        shift = abs(float(doppler_shift_hz(
            OPTICAL_CARRIER_HZ, np.array([cross_max]))[0]))
        rows.append(f"{shell_name:>6} {intra_max:18.2f} {cross_max:18.2f} "
                    f"{shift / 1e9:20.3f}")

    for shell_name in SHELLS:
        intra_max, cross_max = holder[shell_name]
        assert intra_max < 1.0, "same-orbit links must be Doppler-free"
        assert cross_max > 100.0, "cross-orbit links must oscillate"
    write_result("extension_doppler", rows)
