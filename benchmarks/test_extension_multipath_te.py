"""Extension bench: multipath traffic engineering over hotspots.

The paper's §5.4 takeaway: "there will be substantial value in using
non-shortest path and multi-path routing across busy regions".  This bench
quantifies that value with the max-min fluid allocator: the permutation
traffic matrix is allocated once with every flow pinned to its shortest
path, and once with every flow split across up to two edge-disjoint paths.
Splitting moves traffic off the shared bottlenecks and raises both the
aggregate allocation and the worst flow's share.
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.fluid.engine import path_devices
from repro.fluid.maxmin import max_min_fair_allocation
from repro.routing.multipath import edge_disjoint_paths

from _common import scaled, write_result

NUM_FLOWS = scaled(40, 100)
LINK_RATE_BPS = 10e6


def test_extension_multipath_te(kuiper, benchmark):
    pairs = random_permutation_pairs(100)[:NUM_FLOWS]
    num_sats = kuiper.network.num_satellites
    holder = {}

    def allocate_both():
        snapshot = kuiper.snapshot(0.0)
        single_links = []
        multi_links = []       # flattened subflow link lists
        subflow_owner = []     # subflow index -> flow index
        for flow_index, (src, dst) in enumerate(pairs):
            paths = edge_disjoint_paths(snapshot, src, dst, max_paths=2)
            if not paths:
                continue
            best = paths[0][0]
            single_links.append(
                (flow_index, path_devices(best, num_sats)))
            for path, _ in paths:
                multi_links.append(path_devices(path, num_sats))
                subflow_owner.append(flow_index)

        def run(flow_links):
            capacities = {}
            for links in flow_links:
                for link in links:
                    capacities[link] = LINK_RATE_BPS
            return max_min_fair_allocation(
                capacities, flow_links,
                demands=[100 * LINK_RATE_BPS] * len(flow_links))

        single_rates = run([links for _, links in single_links])
        subflow_rates = run(multi_links)
        per_flow_multi = {}
        for rate, owner in zip(subflow_rates, subflow_owner):
            per_flow_multi[owner] = per_flow_multi.get(owner, 0.0) + rate
        holder["single"] = {
            flow_index: rate
            for (flow_index, _), rate in zip(single_links, single_rates)
        }
        holder["multi"] = per_flow_multi
        return len(single_links)

    benchmark.pedantic(allocate_both, rounds=1, iterations=1)

    single = np.array(list(holder["single"].values()))
    multi = np.array([holder["multi"][flow_index]
                      for flow_index in holder["single"]])
    rows = [f"# K1, {NUM_FLOWS} permutation flows, 10 Mbit/s devices, "
            f"max-min allocation",
            f"{'routing':>12} {'aggregate (Mbit/s)':>19} "
            f"{'worst flow':>11} {'median flow':>12}",
            f"{'single-path':>12} {single.sum() / 1e6:19.2f} "
            f"{single.min() / 1e6:11.2f} "
            f"{np.median(single) / 1e6:12.2f}",
            f"{'2-disjoint':>12} {multi.sum() / 1e6:19.2f} "
            f"{multi.min() / 1e6:11.2f} "
            f"{np.median(multi) / 1e6:12.2f}",
            f"aggregate gain: {multi.sum() / single.sum() - 1.0:+.1%}"]

    assert multi.sum() > single.sum()          # TE frees capacity
    assert multi.min() >= single.min() - 1e-6  # no flow is worse off
    write_result("extension_multipath_te", rows)
