"""Extension bench: BBR vs NewReno vs Vegas on a moving LEO path.

Paper §4.2 wishes for exactly this experiment ("once a mature
implementation of BBR is available, evaluating its behavior on LEO
networks would be of high interest").  Same scenario as Fig. 5 —
Rio de Janeiro to St. Petersburg over Kuiper K1 across a path-change RTT
step — now with all three congestion controllers.

Expected shape: NewReno rides a full queue; Vegas keeps the queue empty
but its throughput falls after the RTT step and stays down; BBR keeps the
queue shallow *and* recovers — its windowed min-RTT filter expires the
stale pre-change samples, so the RTT step is absorbed instead of being
misread as congestion.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.bbr import TcpBbrFlow
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.vegas import TcpVegasFlow

from _common import scaled, write_result

DURATION_S = scaled(44.0, 200.0)
RATE_BPS = 10_000_000.0
QUEUE_PACKETS = 100
EPOCH_OFFSET_S = 10.0  # window with an ~+9 ms RTT step at t=26 s

FLAVORS = [("newreno", TcpNewRenoFlow), ("vegas", TcpVegasFlow),
           ("bbr", TcpBbrFlow)]


def test_extension_bbr_vs_loss_vs_delay(benchmark):
    study = Hypatia.from_shell_name("K1", num_cities=100,
                                    epoch_offset_s=EPOCH_OFFSET_S)
    pair = study.pair("Rio de Janeiro", "Saint Petersburg")
    holder = {}

    def run_all():
        events = 0
        for label, factory in FLAVORS:
            sim = PacketSimulator(
                study.network,
                LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                           isl_queue_packets=QUEUE_PACKETS,
                           gsl_queue_packets=QUEUE_PACKETS))
            flow = factory(pair[0], pair[1]).install(sim)
            sim.run(DURATION_S)
            holder[label] = flow
            events += sim.scheduler.events_processed
        return events

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [f"# Rio de Janeiro -> Saint Petersburg, {RATE_BPS / 1e6:.0f} "
            f"Mbit/s, {DURATION_S:.0f}s, RTT step at t=26 s",
            f"{'cc':>8} {'median RTT (ms)':>16} {'before (Mbit/s)':>16} "
            f"{'after (Mbit/s)':>15} {'overall':>8}"]
    halves = {}
    medians = {}
    for label, _ in FLAVORS:
        flow = holder[label]
        _, rtt = flow.rtt_log.as_arrays()
        series = flow.throughput_series_bps()
        half = len(series) // 2
        before, after = series[:half].mean(), series[half:].mean()
        halves[label] = (before, after)
        medians[label] = float(np.median(rtt))
        rows.append(f"{label:>8} {np.median(rtt) * 1000:16.1f} "
                    f"{before / 1e6:16.2f} {after / 1e6:15.2f} "
                    f"{flow.goodput_bps(DURATION_S) / 1e6:8.2f}")

    # Vegas falls after the step and BBR does not (paper-motivated
    # contrast); BBR keeps the queue shallower than NewReno.
    assert halves["vegas"][1] < halves["vegas"][0]
    assert halves["bbr"][1] >= halves["bbr"][0] * 0.9
    assert medians["bbr"] < medians["newreno"]
    assert (holder["bbr"].goodput_bps(DURATION_S)
            > holder["vegas"].goodput_bps(DURATION_S))
    write_result("extension_bbr", rows)
