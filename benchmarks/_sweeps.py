"""Shared constellation-wide sweeps for Figs. 6-8 (cached per process).

Figs. 6 and 7 consume the same all-pairs RTT extremes; Fig. 8 consumes the
per-pair path timelines.  The sweeps are computed once per constellation
and reused across the benchmark files.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro import Hypatia, random_permutation_pairs
from repro.geo.distance import geodesic_rtt_s, great_circle_distance_m
from repro.geo.constants import SPEED_OF_LIGHT_M_PER_S
from repro.topology.dynamic_state import DynamicState

from _common import scaled

#: Sweep parameters (paper: 200 s at 100 ms; scaled keeps the same span
#: with a coarser step — RTT extremes converge quickly).
DURATION_S = scaled(120.0, 200.0)
STEP_S = scaled(4.0, 1.0)
PATH_STEP_S = scaled(2.0, 0.5)
NUM_CITIES = 100

_RTT_CACHE: Dict[str, dict] = {}
_PATH_CACHE: Dict[str, dict] = {}


def rtt_extremes(shell_name: str) -> dict:
    """Min/max RTT over time for every GS pair, plus geodesic RTTs.

    Returns a dict with (G, G) arrays ``min_rtt_s``, ``max_rtt_s``,
    ``geodesic_rtt_s``, ``separation_m`` and ``connected_fraction``.
    """
    if shell_name in _RTT_CACHE:
        return _RTT_CACHE[shell_name]
    hypatia = Hypatia.from_shell_name(shell_name, num_cities=NUM_CITIES)
    stations = hypatia.ground_stations
    num = len(stations)
    times = np.arange(0.0, DURATION_S, STEP_S)
    min_d = np.full((num, num), np.inf)
    max_d = np.zeros((num, num))
    connected = np.zeros((num, num))
    for time_s in times:
        snapshot = hypatia.snapshot(float(time_s))
        distances = hypatia.routing.all_pairs_distance_m(snapshot)
        finite = np.isfinite(distances)
        min_d = np.minimum(min_d, distances)
        with np.errstate(invalid="ignore"):
            max_d = np.where(finite, np.maximum(max_d, distances), max_d)
        connected += finite
    geodesic = np.zeros((num, num))
    separation = np.zeros((num, num))
    for i in range(num):
        for j in range(num):
            if i == j:
                continue
            geodesic[i, j] = geodesic_rtt_s(stations[i].position,
                                            stations[j].position)
            separation[i, j] = great_circle_distance_m(
                stations[i].position, stations[j].position)
    result = {
        "min_rtt_s": 2.0 * min_d / SPEED_OF_LIGHT_M_PER_S,
        "max_rtt_s": 2.0 * max_d / SPEED_OF_LIGHT_M_PER_S,
        "geodesic_rtt_s": geodesic,
        "separation_m": separation,
        "connected_fraction": connected / len(times),
        "num_snapshots": len(times),
    }
    _RTT_CACHE[shell_name] = result
    return result


def upper_pairs_mask(result: dict, min_separation_m: float = 500_000.0,
                     require_full_connectivity: bool = True) -> np.ndarray:
    """Pairs retained by the paper's filters (>=500 km apart), i<j."""
    num = result["separation_m"].shape[0]
    mask = np.triu(np.ones((num, num), dtype=bool), k=1)
    mask &= result["separation_m"] >= min_separation_m
    if require_full_connectivity:
        mask &= result["connected_fraction"] >= 0.999
    else:
        mask &= result["connected_fraction"] > 0.0
    return mask


def path_timelines(shell_name: str) -> dict:
    """Per-pair path timelines for the permutation traffic matrix."""
    if shell_name in _PATH_CACHE:
        return _PATH_CACHE[shell_name]
    hypatia = Hypatia.from_shell_name(shell_name, num_cities=NUM_CITIES)
    pairs = random_permutation_pairs(NUM_CITIES)
    state = DynamicState(hypatia.network, pairs, duration_s=DURATION_S,
                         step_s=PATH_STEP_S)
    result = {
        "hypatia": hypatia,
        "timelines": state.compute(),
        "pairs": pairs,
    }
    _PATH_CACHE[shell_name] = result
    return result
