"""Extension bench: GEO vs LEO latency — the paper's §1/§2.4 motivation.

"Operating at 35,786 km, [GEO constellations] incur hundreds of
milliseconds of latency", which is why the new constellations fly LEO.
This bench builds a geostationary belt and Kuiper K1 over the same city
pairs and quantifies the gap.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.constellations.builder import Constellation
from repro.constellations.definitions import geostationary_belt
from repro.ground.stations import ground_stations_from_cities
from repro.routing.engine import RoutingEngine
from repro.topology.isl import no_isls
from repro.topology.network import LeoNetwork

from _common import write_result

PAIR_NAMES = [
    ("Sao Paulo", "Bogota"),
    ("Lagos", "Cairo"),
    ("Jakarta", "Manila"),
]


def test_extension_geo_vs_leo_latency(kuiper, benchmark):
    stations = ground_stations_from_cities(count=100)
    holder = {}

    def run():
        geo = LeoNetwork(Constellation([geostationary_belt(8)]), stations,
                         min_elevation_deg=10.0, isl_builder=no_isls)
        geo_engine = RoutingEngine(geo)
        geo_snapshot = geo.snapshot(0.0)
        leo_snapshot = kuiper.snapshot(0.0)
        for name_a, name_b in PAIR_NAMES:
            pair = kuiper.pair(name_a, name_b)
            holder[(name_a, name_b)] = (
                geo_engine.pair_rtt_s(geo_snapshot, *pair),
                kuiper.routing.pair_rtt_s(leo_snapshot, *pair),
            )
        return len(holder)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = ["# bent-pipe GEO belt (8 satellites) vs Kuiper K1 (+Grid)",
            f"{'pair':>22} {'GEO RTT (ms)':>13} {'LEO RTT (ms)':>13} "
            f"{'GEO/LEO':>8}"]
    for (name_a, name_b), (geo_rtt, leo_rtt) in holder.items():
        rows.append(f"{name_a + '->' + name_b:>22} {geo_rtt * 1000:13.1f} "
                    f"{leo_rtt * 1000:13.1f} {geo_rtt / leo_rtt:8.1f}")

    for geo_rtt, leo_rtt in holder.values():
        assert np.isfinite(geo_rtt) and np.isfinite(leo_rtt)
        assert geo_rtt > 0.4          # "hundreds of milliseconds"
        assert leo_rtt < 0.15         # LEO stays in the tens of ms
        assert geo_rtt > 4.0 * leo_rtt
    write_result("extension_geo_vs_leo", rows)
