"""Ablation: minimum elevation angle vs RTT — the Telesat mechanism.

Paper §5.1 explains Telesat's low latencies by its 10 deg minimum
elevation: GSes see more satellites (more path options) and the low-
elevation GSLs have less up/down overhead.  This ablation isolates the
mechanism by sweeping the minimum elevation on a *fixed* constellation
(Kuiper K1): lower elevation should monotonically reduce median RTT and
increase GS-satellite visibility.
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs

from _common import scaled, write_result

ELEVATIONS_DEG = [10.0, 20.0, 30.0, 40.0]
NUM_PAIRS = scaled(30, 100)


def test_ablation_min_elevation_sweep(benchmark):
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    holder = {}

    def sweep():
        for elevation in ELEVATIONS_DEG:
            hypatia = Hypatia.from_shell_name(
                "K1", num_cities=100, min_elevation_deg=elevation)
            snapshot = hypatia.snapshot(0.0)
            visible = [len(snapshot.gsl_edges[gid].satellite_ids)
                       for gid in range(100)]
            rtts = []
            for src, dst in pairs:
                rtt = hypatia.routing.pair_rtt_s(snapshot, src, dst)
                if np.isfinite(rtt):
                    rtts.append(rtt)
            holder[elevation] = (np.mean(visible), np.array(rtts))
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["# K1, fixed constellation, min elevation swept",
            f"{'elevation':>10} {'mean visible sats':>18} "
            f"{'median RTT (ms)':>16} {'connected pairs':>16}"]
    for elevation in ELEVATIONS_DEG:
        visible, rtts = holder[elevation]
        rows.append(f"{elevation:9.0f}° {visible:18.2f} "
                    f"{np.median(rtts) * 1000:16.2f} "
                    f"{len(rtts):16d}")

    visibilities = [holder[e][0] for e in ELEVATIONS_DEG]
    medians = [np.median(holder[e][1]) for e in ELEVATIONS_DEG]
    connected = [len(holder[e][1]) for e in ELEVATIONS_DEG]
    # Lower elevation -> strictly more visibility, no worse RTTs, and at
    # least as many connected pairs.
    assert all(a > b for a, b in zip(visibilities, visibilities[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(medians, medians[1:]))
    assert all(a >= b for a, b in zip(connected, connected[1:]))
    write_result("ablation_elevation", rows)
