"""Ablation: GS satellite-selection policy — all-visible vs nearest-only.

Paper §3.1 offers both policies.  Restricting a GS to its nearest
satellite (the single-phased-array user-terminal model) removes ingress
options, so RTTs can only get worse and path churn can only increase.
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.analysis.paths import pair_path_stats
from repro.topology.dynamic_state import DynamicState
from repro.topology.gsl import GslPolicy

from _common import scaled, write_result

NUM_PAIRS = scaled(20, 100)
DURATION_S = scaled(60.0, 200.0)
STEP_S = 2.0


def test_ablation_gsl_policy(benchmark):
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    holder = {}

    def sweep():
        for policy in (GslPolicy.ALL_VISIBLE, GslPolicy.NEAREST_ONLY):
            hypatia = Hypatia.from_shell_name("K1", num_cities=100,
                                              gsl_policy=policy)
            state = DynamicState(hypatia.network, pairs,
                                 duration_s=DURATION_S, step_s=STEP_S)
            holder[policy] = (hypatia, state.compute())
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"# K1, {NUM_PAIRS} pairs, {DURATION_S}s at {STEP_S}s"]
    summaries = {}
    for policy in (GslPolicy.ALL_VISIBLE, GslPolicy.NEAREST_ONLY):
        hypatia, timelines = holder[policy]
        rtts = np.concatenate([
            tl.rtts_s[np.isfinite(tl.rtts_s)]
            for tl in timelines.values()
        ])
        stats = pair_path_stats(timelines,
                                hypatia.network.num_satellites)
        changes = np.array([s.num_path_changes for s in stats])
        summaries[policy] = (np.median(rtts), np.mean(changes))
        rows.append(f"{policy.value:>13}: median RTT "
                    f"{np.median(rtts) * 1000:.2f} ms, mean path changes "
                    f"{np.mean(changes):.2f}")

    all_rtt, all_changes = summaries[GslPolicy.ALL_VISIBLE]
    nearest_rtt, nearest_changes = summaries[GslPolicy.NEAREST_ONLY]
    assert nearest_rtt >= all_rtt
    assert nearest_changes >= all_changes
    write_result("ablation_gsl_policy", rows)
