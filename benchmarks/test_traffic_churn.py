"""Traffic-churn gate: 1000 finite flows arriving and completing on S1.

The workload subsystem's scale check: a gravity-model arrival process
drives ~1000 finite flows through the max-min fluid engine on the
Starlink S1 shell with 100 city ground stations.  The engine re-solves
the allocation at every arrival/completion, so this exercises the
dynamic sub-event path end to end, then asserts the churn actually
converges: nearly every flow completes within the horizon and the
delivered volume matches the offered volume.
"""

import numpy as np
import pytest

from repro.fluid.engine import FluidSimulation
from repro.traffic import FlowArrivalProcess, TrafficMatrix

from _common import format_cdf_summary, scaled, write_result

pytestmark = pytest.mark.traffic

#: Arrival window; the run extends past it so the tail drains.
ARRIVAL_WINDOW_S = scaled(60.0, 300.0)
DURATION_S = scaled(120.0, 420.0)
STEP_S = scaled(15.0, 10.0)
TARGET_FLOWS = scaled(1000, 5000)
MEAN_SIZE_BYTES = 1e6
RATE_BPS = 1e9
SEED = 7


def _workload():
    # Aggregate load chosen so the expected flow count hits the target:
    # E[flows] = duration * load / (8 * mean_size).
    load_bps = TARGET_FLOWS * 8.0 * MEAN_SIZE_BYTES / ARRIVAL_WINDOW_S
    matrix = TrafficMatrix.gravity(count=100, total_offered_bps=load_bps)
    return FlowArrivalProcess(matrix, mean_size_bytes=MEAN_SIZE_BYTES,
                              seed=SEED).generate(ARRIVAL_WINDOW_S)


def test_traffic_churn(starlink, benchmark):
    workload = _workload()
    assert workload.num_flows > 0.8 * TARGET_FLOWS
    holder = {}

    def run():
        sim = FluidSimulation(starlink.network,
                              workload.as_fluid_flows(),
                              link_capacity_bps=RATE_BPS)
        holder["result"] = sim.run(duration_s=DURATION_S, step_s=STEP_S)
        return holder["result"].perf["allocations_solved"]

    benchmark.pedantic(run, rounds=1, iterations=1)

    result = holder["result"]
    summary = result.perf_summary()
    fcts = result.fct_values()

    rows = [f"# S1, {workload.num_flows} finite flows over "
            f"{ARRIVAL_WINDOW_S:.0f}s, {RATE_BPS / 1e9:.1f} Gbit/s links",
            f"allocations solved: {result.perf['allocations_solved']:.0f} "
            f"({len(result.times_s)} snapshots)",
            f"flows completed: {len(fcts)}/{workload.num_flows}",
            f"offered: {summary['offered_load_bps'] / 1e6:.1f} Mbit/s, "
            f"delivered: {summary['delivered_load_bps'] / 1e6:.1f} Mbit/s"]
    rows += format_cdf_summary("fct", fcts, unit="s")
    write_result("traffic_churn", rows)

    # The gate: churn converges.  The engine re-solved at (at least)
    # every arrival, nearly every flow completed inside the horizon, and
    # the books balance.
    assert result.perf["allocations_solved"] >= workload.num_flows
    assert len(fcts) >= 0.95 * workload.num_flows
    finite = np.isfinite(result.flow_fct_s)
    np.testing.assert_allclose(result.flow_delivered_bits[finite],
                               result.flow_offered_bits[finite])
    assert (fcts > 0.0).all()
