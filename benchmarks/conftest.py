"""Session fixtures shared by the benchmark harnesses."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro import Hypatia  # noqa: E402


@pytest.fixture(scope="session")
def kuiper() -> Hypatia:
    """Kuiper K1 + 100 cities, the workhorse of §4-§5."""
    return Hypatia.from_shell_name("K1", num_cities=100)


@pytest.fixture(scope="session")
def starlink() -> Hypatia:
    """Starlink S1 + 100 cities."""
    return Hypatia.from_shell_name("S1", num_cities=100)


@pytest.fixture(scope="session")
def telesat() -> Hypatia:
    """Telesat T1 + 100 cities."""
    return Hypatia.from_shell_name("T1", num_cities=100)
