"""Micro-benchmark: batched forwarding updates vs the per-destination loop.

Paper §3.1/Fig. 2 make forwarding-state computation the scalability
bottleneck: one shortest-path tree per destination per 100 ms of simulated
time.  The batched path (``RoutingEngine.route_to_many``) builds the
transit CSR once per snapshot and computes every destination tree with a
single multi-index Dijkstra; this bench pits it against the pre-batching
algorithm (rebuild the graph and call Dijkstra once per destination) on a
10-destination forwarding update and checks both the speedup (>= 2x) and
bit-identical routing state.
"""

import time

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.routing.engine import UNREACHABLE, RoutingEngine

from _common import scaled, write_result

#: Destination count of one forwarding update (acceptance: 10).
NUM_DESTINATIONS = 10
ROUNDS = scaled(5, 20)


def _route_per_destination(network, snapshot, dst_gid):
    """The pre-batching algorithm: full graph rebuild + one Dijkstra."""
    rows = [snapshot.isl_pairs[:, 0]]
    cols = [snapshot.isl_pairs[:, 1]]
    data = [snapshot.isl_lengths_m]
    relay_gids = [station.gid for station in network.ground_stations
                  if station.is_relay]
    relay_nodes, relay_sats, relay_lengths = snapshot.gsl_edge_arrays(
        relay_gids)
    if len(relay_nodes):
        rows.append(relay_nodes)
        cols.append(relay_sats)
        data.append(relay_lengths)
    dst_node = snapshot.gs_node_id(dst_gid)
    edges = snapshot.gsl_edges[dst_gid]
    if edges.is_connected and dst_gid not in relay_gids:
        rows.append(np.full(len(edges.satellite_ids), dst_node))
        cols.append(edges.satellite_ids)
        data.append(edges.lengths_m)
    graph = csr_matrix(
        (np.concatenate(data).astype(np.float64),
         (np.concatenate(rows).astype(np.int64),
          np.concatenate(cols).astype(np.int64))),
        shape=(network.num_nodes, network.num_nodes))
    distances, predecessors = dijkstra(
        graph, directed=False, indices=dst_node, return_predecessors=True)
    next_hop = predecessors.astype(np.int64)
    next_hop[next_hop < 0] = UNREACHABLE
    return distances, next_hop


def test_batched_vs_per_destination(kuiper, benchmark):
    network = kuiper.network
    snapshot = network.snapshot(0.0)
    destinations = list(range(NUM_DESTINATIONS))

    # Correctness first: the batched trees must be identical to the
    # pre-batching per-destination ones.
    engine = RoutingEngine(network)
    multi = engine.route_to_many(snapshot, destinations)
    for dst_gid in destinations:
        ref_dist, ref_hop = _route_per_destination(network, snapshot,
                                                   dst_gid)
        batched = multi.routing_for(dst_gid)
        np.testing.assert_array_equal(batched.distance_m, ref_dist)
        np.testing.assert_array_equal(batched.next_hop, ref_hop)

    def per_destination_update():
        for dst_gid in destinations:
            _route_per_destination(network, snapshot, dst_gid)

    def batched_update():
        # Fresh engine per round: include the transit build, exactly as
        # the first (and only) routing call of a forwarding update does.
        RoutingEngine(network).route_to_many(snapshot, destinations)

    def measure(update):
        best = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            update()
            best = min(best, time.perf_counter() - start)
        return best

    results = {}

    def sweep():
        results["loop_s"] = measure(per_destination_update)
        results["batched_s"] = measure(batched_update)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = results["loop_s"] / results["batched_s"]
    rows = [
        f"# {NUM_DESTINATIONS}-destination forwarding update, Kuiper K1 + "
        f"100 cities, best of {ROUNDS}",
        f"per-destination loop: {results['loop_s'] * 1e3:8.3f} ms",
        f"batched route_to_many: {results['batched_s'] * 1e3:8.3f} ms",
        f"speedup: {speedup:.2f}x",
    ]
    write_result("batched_routing_speedup", rows)
    assert speedup >= 2.0, f"batched path only {speedup:.2f}x faster"
