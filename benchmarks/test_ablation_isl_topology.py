"""Ablation: ISL interconnect — +Grid vs intra-orbit-ring vs none.

DESIGN.md calls out the +Grid default (paper §3.1).  This ablation
quantifies what the cross-orbit links buy: removing them (ring) forces
paths to ride single orbits and balloons RTTs; removing ISLs entirely
(bent pipe, no relays) disconnects most intercontinental pairs.
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.ground.stations import ground_stations_from_cities
from repro.routing.engine import RoutingEngine
from repro.topology.isl import no_isls, plus_grid_isls, single_ring_isls
from repro.topology.network import LeoNetwork

from _common import scaled, write_result

NUM_PAIRS = scaled(40, 100)

BUILDERS = [("plus_grid", plus_grid_isls),
            ("ring", single_ring_isls),
            ("none", no_isls)]


def test_ablation_isl_topology(benchmark):
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    stations = ground_stations_from_cities(count=100)
    holder = {}

    def sweep():
        for label, builder in BUILDERS:
            network = LeoNetwork(Constellation([KUIPER_K1]), stations,
                                 min_elevation_deg=30.0,
                                 isl_builder=builder)
            engine = RoutingEngine(network)
            snapshot = network.snapshot(0.0)
            rtts = []
            connected = 0
            for src, dst in pairs:
                rtt = engine.pair_rtt_s(snapshot, src, dst)
                if np.isfinite(rtt):
                    rtts.append(rtt)
                    connected += 1
            holder[label] = (connected, np.array(rtts))
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"# K1, {NUM_PAIRS} pairs at t=0",
            f"{'interconnect':>13} {'connected':>10} {'median RTT (ms)':>16}"]
    for label, _ in BUILDERS:
        connected, rtts = holder[label]
        median = np.median(rtts) * 1000 if len(rtts) else float("nan")
        rows.append(f"{label:>13} {connected:10d} {median:16.2f}")

    grid_connected, grid_rtts = holder["plus_grid"]
    ring_connected, ring_rtts = holder["ring"]
    none_connected, _ = holder["none"]
    # +Grid connects everything the ring does, at lower or equal RTTs.
    assert grid_connected >= ring_connected > none_connected
    if len(ring_rtts):
        assert np.median(grid_rtts) < np.median(ring_rtts)
    write_result("ablation_isl_topology", rows)
