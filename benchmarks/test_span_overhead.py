"""Span-profiler overhead gate (part of `make bench-obs`).

The span hot-path contract (DESIGN.md "Profiling"): with the default
:class:`~repro.obs.spans.NullSpanProfiler` installed, every instrumented
site costs one module-attribute read plus one ``enabled`` check on
``begin`` and one integer comparison on ``end`` — disabled span
instrumentation must consume <= 2% of a 1e5-flow vectorized fluid
solve's wall clock.

Like the trace-overhead gate, a pre-instrumentation baseline cannot be
measured in-process, so the enforced number is deterministic: ``timeit``
the disabled guard, multiply by the spans a profiled run of the same
scenario actually records (x2: begin + end guards), and divide by the
disabled run's wall time.  The enabled/disabled wall comparison is
reported alongside, informationally — it is noise-dominated at this
span rate, which is precisely the design goal.
"""

import time
import timeit

from repro.constellations.builder import Constellation
from repro.fluid.engine import FluidFlow, FluidSimulation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.obs import spans
from repro.orbits.shell import Shell
from repro.topology.network import LeoNetwork

from _common import scaled, write_result

#: The disabled-instrumentation budget of the tentpole contract.
MAX_OVERHEAD_FRACTION = 0.02

NUM_FLOWS = scaled(100_000, 1_000_000)
DURATION_S = 2.0
STEP_S = 1.0
#: Guard evaluations per recorded span: the ``begin`` attribute check
#: plus the ``end`` handle comparison.
GUARDS_PER_SPAN = 2


def _build_network() -> LeoNetwork:
    shell = Shell(name="X1", num_orbits=10, satellites_per_orbit=10,
                  altitude_m=600_000.0, inclination_deg=53.0)
    sites = [("Quito", 0.0, -78.5), ("Nairobi", -1.3, 36.8),
             ("Singapore", 1.35, 103.8), ("Sydney", -33.9, 151.2)]
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(sites)
    ]
    return LeoNetwork(Constellation([shell]), stations,
                      min_elevation_deg=10.0)


def _build_flows():
    """1e5 elastic flows over every ordered station pair, round-robin."""
    pairs = [(s, d) for s in range(4) for d in range(4) if s != d]
    return [FluidFlow(*pairs[i % len(pairs)]) for i in range(NUM_FLOWS)]


def _run_scenario(network, flows) -> float:
    sim = FluidSimulation(network, flows, kernel="vectorized")
    start = time.perf_counter()
    sim.run(DURATION_S, step_s=STEP_S)
    return time.perf_counter() - start


def _disabled_guard_cost_s() -> float:
    """Wall seconds per disabled span-hook evaluation (best of 5)."""
    timer = timeit.Timer(
        "profiler = mod.ACTIVE\nif profiler.enabled:\n"
        "    raise AssertionError",
        globals={"mod": spans})
    number = 100_000
    return min(timer.repeat(repeat=5, number=number)) / number


def test_disabled_span_overhead_within_budget():
    assert not spans.ACTIVE.enabled, "a profiler leaked into the bench"
    network = _build_network()
    flows = _build_flows()

    disabled_wall = min(_run_scenario(network, flows) for _ in range(3))

    profiler = spans.SpanProfiler()
    with spans.profiled(profiler):
        enabled_wall = _run_scenario(network, flows)
    spans_per_run = profiler.num_spans
    assert spans_per_run > 0, "profiled run recorded no spans"
    assert profiler.dropped == 0

    guard_s = _disabled_guard_cost_s()
    overhead_fraction = (GUARDS_PER_SPAN * spans_per_run * guard_s
                         / disabled_wall)
    slowdown = (enabled_wall - disabled_wall) / disabled_wall

    write_result("span_overhead", [
        "# span-profiler overhead gate (1e5-flow vectorized fluid solve)",
        f"flows                     {len(flows):10d}",
        f"duration_simulated_s      {DURATION_S:10.1f}",
        f"disabled_wall_s           {disabled_wall:10.3f}",
        f"enabled_wall_s            {enabled_wall:10.3f}",
        f"enabled_slowdown_fraction {slowdown:10.3f}",
        f"spans_per_run             {spans_per_run:10d}",
        f"guard_cost_ns             {guard_s * 1e9:10.1f}",
        f"guards_per_span           {GUARDS_PER_SPAN:10d}",
        f"disabled_overhead_frac    {overhead_fraction:10.6f}",
        f"budget                    {MAX_OVERHEAD_FRACTION:10.2f}",
    ])

    # The contract: disabled span instrumentation consumes <= 2% of the
    # solve's wall clock.
    assert overhead_fraction <= MAX_OVERHEAD_FRACTION, (
        f"disabled span hooks cost {overhead_fraction:.2%} of the "
        f"1e5-flow solve (limit {MAX_OVERHEAD_FRACTION:.0%})")
