"""Observability overhead smoke bench (the `make bench-obs` gate).

The tracing hot-path contract (DESIGN.md "Observability"): with the
default :class:`~repro.obs.trace.NullTracer`, every emission site costs
one attribute check — the simulator must not lose more than 10% of its
events/wall-second to disabled instrumentation.

A pre-instrumentation baseline cannot be measured in-process, so the
gate combines two measurements:

1. **Hook-cost bound** (deterministic): ``timeit`` the disabled guard
   (``if tracer.enabled: ...``) and multiply by the measured event rate
   of a real disabled-tracer run.  That product is the fraction of each
   event's budget the instrumentation consumes; it must stay below 10%.
2. **On/off comparison** (informational): the same scenario with a
   :class:`RingBufferTracer` enabled, reported alongside — enabled
   tracing is allowed to cost more, the contract is about the default.
"""

import time
import timeit

from repro.constellations.builder import Constellation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.obs import NULL_TRACER, RingBufferTracer
from repro.orbits.shell import Shell
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.topology.network import LeoNetwork
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.udp import UdpFlow

from _common import scaled, write_result

#: The disabled-instrumentation budget: hook cost per event must stay
#: below this fraction of the per-event wall budget.
MAX_OVERHEAD_FRACTION = 0.10

DURATION_S = scaled(2.0, 10.0)
#: Guard evaluations per trace-event site on the packet path (enqueue,
#: tx_start, tx_finish, deliver is ~4; use a conservative 6 to cover
#: routing/forwarding/flow sites amortized over packet events).
GUARDS_PER_EVENT = 6


def _build_network() -> LeoNetwork:
    shell = Shell(name="X1", num_orbits=10, satellites_per_orbit=10,
                  altitude_m=600_000.0, inclination_deg=53.0)
    sites = [("Quito", 0.0, -78.5), ("Nairobi", -1.3, 36.8),
             ("Singapore", 1.35, 103.8), ("Sydney", -33.9, 151.2)]
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(sites)
    ]
    return LeoNetwork(Constellation([shell]), stations,
                      min_elevation_deg=10.0)


def _run_scenario(network: LeoNetwork, tracer=None) -> dict:
    sim = PacketSimulator(
        network,
        LinkConfig(isl_rate_bps=10e6, gsl_rate_bps=10e6),
        tracer=tracer)
    TcpNewRenoFlow(0, 2).install(sim)
    UdpFlow(1, 3, rate_bps=5e6).install(sim)
    start = time.perf_counter()
    sim.run(DURATION_S)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": sim.scheduler.events_processed,
        "events_per_s": sim.scheduler.events_processed / wall,
        "delivered": sim.stats.packets_delivered,
    }


def _disabled_guard_cost_s() -> float:
    """Wall seconds per disabled trace-hook evaluation (best of 5)."""
    tracer = NULL_TRACER
    timer = timeit.Timer(
        "tracer = obj.t\nif tracer.enabled:\n    raise AssertionError",
        globals={"obj": type("Holder", (), {"t": tracer})()})
    number = 100_000
    return min(timer.repeat(repeat=5, number=number)) / number


def test_disabled_tracer_overhead_within_budget():
    network = _build_network()

    disabled = min((_run_scenario(network, tracer=None) for _ in range(3)),
                   key=lambda run: run["wall_s"])
    enabled = _run_scenario(network, tracer=RingBufferTracer())

    guard_s = _disabled_guard_cost_s()
    per_event_budget_s = 1.0 / disabled["events_per_s"]
    overhead_fraction = GUARDS_PER_EVENT * guard_s / per_event_budget_s

    slowdown = (disabled["events_per_s"] - enabled["events_per_s"]) \
        / disabled["events_per_s"]
    write_result("obs_overhead", [
        "# observability overhead smoke (events/wall-second)",
        f"duration_simulated_s      {DURATION_S:10.1f}",
        f"events_per_s_disabled     {disabled['events_per_s']:10.0f}",
        f"events_per_s_enabled      {enabled['events_per_s']:10.0f}",
        f"enabled_slowdown_fraction {slowdown:10.3f}",
        f"guard_cost_ns             {guard_s * 1e9:10.1f}",
        f"guards_per_event          {GUARDS_PER_EVENT:10d}",
        f"disabled_overhead_frac    {overhead_fraction:10.4f}",
        f"budget                    {MAX_OVERHEAD_FRACTION:10.2f}",
    ])

    assert disabled["delivered"] > 0 and enabled["delivered"] > 0
    # The contract: disabled instrumentation consumes < 10% of the
    # per-event budget.
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled trace hooks cost {overhead_fraction:.1%} of the "
        f"per-event budget (limit {MAX_OVERHEAD_FRACTION:.0%})")
