"""Extension bench: rerouting around bad weather (paper §7 future work).

Puts a seeded storm schedule over the 100 cities and measures its impact
on the permutation traffic matrix: moderate rain (an elevation penalty)
lengthens paths but rarely disconnects; severe rain (total outage) cuts
the affected stations off entirely.
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.ground.stations import ground_stations_from_cities
from repro.ground.weather import RainEvent, WeatherModel
from repro.routing.engine import RoutingEngine
from repro.topology.network import LeoNetwork

from _common import scaled, write_result

NUM_PAIRS = scaled(30, 100)
SAMPLE_TIME_S = 50.0

SCENARIOS = [
    ("clear", None),
    ("moderate rain", WeatherModel.synthetic(
        100, 100.0, seed=11, storm_probability=0.3,
        mean_duration_s=200.0, penalty_deg=15.0)),
    ("severe rain", WeatherModel.synthetic(
        100, 100.0, seed=11, storm_probability=0.3,
        mean_duration_s=200.0, penalty_deg=90.0)),
]


def test_extension_weather_rerouting(benchmark):
    stations = ground_stations_from_cities(count=100)
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    constellation = Constellation([KUIPER_K1])
    holder = {}

    def sweep():
        for label, weather in SCENARIOS:
            network = LeoNetwork(constellation, stations,
                                 min_elevation_deg=30.0, weather=weather)
            engine = RoutingEngine(network)
            snapshot = network.snapshot(SAMPLE_TIME_S)
            rtts = []
            for src, dst in pairs:
                rtt = engine.pair_rtt_s(snapshot, src, dst)
                if np.isfinite(rtt):
                    rtts.append(rtt)
            raining = 0
            if weather is not None:
                raining = sum(
                    1 for gid in range(100)
                    if weather.is_raining(gid, SAMPLE_TIME_S))
            holder[label] = (np.array(rtts), raining)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"# K1, {NUM_PAIRS} pairs at t={SAMPLE_TIME_S:.0f}s, seeded "
            f"storms over 100 cities",
            f"{'scenario':>14} {'raining GSes':>13} {'connected':>10} "
            f"{'median RTT (ms)':>16}"]
    for label, _ in SCENARIOS:
        rtts, raining = holder[label]
        median = np.median(rtts) * 1000 if len(rtts) else float("nan")
        rows.append(f"{label:>14} {raining:13d} {len(rtts):10d} "
                    f"{median:16.2f}")

    clear_rtts, _ = holder["clear"]
    moderate_rtts, raining = holder["moderate rain"]
    severe_rtts, _ = holder["severe rain"]
    assert raining > 0, "the seeded schedule must have active storms"
    # Moderate rain: largely survivable, median no better than clear.
    assert len(moderate_rtts) >= len(severe_rtts)
    assert np.median(moderate_rtts) >= np.median(clear_rtts) - 1e-9
    # Severe rain: outages actually cut pairs off.
    assert len(severe_rtts) < len(clear_rtts)
    write_result("extension_weather", rows)
