"""Ablation: queue size in BDP multiples — latency/throughput trade-off.

The paper sizes queues at ~1 BDP (§4.1).  This ablation sweeps the queue
on a stable Kuiper path: larger buffers raise TCP's worst-case RTT roughly
linearly (bufferbloat) while goodput saturates around 1 BDP.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow

from _common import scaled, write_result

RATE_BPS = scaled(2_500_000.0, 10_000_000.0)
DURATION_S = scaled(30.0, 120.0)
#: Queue sizes as multiples of a ~100 ms BDP.
BDP_MULTIPLES = [0.25, 0.5, 1.0, 2.0, 4.0]


def test_ablation_queue_size(benchmark):
    hypatia = Hypatia.from_shell_name("K1", num_cities=100)
    pair = hypatia.pair("Istanbul", "Nairobi")
    bdp_packets = max(2, int(RATE_BPS * 0.1 / (1500 * 8)))
    holder = {}

    def sweep():
        for multiple in BDP_MULTIPLES:
            queue = max(1, int(bdp_packets * multiple))
            sim = PacketSimulator(
                hypatia.network,
                LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                           isl_queue_packets=queue,
                           gsl_queue_packets=queue))
            flow = TcpNewRenoFlow(pair[0], pair[1]).install(sim)
            sim.run(DURATION_S)
            holder[multiple] = (queue, flow)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"# Istanbul -> Nairobi, {RATE_BPS / 1e6:.1f} Mbit/s, "
            f"1 BDP ~ {bdp_packets} pkts, {DURATION_S}s",
            f"{'queue (xBDP)':>13} {'pkts':>6} {'goodput (Mbit/s)':>17} "
            f"{'max RTT (ms)':>13}"]
    goodputs = []
    max_rtts = []
    for multiple in BDP_MULTIPLES:
        queue, flow = holder[multiple]
        goodput = flow.goodput_bps(DURATION_S)
        _, rtts = flow.rtt_log.as_arrays()
        goodputs.append(goodput)
        max_rtts.append(rtts.max())
        rows.append(f"{multiple:13.2f} {queue:6d} {goodput / 1e6:17.2f} "
                    f"{rtts.max() * 1000:13.1f}")

    # Bufferbloat: deeper buffers -> higher worst-case RTT.
    assert max_rtts[-1] > max_rtts[0]
    # Throughput saturates: >= 1 BDP of buffer recovers most goodput.
    assert goodputs[2] > 0.8 * goodputs[-1]
    # Tiny buffers lose throughput relative to 1 BDP.
    assert goodputs[0] <= goodputs[2] * 1.02
    write_result("ablation_queue_size", rows)
