"""Incremental-routing gate (the `make bench-routing` part of `make check`).

The incremental routing contract (DESIGN.md "Incremental routing"): the
:class:`repro.routing.incremental.IncrementalRouter` diffs consecutive
snapshots and repairs only the affected parts of the batched destination
trees, and whichever path it takes — cache hit, repair, or large-delta
fallback — its distances and next hops are bit-identical to a
from-scratch :class:`repro.routing.engine.RoutingEngine`.

Two gates:

* **Equality** (always runs): bit-identity on every snapshot of the
  sparse-delta repair scenario, and on every snapshot of a faulted S1
  timeline run, both serial and with ``workers=4``.
* **Speedup** (needs >= 4 cores, like `make bench-sweep`): on S1 with
  the paper's 100 city ground stations, per-snapshot routing under
  sparse topology deltas — cumulative ISL failures at a frozen epoch,
  so the delta is the failure, not orbital motion — must be at least
  5x faster than solving each snapshot from scratch.

Every run appends one record to ``results/BENCH_routing_incremental.json``
so `repro bench-report` can flag wall-time regressions across runs.
"""

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from repro import Hypatia
from repro.faults import FaultEvent, FaultSchedule
from repro.routing.engine import RoutingEngine
from repro.routing.incremental import IncrementalRouter
from repro.topology.dynamic_state import DynamicState

from _common import RESULTS_DIR, write_result

SHELL = "S1"
NUM_CITIES = 100
NUM_STEPS = 15           # cumulative failure steps in the sparse scenario
DROPS_PER_STEP = 1       # new ISL failures per step (sparse deltas)
TIMING_REPS = 5
SPEEDUP_CORES = 4
MIN_SPEEDUP = 5.0

TRAJECTORY_PATH = RESULTS_DIR / "BENCH_routing_incremental.json"

_CACHE = {}


def _network():
    """The S1 constellation with city ground stations (built once)."""
    if "network" not in _CACHE:
        hypatia = Hypatia.from_shell_name(SHELL, num_cities=NUM_CITIES)
        _CACHE["network"] = hypatia.network
        _CACHE["base"] = hypatia.network.snapshot(0.0)
    return _CACHE["network"], _CACHE["base"]


def _masked(snapshot, drop_indices):
    """The snapshot with some ISLs failed (positions unchanged)."""
    keep = np.ones(len(snapshot.isl_pairs), dtype=bool)
    keep[drop_indices] = False
    return dataclasses.replace(
        snapshot, isl_pairs=snapshot.isl_pairs[keep],
        isl_lengths_m=snapshot.isl_lengths_m[keep])


def _failure_sequence(base, rng):
    """Cumulative-outage snapshots: each step fails DROPS_PER_STEP more
    ISLs on top of the previous step's failures, so consecutive
    snapshots differ by a handful of directed edges."""
    snapshots = []
    failed = np.array([], dtype=np.int64)
    for _ in range(NUM_STEPS):
        fresh = rng.choice(len(base.isl_pairs), size=DROPS_PER_STEP,
                           replace=False)
        failed = np.union1d(failed, fresh)
        snapshots.append(_masked(base, failed))
    return snapshots


def _append_trajectory(record):
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_sparse_delta_parity_on_every_snapshot():
    network, base = _network()
    destinations = list(range(NUM_CITIES))
    snapshots = _failure_sequence(base, np.random.default_rng(7))
    scratch = RoutingEngine(network)
    router = IncrementalRouter(network)
    router.route_to_many(base, destinations)
    for snapshot in snapshots:
        expected = scratch.route_to_many(snapshot, destinations)
        repaired = router.route_to_many(snapshot, destinations)
        assert np.array_equal(expected.distance_m, repaired.distance_m)
        assert np.array_equal(expected.next_hop, repaired.next_hop)
    assert router.inc_perf.repairs == NUM_STEPS
    assert router.inc_perf.fallbacks_large_delta == 0


def test_incremental_speedup_on_sparse_deltas():
    network, base = _network()
    destinations = list(range(NUM_CITIES))
    snapshots = _failure_sequence(base, np.random.default_rng(7))

    scratch_best = incremental_best = float("inf")
    counters = None
    for _ in range(TIMING_REPS):
        scratch = RoutingEngine(network)
        scratch.route_to_many(base, destinations)
        start = time.perf_counter()
        for snapshot in snapshots:
            scratch.route_to_many(snapshot, destinations)
        scratch_best = min(scratch_best,
                           (time.perf_counter() - start) / len(snapshots))

        router = IncrementalRouter(network)
        router.route_to_many(base, destinations)
        start = time.perf_counter()
        for snapshot in snapshots:
            router.route_to_many(snapshot, destinations)
        incremental_best = min(
            incremental_best,
            (time.perf_counter() - start) / len(snapshots))
        counters = router.inc_perf

    speedup = scratch_best / incremental_best
    assert counters.repairs == NUM_STEPS

    _append_trajectory({
        "timestamp": time.time(),
        "shell": SHELL,
        "cities": NUM_CITIES,
        "destinations": len(destinations),
        "snapshots": NUM_STEPS,
        "drops_per_step": DROPS_PER_STEP,
        "scratch_snapshot_s": scratch_best,
        "incremental_snapshot_s": incremental_best,
        "speedup": speedup,
        "edges_changed": counters.edges_changed,
        "vertices_invalidated": counters.vertices_invalidated,
        "cpu_count": os.cpu_count() or 1,
    })

    rows = [
        "# incremental routing speedup (S1, frozen-epoch ISL failures)",
        f"shell                 {SHELL:>10s}",
        f"cities                {NUM_CITIES:10d}",
        f"snapshots             {NUM_STEPS:10d}",
        f"drops_per_step        {DROPS_PER_STEP:10d}",
        f"scratch_snapshot_s    {scratch_best:10.6f}",
        f"incremental_snapshot_s{incremental_best:10.6f}",
        f"speedup               {speedup:10.2f}",
        f"min_speedup           {MIN_SPEEDUP:10.2f}",
        f"edges_changed         {counters.edges_changed:10d}",
        f"vertices_invalidated  {counters.vertices_invalidated:10d}",
    ]
    write_result("routing_incremental", rows)

    if (os.cpu_count() or 1) < SPEEDUP_CORES:
        pytest.skip(f"speedup gate needs >= {SPEEDUP_CORES} cores "
                    f"(measured {speedup:.2f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental repair reached only {speedup:.2f}x over scratch "
        f"per snapshot (gate {MIN_SPEEDUP:.1f}x)")


def test_faulted_run_parity_serial_and_workers():
    faults = FaultSchedule([
        FaultEvent.satellite_outage(100, 1.0, 5.0),
        FaultEvent.satellite_outage(700, 2.0, 6.0),
        FaultEvent.isl_cut(40, 41, 0.5, 4.5),
        FaultEvent.gsl_cut(3, 1.5, 4.0),
    ])
    hypatia = Hypatia.from_shell_name(SHELL, num_cities=10, faults=faults)
    pairs = [(0, 5), (1, 7), (2, 9), (8, 3)]
    kwargs = dict(pairs=pairs, duration_s=6.0, step_s=1.0)
    scratch = DynamicState(hypatia.network, routing="scratch",
                           **kwargs).compute()
    serial = DynamicState(hypatia.network, routing="incremental",
                          **kwargs).compute()
    parallel = DynamicState(hypatia.network, routing="incremental",
                            **kwargs).compute(workers=4)
    for pair in pairs:
        for run in (serial, parallel):
            assert np.array_equal(run[pair].distances_m,
                                  scratch[pair].distances_m,
                                  equal_nan=True), pair
            assert run[pair].paths == scratch[pair].paths, pair
