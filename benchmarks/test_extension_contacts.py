"""Extension bench: GSL contact durations and handoff rates (§2.3).

Quantifies the paper's claim that "GS-satellite links can only be
maintained for a few minutes, after which they require a handoff", and
the §5.1 mechanism that a lower minimum elevation (Telesat) keeps each
satellite connectable for longer.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.analysis.contacts import contact_statistics, contact_windows

from _common import scaled, write_result

OBSERVATION_S = scaled(2400.0, 7200.0)
STEP_S = 5.0
CONFIGS = [("K1", 30.0), ("S1", 25.0), ("T1", 10.0)]
CITY = "Nairobi"  # low latitude: visible to every constellation


def test_extension_contact_durations(benchmark):
    holder = {}

    def sweep():
        for shell, elevation in CONFIGS:
            hypatia = Hypatia.from_shell_name(shell, num_cities=100)
            station = hypatia.ground_stations[hypatia.gid(CITY)]
            windows = contact_windows(hypatia.constellation, station,
                                      elevation, OBSERVATION_S,
                                      step_s=STEP_S)
            holder[shell] = contact_statistics(windows)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"# {CITY}, {OBSERVATION_S / 60:.0f} min observation, "
            f"{STEP_S:.0f}s sampling",
            f"{'shell':>6} {'min elev':>9} {'contacts':>9} "
            f"{'median (min)':>13} {'max (min)':>10} "
            f"{'handoffs/h':>11}"]
    for shell, elevation in CONFIGS:
        stats = holder[shell]
        rows.append(
            f"{shell:>6} {elevation:8.0f}° {stats['num_contacts']:9d} "
            f"{stats['median_duration_s'] / 60:13.2f} "
            f"{stats['max_duration_s'] / 60:10.2f} "
            f"{stats['handoffs_per_hour']:11.1f}")

    # §2.3: contacts last "a few minutes" — between 30 s and 15 min at
    # the median for every constellation.
    for shell, _ in CONFIGS:
        median = holder[shell]["median_duration_s"]
        assert 30.0 < median < 15 * 60.0, shell
    # §5.1 mechanism: Telesat's 10 deg elevation holds satellites longest.
    assert (holder["T1"]["median_duration_s"]
            > holder["K1"]["median_duration_s"])
    write_result("extension_contacts", rows)
