"""Fig. 5: loss-based and delay-based congestion control both suffer.

Paper protocol (§4.2): a single flow from Rio de Janeiro to St. Petersburg
over Kuiper K1, once with TCP NewReno and once with TCP Vegas, no
competing traffic.  Expected shape:

* NewReno fills the queue: its per-packet RTT rides far above the computed
  propagation RTT (Fig. 5(a));
* Vegas keeps the queue empty (RTT tracks the ping RTT) but interprets a
  path-change RTT increase as congestion and its throughput collapses and
  stays low (Fig. 5(b)/(c)).

The run is windowed (epoch offset) around one of the pair's RTT step
changes.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.vegas import TcpVegasFlow

from _common import scaled, write_result

#: The paper's line rate and queue are kept even in the scaled run: the
#: Vegas failure mode depends on the RTT *step* being large relative to
#: the serialization floor, which a slower link would mask.
DURATION_S = scaled(44.0, 200.0)
RATE_BPS = 10_000_000.0
QUEUE_PACKETS = 100
#: Window with ~44 s of continuous Rio-St.P connectivity containing an
#: +8.8 ms RTT step at t=26 s (our constellation phase differs from the
#: paper's, whose step is at t=33 s).
EPOCH_OFFSET_S = 10.0


@pytest.fixture(scope="module")
def study():
    return Hypatia.from_shell_name("K1", num_cities=100,
                                   epoch_offset_s=EPOCH_OFFSET_S)


def test_fig5_newreno_vs_vegas(study, benchmark):
    pair = study.pair("Rio de Janeiro", "Saint Petersburg")
    flows = {}

    def run_experiment():
        events = 0
        for label, factory in [("newreno", TcpNewRenoFlow),
                               ("vegas", TcpVegasFlow)]:
            sim = PacketSimulator(
                study.network,
                LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                           isl_queue_packets=QUEUE_PACKETS,
                           gsl_queue_packets=QUEUE_PACKETS))
            flow = factory(pair[0], pair[1]).install(sim)
            sim.run(DURATION_S)
            flows[label] = flow
            events += sim.scheduler.events_processed
        return events

    benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    timeline = study.compute_timelines([pair], duration_s=DURATION_S,
                                       step_s=1.0)[pair]
    computed = timeline.rtts_s
    base_rtt = np.nanmin(np.where(np.isfinite(computed), computed, np.nan))
    queue_delay = QUEUE_PACKETS * 1500 * 8 / RATE_BPS

    rows = [f"# Rio de Janeiro -> Saint Petersburg, "
            f"rate={RATE_BPS / 1e6:.1f} Mbit/s queue={QUEUE_PACKETS} pkts",
            f"computed (propagation) RTT: {base_rtt * 1000:.1f}-"
            f"{np.nanmax(np.where(np.isfinite(computed), computed, np.nan)) * 1000:.1f} ms",
            f"full-queue delay: {queue_delay * 1000:.0f} ms"]

    for label in ("newreno", "vegas"):
        flow = flows[label]
        _, rtt = flow.rtt_log.as_arrays()
        throughput = flow.throughput_series_bps()
        half = len(throughput) // 2
        rows.append(f"\n== {label} ==")
        if len(rtt):
            rows.append(f"TCP RTT: min {rtt.min() * 1000:.1f} ms "
                        f"median {np.median(rtt) * 1000:.1f} ms "
                        f"max {rtt.max() * 1000:.1f} ms")
        rows.append(f"throughput: first half "
                    f"{throughput[:half].mean() / 1e6:.2f} Mbit/s, "
                    f"second half {throughput[half:].mean() / 1e6:.2f} "
                    f"Mbit/s, overall "
                    f"{flow.goodput_bps(DURATION_S) / 1e6:.2f} Mbit/s")

    _, newreno_rtt = flows["newreno"].rtt_log.as_arrays()
    _, vegas_rtt = flows["vegas"].rtt_log.as_arrays()
    # Fig. 5(a): NewReno's median RTT rides on a filled queue; Vegas' does
    # not (it stays within a third of the queue above its own floor).
    # Each flow's observed minimum is its floor: at scaled line rates the
    # per-hop store-and-forward serialization raises it well above the
    # propagation-only "computed" RTT.
    assert np.median(newreno_rtt) > newreno_rtt.min() + 0.4 * queue_delay
    assert np.median(vegas_rtt) < vegas_rtt.min() + 0.35 * queue_delay
    # Fig. 5(c): Vegas ends up slower than NewReno on this path, and its
    # throughput falls after the RTT step (it never recovers in-paper).
    assert (flows["vegas"].goodput_bps(DURATION_S)
            < flows["newreno"].goodput_bps(DURATION_S))
    vegas_series = flows["vegas"].throughput_series_bps()
    half = len(vegas_series) // 2
    assert vegas_series[half:].mean() < vegas_series[:half].mean()
    write_result("fig5_newreno_vegas", rows)
