"""Shared infrastructure for the per-figure benchmark harnesses.

Every benchmark regenerates one table or figure of the paper: it runs the
experiment (at a scaled-down default; set ``HYPATIA_FULL_SCALE=1`` for
paper-scale parameters), prints the rows/series the paper reports, and
writes them to ``results/<experiment>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, List, Sequence

__all__ = ["full_scale", "scaled", "write_result", "format_series",
           "format_cdf_summary", "RESULTS_DIR"]

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def full_scale() -> bool:
    """Whether to run paper-scale parameters (HYPATIA_FULL_SCALE=1)."""
    return os.environ.get("HYPATIA_FULL_SCALE", "0") == "1"


def scaled(default, full):
    """Pick the scaled-down or paper-scale value of a parameter."""
    return full if full_scale() else default


def write_result(name: str, lines: Iterable[str]) -> Path:
    """Write (and echo) one experiment's output rows."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print(f"\n===== {name} =====")
    print(text)
    return path


def format_series(label: str, times: Sequence[float],
                  values: Sequence[float], unit: str = "",
                  every: int = 1) -> List[str]:
    """Format a time series as aligned rows."""
    lines = [f"# {label} ({unit})" if unit else f"# {label}"]
    for i in range(0, len(times), every):
        value = values[i]
        lines.append(f"{times[i]:10.2f}  {value:12.4f}")
    return lines


def format_cdf_summary(label: str, values: Sequence[float],
                       unit: str = "") -> List[str]:
    """Summarize a distribution by its key quantiles (ECDF essentials)."""
    import numpy as np
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    suffix = f" {unit}" if unit else ""
    if arr.size == 0:
        return [f"{label}: (no finite samples)"]
    quantiles = np.percentile(arr, [10, 25, 50, 75, 90, 100])
    return [
        f"{label}: n={arr.size}"
        f" p10={quantiles[0]:.3f}{suffix}"
        f" p25={quantiles[1]:.3f}{suffix}"
        f" median={quantiles[2]:.3f}{suffix}"
        f" p75={quantiles[3]:.3f}{suffix}"
        f" p90={quantiles[4]:.3f}{suffix}"
        f" max={quantiles[5]:.3f}{suffix}"
    ]
