"""The congestion-control gate: classic parity + the cc-lab matrix.

Two always-on guarantees ride in ``make check`` through this harness:

1. **Classic parity** — the plug-in refactor of NewReno/Vegas/BBR is
   bit-identical to the frozen seed classes
   (``tests/_seed_transport.py``) on full anchor scenarios: byte-equal
   cwnd and RTT traces and equal loss/retransmission counters.
2. **The lab earns its keep** — the learned (bandit) controller matches
   or beats the best classic's FCT p50 in at least one scenario of the
   fault x weather x churn matrix, and the matrix is deterministic:
   ``workers=2`` reproduces the serial report byte-for-byte.

Lab wall-time is appended to ``results/BENCH_cc_matrix.json`` so
``repro bench-report`` tracks it like every other trajectory.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro.cc.lab import build_scenarios, lab_network, run_lab
from repro.constellations.builder import Constellation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.orbits.shell import Shell
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.topology.network import LeoNetwork
from repro.transport.bbr import TcpBbrFlow
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.vegas import TcpVegasFlow

from _common import RESULTS_DIR, scaled, write_result
from _seed_transport import (SeedTcpBbrFlow, SeedTcpNewRenoFlow,
                             SeedTcpVegasFlow)

TRAJECTORY_PATH = RESULTS_DIR / "BENCH_cc_matrix.json"

_SITES = [
    ("Quito", 0.0, -78.5),
    ("Nairobi", -1.3, 36.8),
    ("Singapore", 1.35, 103.8),
    ("Honolulu", 21.3, -157.9),
    ("Sydney", -33.9, 151.2),
    ("Madrid", 40.4, -3.7),
]

#: The anchor scenarios: one long-lived flow per classic over the
#: 10x10 test shell, long enough to exercise slow start, fast recovery,
#: RTOs, and (for BBR) the full startup/drain/probe state machine.
ANCHORS = [
    ("newreno", SeedTcpNewRenoFlow, TcpNewRenoFlow, {"max_packets": 900}),
    ("vegas", SeedTcpVegasFlow, TcpVegasFlow, {}),
    ("bbr", SeedTcpBbrFlow, TcpBbrFlow, {"delayed_ack_count": 2}),
]


def _anchor_network() -> LeoNetwork:
    shell = Shell(name="X1", num_orbits=10, satellites_per_orbit=10,
                  altitude_m=600_000.0, inclination_deg=53.0)
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(_SITES)
    ]
    return LeoNetwork(Constellation([shell]), stations,
                      min_elevation_deg=10.0)


def _run_anchor(flow_class, **kwargs):
    sim = PacketSimulator(_anchor_network(), link_config=LinkConfig(
        gsl_queue_packets=25, isl_queue_packets=25))
    flow = flow_class(0, 3, **kwargs).install(sim)
    sim.run(12.0)
    return flow


def _append_trajectory(record) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_classic_parity_gate():
    """Refactored classics == seed flows, byte for byte (always gated)."""
    lines = ["# controller  cwnd_events  snd_una  retx  frexmit  rto"]
    for name, seed_class, new_class, kwargs in ANCHORS:
        seed_flow = _run_anchor(seed_class, **kwargs)
        new_flow = _run_anchor(new_class, **kwargs)
        for log in ("cwnd_log", "rtt_log"):
            st, sv = getattr(seed_flow, log).as_arrays()
            nt, nv = getattr(new_flow, log).as_arrays()
            np.testing.assert_array_equal(
                st, nt, err_msg=f"{name}: {log} times diverged from seed")
            np.testing.assert_array_equal(
                sv, nv, err_msg=f"{name}: {log} values diverged from seed")
        for counter in ("snd_una", "retransmissions", "fast_retransmits",
                        "timeouts"):
            assert getattr(seed_flow, counter) == \
                getattr(new_flow, counter), \
                f"{name}: {counter} diverged from seed"
        lines.append(
            f"{name:10s}  {len(new_flow.cwnd_log):11d}  "
            f"{new_flow.snd_una:7d}  {new_flow.retransmissions:4d}  "
            f"{new_flow.fast_retransmits:7d}  {new_flow.timeouts:3d}")
    write_result("cc_classic_parity", lines)


def test_cc_lab_matrix():
    """The full lab: learned beats a classic somewhere, deterministically."""
    duration_s = scaled(8.0, 16.0)
    seed = 0
    base = lab_network("8x8")
    scenarios = build_scenarios(base, duration_s=duration_s, seed=seed)

    start = time.perf_counter()
    report = run_lab(scenarios=scenarios, seed=seed, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_lab(scenarios=scenarios, seed=seed, workers=2)
    parallel_s = time.perf_counter() - start
    assert (json.dumps(report.as_dict(), sort_keys=True)
            == json.dumps(parallel.as_dict(), sort_keys=True)), \
        "cc-lab matrix is not deterministic across process-pool widths"

    versus = report.learned_vs_best_classic()
    assert versus, "no scenario produced comparable learned/classic cells"
    wins = [s for s, row in versus.items() if row["wins"]]
    assert wins, (
        "the learned controller beat no classic anywhere; per-scenario "
        f"p50s: { {s: row['learned_fct_p50_s'] for s, row in versus.items()} }")

    lines = report.format_lines()
    lines.append("")
    lines.append(f"serial {serial_s:.2f}s, workers=2 {parallel_s:.2f}s, "
                 f"{len(report.cells)} cells, duration {duration_s:g}s")
    write_result("cc_matrix", lines)
    _append_trajectory({
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "duration_s": duration_s,
        "seed": seed,
        "cells": len(report.cells),
        "learned_wins": len(wins),
        "scenarios_compared": len(versus),
        "serial_s": serial_s,
        "workers2_s": parallel_s,
        "wall_time_s": serial_s + parallel_s,
    })
