"""Fig. 8: path-structure changes over time, across GS pairs.

Paper protocol (§5.2): for each pair, count path changes (different
satellite membership in successive snapshots) and the hop-count range over
the simulation.  Expected shape: paths change several times over the
window for the dense constellations; hop counts vary by multiple hops for
Starlink (many path options) and barely for Telesat (sparse, long hops);
the change-count tail is long.
"""

import numpy as np
import pytest

from repro.analysis.paths import pair_path_stats

from _common import format_cdf_summary, scaled, write_result
from _sweeps import DURATION_S, PATH_STEP_S, path_timelines

SHELLS = ["T1", "K1", "S1"]


def test_fig8_path_structure_changes(benchmark):
    results = {}

    def sweep_all():
        for shell in SHELLS:
            results[shell] = path_timelines(shell)
        return len(results)

    benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    rows = [f"# duration={DURATION_S}s step={PATH_STEP_S}s, permutation "
            f"traffic matrix (100 pairs)"]
    changes = {}
    for shell in SHELLS:
        data = results[shell]
        stats = pair_path_stats(
            data["timelines"],
            data["hypatia"].network.num_satellites)
        change_counts = np.array([s.num_path_changes for s in stats])
        hop_spreads = np.array([s.hop_spread for s in stats])
        hop_ratios = np.array([s.hop_ratio for s in stats])
        changes[shell] = change_counts
        rows.append(f"\n== {shell} ==")
        rows += format_cdf_summary("(a) # path changes", change_counts)
        rows += format_cdf_summary("(b) max - min hops", hop_spreads,
                                   unit="hops")
        rows += format_cdf_summary("(c) max / min hops", hop_ratios,
                                   unit="x")
        rows.append(f"pairs analyzed: {len(stats)}")

    # Shape: routing churn is pervasive — the median pair's path changes
    # during the window for the dense shells, and some pairs see several
    # changes (the paper's long tail).
    for shell in ["K1", "S1"]:
        assert np.median(changes[shell]) >= 1, shell
        assert changes[shell].max() >= 3, shell
    # Telesat's paths change less often than Kuiper's/Starlink's
    # (paper: median 2 vs 4).
    assert np.median(changes["T1"]) <= np.median(changes["K1"])
    write_result("fig8_path_changes", rows)
