"""Fig. 3: RTT fluctuations on three Kuiper K1 paths.

Paper protocol (§4.1): for Rio de Janeiro-St. Petersburg, Manila-Dalian and
Istanbul-Nairobi, compare (a) RTTs computed from topology snapshots
("Computed"), (b) ping measurements from the packet simulator ("Pings"),
and (c) TCP per-packet RTTs.  Expected shape: computed and ping series
overlap almost exactly; RTT ranges are roughly 96-111 ms (Rio-St.P, with a
disconnection window), 25-48 ms (Manila-Dalian), 47-70 ms
(Istanbul-Nairobi); TCP RTT rides above both by up to a full queue of
delay.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.ping import PingSession

from _common import format_cdf_summary, scaled, write_result

DURATION_S = scaled(100.0, 200.0)
STEP_S = scaled(0.5, 0.1)
PING_INTERVAL_S = scaled(0.1, 0.001)
#: Window the Rio-St.Petersburg disconnection into frame (paper's epoch
#: differs from ours; theirs disconnects around t=150 s).
EPOCH_OFFSET_S = 10.0

PAIR_NAMES = [
    ("Rio de Janeiro", "Saint Petersburg"),
    ("Manila", "Dalian"),
    ("Istanbul", "Nairobi"),
]


@pytest.fixture(scope="module")
def study():
    return Hypatia.from_shell_name("K1", num_cities=100,
                                   epoch_offset_s=EPOCH_OFFSET_S)


def test_fig3_computed_vs_ping(study, benchmark):
    pairs = [study.pair(a, b) for a, b in PAIR_NAMES]

    state = {}

    def run_experiment():
        timelines = study.compute_timelines(pairs, duration_s=DURATION_S,
                                            step_s=STEP_S)
        sim = PacketSimulator(study.network,
                              LinkConfig(isl_rate_bps=1e9, gsl_rate_bps=1e9))
        sessions = {
            pair: PingSession(pair[0], pair[1],
                              interval_s=PING_INTERVAL_S).install(sim)
            for pair in pairs
        }
        sim.run(DURATION_S)
        state["timelines"] = timelines
        state["sessions"] = sessions
        return sim.scheduler.events_processed

    benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = [f"# duration={DURATION_S}s step={STEP_S}s "
            f"ping-interval={PING_INTERVAL_S}s"]
    for (name_a, name_b), pair in zip(PAIR_NAMES, pairs):
        timeline = state["timelines"][pair]
        session = state["sessions"][pair]
        computed = timeline.rtts_s
        connected = np.isfinite(computed)
        ping_times, ping_rtts = session.answered()

        rows.append(f"\n== {name_a} -> {name_b} ==")
        if connected.any():
            rows.append(
                f"computed RTT: min {computed[connected].min() * 1000:.1f} ms"
                f" max {computed[connected].max() * 1000:.1f} ms,"
                f" connected {connected.mean() * 100:.1f}% of snapshots")
        if len(ping_rtts):
            rows.append(
                f"ping RTT:     min {ping_rtts.min() * 1000:.1f} ms"
                f" max {ping_rtts.max() * 1000:.1f} ms,"
                f" answered {len(ping_rtts)}/{len(session.rtts_s)}")

        # Validation: each answered ping matches the snapshot computation.
        step_index = np.clip((ping_times / STEP_S).astype(int), 0,
                             len(computed) - 1)
        valid = np.isfinite(computed[step_index])
        matched = np.abs(ping_rtts[valid] - computed[step_index][valid])
        if matched.size:
            rows.append(f"|ping - computed|: median "
                        f"{np.median(matched) * 1000:.3f} ms, p99 "
                        f"{np.percentile(matched, 99) * 1000:.3f} ms")
            assert np.median(matched) < 0.002  # lines overlap (2 ms)

    # Shape assertions from the paper's reported ranges.
    manila = state["timelines"][pairs[1]].rtts_s
    manila = manila[np.isfinite(manila)]
    assert 0.020 < manila.min() < 0.040
    assert manila.max() < 0.060
    istanbul = state["timelines"][pairs[2]].rtts_s
    istanbul = istanbul[np.isfinite(istanbul)]
    # Paper's full 200 s range is 47-70 ms; a scaled window samples a
    # sub-range of it.
    assert 0.040 < istanbul.min() < 0.075
    assert istanbul.max() < 0.085
    rio = state["timelines"][pairs[0]].rtts_s
    rio_connected = np.isfinite(rio)
    # St. Petersburg sees Kuiper only intermittently.
    assert 0.3 < rio_connected.mean() < 1.0

    write_result("fig3_rtt_fluctuations", rows)
