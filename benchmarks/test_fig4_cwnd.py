"""Fig. 4: TCP congestion-window evolution on three Kuiper K1 paths.

Paper protocol (§4.2): a single long-running TCP NewReno flow per pair with
no competing traffic; queue sized to ~1 BDP.  Expected shape: cwnd
oscillates between roughly BDP and BDP+Q; disconnections (Rio-St.P) crash
the window; and path shortenings cut the window via reordering-induced
duplicate ACKs even though nothing was lost (paper Fig. 4(c)).

Scaled run: the line rate is reduced and the queue rescaled to 1 BDP, so
the window dynamics keep the same shape in packet units.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow

from _common import scaled, write_result

DURATION_S = scaled(60.0, 200.0)
RATE_BPS = scaled(2_500_000.0, 10_000_000.0)
QUEUE_PACKETS = scaled(25, 100)
EPOCH_OFFSET_S = 10.0

PAIR_NAMES = [
    ("Rio de Janeiro", "Saint Petersburg"),
    ("Manila", "Dalian"),
    ("Istanbul", "Nairobi"),
]


@pytest.fixture(scope="module")
def study():
    return Hypatia.from_shell_name("K1", num_cities=100,
                                   epoch_offset_s=EPOCH_OFFSET_S)


def test_fig4_cwnd_evolution(study, benchmark):
    pairs = [study.pair(a, b) for a, b in PAIR_NAMES]
    flows = {}

    def run_experiment():
        total_events = 0
        for pair in pairs:
            sim = PacketSimulator(
                study.network,
                LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS,
                           isl_queue_packets=QUEUE_PACKETS,
                           gsl_queue_packets=QUEUE_PACKETS))
            flow = TcpNewRenoFlow(pair[0], pair[1]).install(sim)
            sim.run(DURATION_S)
            flows[pair] = flow
            total_events += sim.scheduler.events_processed
        return total_events

    benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    timelines = study.compute_timelines(pairs, duration_s=DURATION_S,
                                        step_s=1.0)
    rows = [f"# rate={RATE_BPS / 1e6:.1f} Mbit/s queue={QUEUE_PACKETS} pkts "
            f"duration={DURATION_S}s"]
    for (name_a, name_b), pair in zip(PAIR_NAMES, pairs):
        flow = flows[pair]
        times, cwnd = flow.cwnd_log.as_arrays()
        rtts = timelines[pair].rtts_s
        finite = rtts[np.isfinite(rtts)]
        bdp_packets = RATE_BPS * finite / (flow.packet_bytes * 8.0)
        rows.append(f"\n== {name_a} -> {name_b} ==")
        rows.append(f"BDP: {bdp_packets.min():.0f}-{bdp_packets.max():.0f} "
                    f"pkts; BDP+Q: {bdp_packets.min() + QUEUE_PACKETS:.0f}-"
                    f"{bdp_packets.max() + QUEUE_PACKETS:.0f} pkts")
        late = cwnd[times > DURATION_S * 0.2]
        rows.append(f"cwnd (post-transient): min {late.min():.0f} "
                    f"median {np.median(late):.0f} max {late.max():.0f} pkts")
        rows.append(f"fast retransmits: {flow.fast_retransmits}, "
                    f"timeouts: {flow.timeouts}, "
                    f"reordered arrivals: {flow.reordered_arrivals}")
        rows.append(f"goodput: {flow.goodput_bps(DURATION_S) / 1e6:.2f} "
                    f"Mbit/s")

    # Shape: a stable pair's cwnd sawtooth tops out near BDP+Q, and
    # window cuts happen (fast retransmits > 0) even without competing
    # traffic.
    manila_flow = flows[pairs[1]]
    times, cwnd = manila_flow.cwnd_log.as_arrays()
    late = cwnd[times > DURATION_S * 0.2]
    manila_rtt = timelines[pairs[1]].rtts_s
    bdp = RATE_BPS * np.nanmax(manila_rtt[np.isfinite(manila_rtt)]) \
        / (manila_flow.packet_bytes * 8.0)
    assert late.max() <= 2.0 * (bdp + QUEUE_PACKETS)
    assert late.max() >= 0.6 * bdp
    assert manila_flow.fast_retransmits > 0
    write_result("fig4_cwnd", rows)
