"""Fig. 9: forwarding-state time-step granularity.

Paper protocol (§5.3): compute forwarding state at 50, 100 and 1000 ms
time steps over Kuiper K1 and measure (a) the path changes observed per
time step and (b) the changes missed at coarser steps relative to 50 ms.
Expected shape: the 100 ms step misses changes for a negligible fraction
of pairs, while 1000 ms misses one or more changes for a visible fraction
(paper: 0.4% vs 6%).
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.analysis.timestep import changes_per_step, compare_timesteps
from repro.topology.dynamic_state import DynamicState

from _common import scaled, write_result

#: Base (finest) step is the paper's 50 ms; the scaled run shortens the
#: window and tracks fewer pairs instead of coarsening the base step.
BASE_STEP_S = 0.05
DURATION_S = scaled(12.0, 200.0)
NUM_PAIRS = scaled(25, 100)
FACTORS = (2, 20)  # -> 100 ms and 1000 ms


def test_fig9_granularity_of_updates(benchmark):
    hypatia = Hypatia.from_shell_name("K1", num_cities=100)
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    holder = {}

    def sweep():
        state = DynamicState(hypatia.network, pairs,
                             duration_s=DURATION_S, step_s=BASE_STEP_S)
        holder["timelines"] = state.compute()
        return len(holder["timelines"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    timelines = holder["timelines"]
    num_sats = hypatia.network.num_satellites

    per_pair_sets = [timeline.satellite_sets(num_sats)
                     for timeline in timelines.values()]
    base_changes = changes_per_step(per_pair_sets)
    comparisons = compare_timesteps(timelines, num_sats, factors=FACTORS)

    rows = [f"# K1, base step {BASE_STEP_S * 1000:.0f} ms, "
            f"{NUM_PAIRS} pairs, {DURATION_S}s",
            f"(a) total path changes at base step: {base_changes.sum()} "
            f"({base_changes.sum() / DURATION_S:.2f}/s network-wide)"]
    for comparison in comparisons:
        step_ms = BASE_STEP_S * comparison.factor * 1000.0
        rows.append(
            f"(b) step {step_ms:.0f} ms: pairs missing >=1 change: "
            f"{comparison.fraction_missing_at_least(1) * 100:.1f}%, "
            f">=2: {comparison.fraction_missing_at_least(2) * 100:.1f}%, "
            f"total missed {comparison.missed_per_pair.sum()}")

    # Shape: the coarser step misses at least as many changes as the
    # finer one, and 100 ms misses (nearly) nothing.
    missed_100 = comparisons[0].missed_per_pair.sum()
    missed_1000 = comparisons[1].missed_per_pair.sum()
    assert missed_1000 >= missed_100
    assert comparisons[0].fraction_missing_at_least(1) <= 0.1
    write_result("fig9_timestep", rows)
