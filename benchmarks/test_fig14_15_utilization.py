"""Figs. 14-15: link-utilization evolution and constellation-wide hotspots.

Paper §6: with the fixed permutation traffic matrix on Kuiper K1, per-ISL
utilization shifts over time even though the input traffic is static
(Fig. 14, Chicago-Zhengzhou example), and the heavily utilized ISLs
cluster over the Atlantic, between North America and Europe (Fig. 15).
This bench computes per-ISL loads with the max-min fluid engine at two
instants and exports the render-ready segment sets.
"""

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.fluid.engine import FluidFlow, FluidSimulation, path_devices
from repro.viz.utilization_map import hotspot_summary, utilization_map

from _common import scaled, write_result

SNAPSHOT_TIMES = [10.0, 150.0]


def test_fig14_15_utilization_shifts_and_hotspots(kuiper, benchmark):
    pairs = random_permutation_pairs(100)
    flows = [FluidFlow(src, dst) for src, dst in pairs]
    chicago_zhengzhou = kuiper.pair("Chicago", "Zhengzhou")
    flows.append(FluidFlow(*chicago_zhengzhou))
    flow_index = len(flows) - 1
    holder = {}

    def sweep():
        sim = FluidSimulation(kuiper.network, flows,
                              link_capacity_bps=10e6)
        # Two single-snapshot runs at the two instants of Fig. 14.
        for t in SNAPSHOT_TIMES:
            shifted = FluidSimulation(kuiper.network, flows,
                                      link_capacity_bps=10e6,
                                      freeze_topology_at_s=t)
            holder[t] = shifted.run(duration_s=1.0, step_s=1.0)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["# K1, 100-city permutation + Chicago->Zhengzhou, max-min "
            "fluid loads"]
    maps = {}
    paths = {}
    for t in SNAPSHOT_TIMES:
        result = holder[t]
        utilization = result.isl_utilization(0)
        segments = utilization_map(kuiper.constellation, utilization, t)
        summary = hotspot_summary(segments, hot_threshold=0.8)
        maps[t] = (segments, summary)
        paths[t] = result.flow_paths[0][flow_index]
        rows.append(f"\n== t = {t:.0f} s ==")
        rows.append(f"used ISLs: {summary['num_used_isls']}, hot (>=80%): "
                    f"{summary['num_hot_isls']}")
        if "hot_center_lat_deg" in summary:
            rows.append(f"hot-ISL centroid: "
                        f"({summary['hot_center_lat_deg']:.1f} deg, "
                        f"{summary['hot_center_lon_deg']:.1f} deg)")
        if paths[t] is not None:
            devices = path_devices(paths[t],
                                   kuiper.network.num_satellites)
            loads = result.device_load_bps[0]
            per_hop = [loads.get(dev, 0.0) / 10e6 for dev in devices]
            rows.append(f"Chicago->Zhengzhou path: {len(devices)} hops, "
                        f"per-hop utilization "
                        f"{np.round(per_hop, 2).tolist()}")

    # Fig. 14's point: the same flow's on-path utilization profile changes
    # between the two instants.
    segs_a, _ = maps[SNAPSHOT_TIMES[0]]
    segs_b, _ = maps[SNAPSHOT_TIMES[1]]
    links_a = {(s.sat_a, s.sat_b) for s in segs_a}
    links_b = {(s.sat_a, s.sat_b) for s in segs_b}
    assert links_a != links_b, "utilized link set should shift over time"
    # Fig. 15's point: hotspots exist and cluster in the northern
    # hemisphere (the trans-Atlantic corridor for this city set).
    for t in SNAPSHOT_TIMES:
        _, summary = maps[t]
        assert summary["num_hot_isls"] > 0
        assert summary["hot_center_lat_deg"] > 0.0
    write_result("fig14_15_utilization", rows)
