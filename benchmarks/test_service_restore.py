"""Service restore-parity gate (the `make bench-service` part of
`make check`).

The live-service contract (DESIGN.md "Live service & checkpointing"):
a simulation checkpointed mid-run, restored from the file, and advanced
to the horizon must produce a deterministic report and per-flow FCT
array bit-identical to a run that never stopped — on the packet engine
and both max-min fluid kernels.  This gate re-proves the contract at
every `make check` and times the checkpoint machinery itself.

Every run appends one record to ``results/BENCH_service_restore.json``
(save/load wall times, checkpoint sizes) so `repro bench-report` can
flag regressions in checkpoint cost across runs.
"""

from __future__ import annotations

import json
import random
import time

import numpy as np
import pytest

from repro.constellations.builder import Constellation
from repro.geo.coordinates import GeodeticPosition
from repro.ground.stations import GroundStation
from repro.orbits.shell import Shell
from repro.service import LiveSimulationService
from repro.sweep.spec import NetworkSpec
from repro.topology.network import LeoNetwork
from repro.traffic import FlowRequest, WorkloadSchedule

from _common import RESULTS_DIR, write_result

HORIZON_S = 12.0
EPOCH_S = 1.0
CHECKPOINT_EPOCH = 6
NUM_FLOWS = 30

TRAJECTORY_PATH = RESULTS_DIR / "BENCH_service_restore.json"

ENGINES = [("packet", "vectorized"), ("fluid", "reference"),
           ("fluid", "vectorized")]

_SITES = [
    ("Quito", 0.0, -78.5),
    ("Nairobi", -1.3, 36.8),
    ("Singapore", 1.35, 103.8),
    ("Honolulu", 21.3, -157.9),
    ("Sydney", -33.9, 151.2),
    ("Madrid", 40.4, -3.7),
]


def _spec() -> NetworkSpec:
    shell = Shell(name="X1", num_orbits=8, satellites_per_orbit=8,
                  altitude_m=600_000.0, inclination_deg=53.0)
    stations = [
        GroundStation(gid=i, name=name,
                      position=GeodeticPosition(lat, lon, 0.0))
        for i, (name, lat, lon) in enumerate(_SITES)
    ]
    network = LeoNetwork(Constellation([shell]), stations,
                         min_elevation_deg=10.0)
    rng = random.Random(17)
    requests = []
    for _ in range(NUM_FLOWS):
        src, dst = rng.sample(range(len(_SITES)), 2)
        requests.append(FlowRequest(
            t_start_s=rng.uniform(0.0, HORIZON_S * 0.7),
            src_gid=src, dst_gid=dst,
            size_bytes=rng.randint(20_000, 120_000)))
    return NetworkSpec.from_network(network).with_workload(
        WorkloadSchedule(requests, seed=17))


def _service(engine: str, kernel: str) -> LiveSimulationService:
    return LiveSimulationService(_spec(), engine=engine, kernel=kernel,
                                 horizon_s=HORIZON_S, epoch_s=EPOCH_S)


def _parity_form(service: LiveSimulationService) -> str:
    return json.dumps(service.report().as_dict(deterministic=True),
                      sort_keys=True)


def _append_trajectory(record):
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_restore_parity_all_engines(tmp_path):
    lines = []
    record = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
              "horizon_s": HORIZON_S, "flows": NUM_FLOWS}
    total_save_s = total_load_s = 0.0
    for engine, kernel in ENGINES:
        label = engine if engine == "packet" else f"{engine}-{kernel}"
        baseline = _service(engine, kernel)
        baseline.run_to_horizon()

        interrupted = _service(engine, kernel)
        interrupted.advance_epoch(CHECKPOINT_EPOCH)
        path = tmp_path / f"{label}.ckpt"
        start = time.perf_counter()
        interrupted.save(str(path))
        save_s = time.perf_counter() - start
        size = path.stat().st_size
        start = time.perf_counter()
        restored = LiveSimulationService.resume(str(path))
        load_s = time.perf_counter() - start
        restored.run_to_horizon()

        assert _parity_form(restored) == _parity_form(baseline), \
            f"{label}: restored run diverged from the uninterrupted run"
        assert np.array_equal(restored.fct_values(),
                              baseline.fct_values(), equal_nan=True), \
            f"{label}: restored FCT array diverged"

        total_save_s += save_s
        total_load_s += load_s
        record[f"{label.replace('-', '_')}_save_s"] = save_s
        record[f"{label.replace('-', '_')}_load_s"] = load_s
        record[f"{label.replace('-', '_')}_bytes"] = size
        lines.append(f"{label:18s} save {save_s * 1e3:7.1f} ms  "
                     f"load {load_s * 1e3:7.1f} ms  "
                     f"{size / 1024:8.1f} KiB  parity OK")

    record["wall_time_s"] = total_save_s + total_load_s
    _append_trajectory(record)
    write_result("service_restore", lines)


@pytest.mark.parametrize("workers", [None, 4])
def test_sweep_warm_start_parity(workers, tmp_path):
    from repro.service import resume_sweep, sweep_with_checkpoint
    from repro.sweep.engine import sweep_timelines
    spec = _spec()
    pairs = [(0, 1), (2, 3), (4, 5)]
    times_s = np.arange(0.0, 13.0, 1.0)
    expected = sweep_timelines(spec, pairs, times_s)
    path = tmp_path / "sweep.ckpt"
    sweep_with_checkpoint(spec, pairs, times_s, str(path),
                          checkpoint_index=5)
    resumed = resume_sweep(str(path), workers=workers)
    for pair in expected:
        assert np.array_equal(resumed[pair].distances_m,
                              expected[pair].distances_m, equal_nan=True)
        assert resumed[pair].paths == expected[pair].paths
