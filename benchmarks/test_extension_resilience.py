"""Extension bench: +Grid resilience to satellite failures.

Beyond the paper's figures (its §7 invites reliability work): kill a
growing random fraction of Kuiper K1's satellites and measure pair
connectivity and median RTT inflation.  The +Grid mesh should absorb
small failure fractions with mild detours and degrade gracefully.
"""

import random

import numpy as np
import pytest

from repro import Hypatia, random_permutation_pairs
from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.ground.stations import ground_stations_from_cities
from repro.routing.engine import RoutingEngine
from repro.topology.network import LeoNetwork

from _common import scaled, write_result

FAILURE_FRACTIONS = [0.0, 0.01, 0.05, 0.10, 0.25]
NUM_PAIRS = scaled(30, 100)


def test_extension_failure_resilience(benchmark):
    stations = ground_stations_from_cities(count=100)
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    constellation = Constellation([KUIPER_K1])
    rng = random.Random(7)
    all_sats = list(range(constellation.num_satellites))
    holder = {}

    def sweep():
        for fraction in FAILURE_FRACTIONS:
            failed = rng.sample(all_sats,
                                int(fraction * len(all_sats)))
            network = LeoNetwork(constellation, stations,
                                 min_elevation_deg=30.0,
                                 failed_satellites=failed)
            engine = RoutingEngine(network)
            snapshot = network.snapshot(0.0)
            rtts = []
            for src, dst in pairs:
                rtt = engine.pair_rtt_s(snapshot, src, dst)
                if np.isfinite(rtt):
                    rtts.append(rtt)
            holder[fraction] = np.array(rtts)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = np.median(holder[0.0])
    rows = [f"# K1, {NUM_PAIRS} pairs, random satellite failures (seed 7)",
            f"{'failed':>8} {'connected pairs':>16} {'median RTT (ms)':>16} "
            f"{'inflation':>10}"]
    for fraction in FAILURE_FRACTIONS:
        rtts = holder[fraction]
        median = np.median(rtts) if len(rtts) else float("nan")
        rows.append(f"{fraction * 100:7.0f}% {len(rtts):16d} "
                    f"{median * 1000:16.2f} {median / baseline:10.3f}")

    # Graceful degradation: 1% failures keep everyone connected with
    # < 10% median inflation; connectivity decreases monotonically-ish.
    assert len(holder[0.01]) == len(holder[0.0])
    assert np.median(holder[0.01]) < baseline * 1.10
    assert len(holder[0.25]) <= len(holder[0.01])
    write_result("extension_resilience", rows)
