"""Extension bench: +Grid resilience to scheduled satellite outages.

Beyond the paper's figures (its §7 invites reliability work): a seeded
:class:`repro.faults.FaultSchedule` takes out a growing random fraction
of Kuiper K1's satellites in successive outage waves, and pair
connectivity / median RTT inflation are measured inside each wave
against a clean network at the *same instant* (so constellation motion
cancels out).  The +Grid mesh should absorb small failure fractions
with mild detours, degrade gracefully at large ones, and recover
exactly once the schedule ends.
"""

import random

import numpy as np
import pytest

from repro import random_permutation_pairs
from repro.constellations.builder import Constellation
from repro.constellations.definitions import KUIPER_K1
from repro.faults import FaultEvent, FaultSchedule
from repro.ground.stations import ground_stations_from_cities
from repro.routing.engine import RoutingEngine
from repro.topology.network import LeoNetwork

from _common import scaled, write_result

#: (fraction of satellites out, wave start) — each wave lasts WAVE_S.
WAVES = [(0.01, 10.0), (0.05, 30.0), (0.10, 50.0), (0.25, 70.0)]
WAVE_S = 10.0
RECOVERY_T = 90.0
NUM_PAIRS = scaled(30, 100)


def _wave_schedule(num_satellites: int, seed: int = 7) -> FaultSchedule:
    """Escalating outage waves as one deterministic fault schedule."""
    rng = random.Random(seed)
    all_sats = list(range(num_satellites))
    events = []
    for fraction, start in WAVES:
        for sat in rng.sample(all_sats, int(fraction * num_satellites)):
            events.append(FaultEvent.satellite_outage(
                sat, start, start + WAVE_S))
    return FaultSchedule(events, seed=seed)


def _pair_rtts(network, engine, pairs, time_s):
    snapshot = network.snapshot(time_s)
    rtts = [engine.pair_rtt_s(snapshot, src, dst) for src, dst in pairs]
    return np.array([r for r in rtts if np.isfinite(r)])


def test_extension_failure_resilience(benchmark):
    stations = ground_stations_from_cities(count=100)
    pairs = random_permutation_pairs(100)[:NUM_PAIRS]
    constellation = Constellation([KUIPER_K1])
    faults = _wave_schedule(constellation.num_satellites)
    clean = LeoNetwork(constellation, stations, min_elevation_deg=30.0)
    faulted = LeoNetwork(constellation, stations, min_elevation_deg=30.0,
                         faults=faults)
    holder = {}

    def sweep():
        clean_engine = RoutingEngine(clean)
        fault_engine = RoutingEngine(faulted)
        for fraction, start in WAVES:
            mid = start + WAVE_S / 2.0
            holder[fraction] = (
                _pair_rtts(clean, clean_engine, pairs, mid),
                _pair_rtts(faulted, fault_engine, pairs, mid),
            )
        holder["recovered"] = (
            _pair_rtts(clean, clean_engine, pairs, RECOVERY_T),
            _pair_rtts(faulted, fault_engine, pairs, RECOVERY_T),
        )
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [f"# K1, {NUM_PAIRS} pairs, scheduled outage waves (seed "
            f"{faults.seed}), same-instant clean-vs-faulted comparison",
            f"{'failed':>8} {'connected pairs':>16} {'median RTT (ms)':>16} "
            f"{'inflation':>10}"]
    inflation = {}
    for fraction, _ in WAVES:
        clean_rtts, fault_rtts = holder[fraction]
        median = np.median(fault_rtts) if len(fault_rtts) else float("nan")
        inflation[fraction] = median / np.median(clean_rtts)
        rows.append(f"{fraction * 100:7.0f}% {len(fault_rtts):16d} "
                    f"{median * 1000:16.2f} {inflation[fraction]:10.3f}")

    # Graceful degradation: a 1% wave keeps everyone connected with
    # < 10% median inflation; connectivity decreases monotonically-ish
    # and inflation stays bounded through the heaviest wave.
    assert len(holder[0.01][1]) == len(holder[0.01][0])
    assert inflation[0.01] < 1.10
    assert len(holder[0.25][1]) <= len(holder[0.01][1])
    for fraction, _ in WAVES:
        assert inflation[fraction] < 2.0
    # Full recovery after the schedule: bit-identical to the clean walk.
    clean_rtts, fault_rtts = holder["recovered"]
    assert np.array_equal(clean_rtts, fault_rtts)
    rows.append(f"recovery at t={RECOVERY_T:.0f}s: "
                f"{len(fault_rtts)} pairs, RTTs identical to clean")
    write_result("extension_resilience", rows)
