"""Ablation: fluid engine vs packet simulator — the DESIGN.md check.

The constellation-wide experiments substitute the fluid engine for the
per-packet simulator.  This bench validates the substitution where both
are affordable: a handful of long-running flows over Kuiper K1.  The
aggregate TCP goodput should approach, but not exceed, the max-min fluid
total; per-flow AIMD-fluid rates should land in the same range as per-flow
TCP goodputs.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.fluid.aimd import AimdFluidSimulation
from repro.fluid.engine import FluidFlow, FluidSimulation
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow

from _common import scaled, write_result

RATE_BPS = scaled(2_500_000.0, 10_000_000.0)
DURATION_S = scaled(30.0, 120.0)
PAIR_NAMES = [("Madrid", "Lagos"), ("Istanbul", "Nairobi"),
              ("Manila", "Dalian"), ("Tokyo", "Seoul")]


def test_ablation_fluid_vs_packet(kuiper, benchmark):
    pairs = [kuiper.pair(a, b) for a, b in PAIR_NAMES]
    flows = [FluidFlow(src, dst) for src, dst in pairs]
    holder = {}

    def run_all():
        maxmin = FluidSimulation(kuiper.network, flows,
                                 link_capacity_bps=RATE_BPS)
        holder["maxmin"] = maxmin.run(duration_s=4.0, step_s=2.0)
        aimd = AimdFluidSimulation(kuiper.network, flows,
                                   link_capacity_bps=RATE_BPS)
        holder["aimd"] = aimd.run(duration_s=DURATION_S, step_s=1.0)
        sim = PacketSimulator(
            kuiper.network,
            LinkConfig(isl_rate_bps=RATE_BPS, gsl_rate_bps=RATE_BPS))
        tcps = [TcpNewRenoFlow(src, dst).install(sim)
                for src, dst in pairs]
        sim.run(DURATION_S)
        holder["tcp"] = tcps
        return sim.scheduler.events_processed

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    maxmin_rates = holder["maxmin"].flow_rates_bps[-1]
    aimd_rates = holder["aimd"].flow_rates_bps[
        int(DURATION_S // 2):].mean(axis=0)
    tcp_rates = np.array([
        tcp.goodput_bps(DURATION_S) for tcp in holder["tcp"]
    ])

    rows = [f"# K1, {len(pairs)} flows, {RATE_BPS / 1e6:.1f} Mbit/s links",
            f"{'pair':>22} {'max-min':>9} {'AIMD-fluid':>11} "
            f"{'packet TCP':>11}  (Mbit/s)"]
    for i, (a, b) in enumerate(PAIR_NAMES):
        rows.append(f"{a + '->' + b:>22} {maxmin_rates[i] / 1e6:9.2f} "
                    f"{aimd_rates[i] / 1e6:11.2f} "
                    f"{tcp_rates[i] / 1e6:11.2f}")
    rows.append(f"{'TOTAL':>22} {maxmin_rates.sum() / 1e6:9.2f} "
                f"{aimd_rates.sum() / 1e6:11.2f} "
                f"{tcp_rates.sum() / 1e6:11.2f}")

    # Agreement: TCP aggregate within the max-min envelope and above half
    # of it; AIMD fluid within 30% of packet TCP per flow.
    assert tcp_rates.sum() <= maxmin_rates.sum() * 1.05
    assert tcp_rates.sum() >= maxmin_rates.sum() * 0.5
    for aimd, tcp in zip(aimd_rates, tcp_rates):
        assert 0.5 * tcp < aimd < 2.0 * tcp + 1e5
    write_result("ablation_fluid_vs_packet", rows)
