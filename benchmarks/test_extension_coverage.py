"""Extension bench: coverage by latitude (quantifying Fig. 11 / §2.2).

The paper's coverage claims, measured: S1 "will not extend service to
less populated regions at high latitudes"; Kuiper "entirely eschews
connectivity near the poles"; Telesat's T1 covers the high latitudes.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.analysis.coverage import coverage_by_latitude

from _common import write_result

SHELLS = {"S1": 25.0, "K1": 30.0, "T1": 10.0}
LATITUDES = list(range(-90, 91, 15))


def test_extension_coverage_by_latitude(benchmark):
    holder = {}

    def sweep():
        for shell, elevation in SHELLS.items():
            hypatia = Hypatia.from_shell_name(shell, num_cities=1)
            holder[shell] = coverage_by_latitude(
                hypatia.constellation, elevation,
                latitudes_deg=LATITUDES)
        return len(holder)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = ["# covered fraction of (longitude, time) samples by latitude",
            f"{'latitude':>9} " + " ".join(f"{s:>6}" for s in SHELLS)]
    by_shell = {s: {c.latitude_deg: c for c in holder[s]} for s in SHELLS}
    for latitude in LATITUDES:
        rows.append(f"{latitude:8d}° " + " ".join(
            f"{by_shell[s][latitude].covered_fraction:6.2f}"
            for s in SHELLS))

    def coverage(shell, latitude):
        return by_shell[shell][latitude].covered_fraction

    # Mid-latitudes: everyone covers them fully.
    for shell in SHELLS:
        assert coverage(shell, 30) == 1.0
        assert coverage(shell, -30) == 1.0
    # Poles: only Telesat's near-polar T1 reaches them.
    assert coverage("T1", 90) == 1.0
    assert coverage("K1", 90) == 0.0
    assert coverage("S1", 90) == 0.0
    # High latitudes (75 deg): Kuiper (i=51.9, l=30) is dark, Telesat is
    # lit.
    assert coverage("T1", 75) == 1.0
    assert coverage("K1", 75) == 0.0
    write_result("extension_coverage", rows)
