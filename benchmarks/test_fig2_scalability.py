"""Fig. 2: simulator scalability — slowdown vs network-wide goodput.

Paper protocol (§3.4): Kuiper K1, the most populous cities as GSes, a
random permutation traffic matrix, long-running TCP flows (or line-rate
paced UDP), uniform line rates swept to control goodput.  Slowdown is
wall-clock seconds per simulated second; the paper's key finding — the
goodput alone determines the slowdown, with UDP cheaper than TCP — is what
this bench reproduces.  Absolute numbers differ (pure Python vs C++ ns-3).
"""

import time

import pytest

from repro import Hypatia, random_permutation_pairs
from repro.simulation.simulator import LinkConfig, PacketSimulator
from repro.transport.tcp import TcpNewRenoFlow
from repro.transport.udp import UdpFlow

from _common import scaled, write_result

#: Line rates swept (bit/s).
LINE_RATES = scaled([250_000.0, 1_000_000.0, 2_500_000.0],
                    [1_000_000.0, 10_000_000.0, 25_000_000.0,
                     100_000_000.0])
NUM_CITIES = scaled(20, 100)
VIRTUAL_SECONDS = scaled(2.0, 10.0)


def _run_workload(protocol: str, line_rate: float) -> dict:
    hypatia = Hypatia.from_shell_name("K1", num_cities=NUM_CITIES)
    pairs = random_permutation_pairs(NUM_CITIES)
    sim = PacketSimulator(
        hypatia.network,
        LinkConfig(isl_rate_bps=line_rate, gsl_rate_bps=line_rate))
    flows = []
    for src, dst in pairs:
        if protocol == "tcp":
            flows.append(TcpNewRenoFlow(src, dst).install(sim))
        else:
            flows.append(UdpFlow(src, dst, rate_bps=line_rate).install(sim))
    start = time.perf_counter()
    sim.run(VIRTUAL_SECONDS)
    wall = time.perf_counter() - start
    if protocol == "tcp":
        payload = sum(flow.acked_payload_bytes for flow in flows)
    else:
        payload = sum(flow.bytes_received for flow in flows)
    goodput = payload * 8.0 / VIRTUAL_SECONDS
    perf = sim.stats.perf_summary()
    return {
        "wall_s": wall,
        "slowdown": wall / VIRTUAL_SECONDS,
        "goodput_bps": goodput,
        "events": sim.scheduler.events_processed,
        "events_per_s": perf["events_per_wall_s"],
        "routing_s": perf["routing_compute_s"],
        "trees": perf["trees_computed"],
        "csr_avoided": perf["csr_rebuilds_avoided"],
    }


@pytest.mark.parametrize("protocol", ["udp", "tcp"])
def test_fig2_slowdown_vs_goodput(protocol, benchmark):
    rows = [f"# protocol={protocol}, {NUM_CITIES} cities, "
            f"{VIRTUAL_SECONDS} virtual seconds",
            f"{'rate (Mbit/s)':>14} {'goodput (Mbit/s)':>17} "
            f"{'slowdown':>10} {'events':>10} {'events/s':>12} "
            f"{'routing_s':>10} {'trees':>7} {'csr_avoided':>11}"]
    results = []

    def sweep():
        results.clear()
        for rate in LINE_RATES:
            results.append((rate, _run_workload(protocol, rate)))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for rate, result in results:
        rows.append(f"{rate / 1e6:14.2f} {result['goodput_bps'] / 1e6:17.3f} "
                    f"{result['slowdown']:10.2f} {result['events']:10d} "
                    f"{result['events_per_s']:12.0f} "
                    f"{result['routing_s']:10.3f} {result['trees']:7d} "
                    f"{result['csr_avoided']:11d}")

    # Shape check: higher goodput => higher slowdown (per protocol).
    slowdowns = [r["slowdown"] for _, r in results]
    goodputs = [r["goodput_bps"] for _, r in results]
    assert goodputs == sorted(goodputs)
    assert slowdowns[-1] > slowdowns[0]
    write_result(f"fig2_scalability_{protocol}", rows)
