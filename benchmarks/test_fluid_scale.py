"""Fluid-core scale gate (the `make bench-fluid-scale` part of `make check`).

The vectorized fluid-core contract (DESIGN.md "Vectorized fluid core"):

* **Equality, always asserted.**  The array waterfilling kernel must be
  bit-identical to the fixed pure-Python progressive-filling oracle —
  on random scenarios with repeated link traversals and demand caps, on
  a static permutation workload run end-to-end through
  ``FluidSimulation`` with both kernels, and on the full-scale gravity
  allocation below.
* **Scale, gated on machine capability.**  A 100-city gravity matrix
  with >= 1e5 concurrent flows per snapshot must solve at interactive
  speed, >= 10x faster than the per-flow Python solver on the same
  workload.  Like the `bench-sweep` speedup gate, the throughput
  thresholds are only enforced on machines with >= 4 cores; the numbers
  are measured and reported everywhere.

Every run appends one record to ``results/BENCH_fluid_scale.json`` so
the throughput trajectory across commits/machines is preserved.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import Hypatia
from repro.fluid.engine import (FluidFlow, FluidSimulation,
                                flow_link_matrix_from_paths, path_devices)
from repro.fluid.maxmin import max_min_fair_allocation
from repro.fluid.vectorized import (max_min_fair_allocation_vectorized,
                                    waterfill)
from repro.traffic import TrafficMatrix

from _common import RESULTS_DIR, scaled, write_result

NUM_CITIES = 100
NUM_FLOWS = scaled(100_000, 1_000_000)
LINK_CAPACITY_BPS = 10e6
MIN_SPEEDUP = 10.0
MAX_SOLVE_S = 2.0  # "interactive speed": one snapshot allocation budget
SPEEDUP_CORES = 4
TRAJECTORY_PATH = RESULTS_DIR / "BENCH_fluid_scale.json"

_CACHE = {}


def _gravity_paths():
    """The scale workload: K1, 100-city gravity, one snapshot's paths."""
    if not _CACHE:
        hypatia = Hypatia.from_shell_name("K1", num_cities=NUM_CITIES)
        matrix = TrafficMatrix.gravity(count=NUM_CITIES,
                                       total_offered_bps=1e9)
        demand = np.array(matrix.demand_bps, dtype=float).copy()
        np.fill_diagonal(demand, 0.0)
        rng = np.random.default_rng(42)
        probability = (demand / demand.sum()).ravel()
        # Oversample: self-pairs and disconnected stations are dropped
        # below, and the solve must still see >= NUM_FLOWS rows.
        draws = rng.choice(probability.size, size=int(NUM_FLOWS * 1.05),
                           p=probability)
        src, dst = np.divmod(draws, NUM_CITIES)
        keep = src != dst
        flows = [FluidFlow(int(s), int(d))
                 for s, d in zip(src[keep], dst[keep])]
        sim = FluidSimulation(hypatia.network, flows,
                              link_capacity_bps=LINK_CAPACITY_BPS)
        start = time.perf_counter()
        paths = sim._paths_at(hypatia.network.snapshot(0.0))
        _CACHE["paths_s"] = time.perf_counter() - start
        _CACHE["paths"] = [p for p in paths if p is not None][:NUM_FLOWS]
        _CACHE["num_sats"] = hypatia.network.num_satellites
        _CACHE["num_nodes"] = hypatia.network.num_nodes
    return _CACHE


def _append_trajectory(record):
    RESULTS_DIR.mkdir(exist_ok=True)
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_kernels_bit_identical_on_random_scenarios():
    """Random capacities/paths/demands — loop paths included."""
    rng = np.random.default_rng(7)
    for _ in range(200):
        links = [f"l{j}" for j in range(rng.integers(1, 8))]
        capacity = {link: float(rng.uniform(0.5, 50.0)) for link in links}
        num_flows = int(rng.integers(1, 12))
        flow_links = [list(rng.choice(links, size=rng.integers(1, 6)))
                      for _ in range(num_flows)]
        demands = (rng.uniform(0.1, 40.0, size=num_flows)
                   if rng.random() < 0.5 else None)
        expected = max_min_fair_allocation(capacity, flow_links, demands)
        got = max_min_fair_allocation_vectorized(capacity, flow_links,
                                                 demands)
        assert np.array_equal(expected, got), (capacity, flow_links,
                                               demands)


def test_static_permutation_bit_identical():
    """End-to-end FluidSimulation parity on a permutation workload."""
    from repro import random_permutation_pairs
    hypatia = Hypatia.from_shell_name("K1", num_cities=NUM_CITIES)
    pairs = random_permutation_pairs(NUM_CITIES)
    flows = [FluidFlow(src, dst) for src, dst in pairs]
    results = {}
    for kernel in ("reference", "vectorized"):
        sim = FluidSimulation(hypatia.network, flows,
                              link_capacity_bps=LINK_CAPACITY_BPS,
                              kernel=kernel)
        results[kernel] = sim.run(duration_s=4.0, step_s=2.0)
    ref, vec = results["reference"], results["vectorized"]
    assert np.array_equal(ref.flow_rates_bps, vec.flow_rates_bps)
    assert ref.device_load_bps == vec.device_load_bps
    assert ref.flow_paths == vec.flow_paths


def test_gravity_scale():
    """>= 1e5 concurrent flows per snapshot, vectorized vs the oracle.

    Equality at full scale is always asserted; the throughput
    thresholds only gate on capable machines (>= 4 cores).
    """
    cache = _gravity_paths()
    paths, num_sats = cache["paths"], cache["num_sats"]
    num_nodes = cache["num_nodes"]

    # Vectorized: the engine's own build path + the waterfill kernel.
    build_start = time.perf_counter()
    matrix, _ = flow_link_matrix_from_paths(
        paths, num_sats, num_nodes, lambda key: LINK_CAPACITY_BPS)
    build_s = time.perf_counter() - build_start
    waterfill(matrix)  # warm caches/allocator before timing
    vec_solve_s = np.inf
    for _ in range(3):
        start = time.perf_counter()
        rates_vec = waterfill(matrix)
        vec_solve_s = min(vec_solve_s, time.perf_counter() - start)

    # Reference: the per-flow Python solver on the same workload.
    conv_start = time.perf_counter()
    flow_links = [path_devices(path, num_sats) for path in paths]
    capacity = {key: LINK_CAPACITY_BPS for key in matrix.link_keys}
    ref_build_s = time.perf_counter() - conv_start
    start = time.perf_counter()
    rates_ref = max_min_fair_allocation(capacity, flow_links)
    ref_solve_s = time.perf_counter() - start

    assert np.array_equal(rates_ref, rates_vec), (
        "vectorized kernel diverged from the oracle at scale")

    speedup = ref_solve_s / vec_solve_s
    capable = (os.cpu_count() or 1) >= SPEEDUP_CORES
    rows = [
        "# fluid-core scale gate (100-city gravity, one snapshot)",
        f"flows                 {len(paths):10d}",
        f"links                 {matrix.num_links:10d}",
        f"traversals            {matrix.nnz:10d}",
        f"paths_wall_s          {cache['paths_s']:10.3f}",
        f"matrix_build_s        {build_s:10.3f}",
        f"vectorized_solve_s    {vec_solve_s:10.3f}",
        f"reference_build_s     {ref_build_s:10.3f}",
        f"reference_solve_s     {ref_solve_s:10.3f}",
        f"speedup               {speedup:10.1f}",
        f"min_speedup           {MIN_SPEEDUP:10.1f}",
        f"max_solve_s           {MAX_SOLVE_S:10.2f}",
        f"bit_identical         {'yes':>10}",
        f"thresholds_enforced   {('yes' if capable else 'no'):>10}",
    ]
    write_result("fluid_scale", rows)
    _append_trajectory({
        "timestamp": time.time(),
        "flows": len(paths),
        "links": matrix.num_links,
        "traversals": matrix.nnz,
        "paths_wall_s": cache["paths_s"],
        "matrix_build_s": build_s,
        "vectorized_solve_s": vec_solve_s,
        "reference_solve_s": ref_solve_s,
        "speedup": speedup,
        "full_scale": NUM_FLOWS != 100_000,
        "cpu_count": os.cpu_count() or 1,
    })

    assert len(paths) >= NUM_FLOWS, "scale gate lost workload rows"
    if not capable:
        pytest.skip(f"throughput gate needs >= {SPEEDUP_CORES} cores "
                    f"(measured {speedup:.1f}x, {vec_solve_s:.3f}s)")
    assert vec_solve_s <= MAX_SOLVE_S, (
        f"vectorized solve took {vec_solve_s:.2f}s per snapshot "
        f"(interactive budget {MAX_SOLVE_S:.1f}s)")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized kernel reached only {speedup:.1f}x over the "
        f"Python solver (gate {MIN_SPEEDUP:.0f}x)")
