"""Fig. 12: the ground observer's view from St. Petersburg over Kuiper K1.

Paper §6: from St. Petersburg, many K1 satellites are above the horizon
but, at times, none is above the 30 deg minimum elevation — the network is
intermittently unreachable, explaining the Fig. 3(a) disruption.  This
bench generates the sky-view data (azimuth/elevation tracks) and the
reachability timeline, and verifies both regimes occur.
"""

import numpy as np
import pytest

from repro import Hypatia
from repro.viz.ground_view import reachability_timeline, sky_snapshot

from _common import scaled, write_result

DURATION_S = scaled(300.0, 600.0)
STEP_S = 2.0


def test_fig12_st_petersburg_sky(benchmark):
    hypatia = Hypatia.from_shell_name("K1", num_cities=100)
    station = hypatia.ground_stations[hypatia.gid("Saint Petersburg")]
    holder = {}

    def sweep():
        holder["timeline"] = reachability_timeline(
            hypatia.constellation, station,
            hypatia.network.min_elevation_deg,
            duration_s=DURATION_S, step_s=STEP_S)
        return len(holder["timeline"]["times_s"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    timeline = holder["timeline"]
    connectable = timeline["num_connectable"]
    above = timeline["num_above_horizon"]

    connected_frac = float((connectable > 0).mean())
    rows = [
        f"# Saint Petersburg over K1, min elevation "
        f"{hypatia.network.min_elevation_deg:.0f} deg, {DURATION_S}s",
        f"satellites above horizon: min {above.min()} max {above.max()}",
        f"connectable satellites:   min {connectable.min()} "
        f"max {connectable.max()}",
        f"reachable fraction of time: {connected_frac * 100:.1f}%",
    ]
    # Example snapshots of the two regimes (the two panels of Fig. 12).
    reachable_idx = int(np.argmax(connectable > 0))
    outage_idx = int(np.argmax(connectable == 0))
    for label, idx in [("reachable", reachable_idx), ("outage", outage_idx)]:
        snap = sky_snapshot(hypatia.constellation, station,
                            hypatia.network.min_elevation_deg,
                            float(timeline["times_s"][idx]))
        rows.append(f"t={timeline['times_s'][idx]:.0f}s ({label}): "
                    f"{snap.num_above_horizon} above horizon, "
                    f"{snap.num_connectable} connectable")

    # Shape: always many satellites above the horizon, yet reachability is
    # intermittent (both regimes occur within the window).
    assert above.min() > 10
    assert (connectable == 0).any(), "expected an outage window"
    assert (connectable > 0).any(), "expected a reachable window"
    assert 0.2 < connected_frac < 0.95
    write_result("fig12_ground_view", rows)
