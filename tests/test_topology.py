"""Tests for ISL interconnects, GSL policies, and topology snapshots."""

import numpy as np
import pytest

from repro.geo.constants import SPEED_OF_LIGHT_M_PER_S
from repro.topology.gsl import GslEdges, GslPolicy, compute_gsl_edges
from repro.topology.isl import (
    isl_lengths_m,
    no_isls,
    plus_grid_isls,
    single_ring_isls,
    validate_isl_pairs,
)
from repro.topology.network import LeoNetwork


class TestPlusGrid:
    def test_edge_count(self, small_constellation):
        # +Grid has exactly 2 undirected ISLs per satellite.
        pairs = plus_grid_isls(small_constellation)
        assert len(pairs) == 2 * small_constellation.num_satellites

    def test_every_satellite_has_degree_four(self, small_constellation):
        pairs = plus_grid_isls(small_constellation)
        degree = np.zeros(small_constellation.num_satellites, dtype=int)
        for a, b in pairs:
            degree[a] += 1
            degree[b] += 1
        assert (degree == 4).all()

    def test_pairs_canonical_and_unique(self, small_constellation):
        pairs = plus_grid_isls(small_constellation)
        assert (pairs[:, 0] < pairs[:, 1]).all()
        assert len({tuple(p) for p in pairs.tolist()}) == len(pairs)

    def test_validates(self, small_constellation):
        pairs = plus_grid_isls(small_constellation)
        validate_isl_pairs(pairs, small_constellation.num_satellites)

    def test_graph_connected(self, small_constellation):
        import networkx as nx
        graph = nx.Graph()
        graph.add_edges_from(map(tuple, plus_grid_isls(small_constellation)))
        assert nx.is_connected(graph)

    def test_no_isls_empty(self, small_constellation):
        assert len(no_isls(small_constellation)) == 0

    def test_single_ring_degree_two(self, small_constellation):
        pairs = single_ring_isls(small_constellation)
        degree = np.zeros(small_constellation.num_satellites, dtype=int)
        for a, b in pairs:
            degree[a] += 1
            degree[b] += 1
        assert (degree == 2).all()

    def test_single_ring_is_subset_of_plus_grid(self, small_constellation):
        grid = {tuple(p) for p in plus_grid_isls(small_constellation).tolist()}
        ring = {tuple(p) for p in
                single_ring_isls(small_constellation).tolist()}
        assert ring < grid


class TestIslValidation:
    def test_rejects_self_link(self):
        with pytest.raises(ValueError):
            validate_isl_pairs(np.array([[3, 3]]), 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_isl_pairs(np.array([[0, 10]]), 10)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_isl_pairs(np.array([[0, 1], [1, 0]]), 10)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            validate_isl_pairs(np.array([[0, 1, 2]]), 10)

    def test_empty_ok(self):
        validate_isl_pairs(np.empty((0, 2)), 10)


class TestIslLengths:
    def test_lengths_match_positions(self, small_constellation):
        pairs = plus_grid_isls(small_constellation)
        positions = small_constellation.positions_ecef_m(0.0)
        lengths = isl_lengths_m(pairs, positions)
        assert len(lengths) == len(pairs)
        a, b = pairs[0]
        assert lengths[0] == pytest.approx(
            np.linalg.norm(positions[a] - positions[b]))

    def test_lengths_vary_over_time(self, small_constellation):
        # Cross-orbit ISLs stretch and shrink with latitude (paper §2.3).
        pairs = plus_grid_isls(small_constellation)
        l0 = isl_lengths_m(pairs, small_constellation.positions_ecef_m(0.0))
        l1 = isl_lengths_m(pairs, small_constellation.positions_ecef_m(60.0))
        assert np.abs(l1 - l0).max() > 100.0

    def test_intra_orbit_lengths_constant(self, small_constellation):
        """Same-orbit neighbors keep a fixed separation as they fly."""
        shell = small_constellation.shells[0]
        sat_a = 0
        sat_b = 1  # next in the same orbit
        d = []
        for t in [0.0, 100.0, 500.0]:
            positions = small_constellation.positions_ecef_m(t)
            d.append(np.linalg.norm(positions[sat_a] - positions[sat_b]))
        np.testing.assert_allclose(d, d[0], rtol=1e-9)


class TestGslPolicies:
    def test_all_visible_vs_nearest(self, small_constellation,
                                    small_stations):
        positions = small_constellation.positions_ecef_m(0.0)
        all_edges = compute_gsl_edges(small_stations, positions, 15.0,
                                      GslPolicy.ALL_VISIBLE)
        nearest = compute_gsl_edges(small_stations, positions, 15.0,
                                    GslPolicy.NEAREST_ONLY)
        for gid in range(len(small_stations)):
            assert len(nearest[gid].satellite_ids) <= 1
            if all_edges[gid].is_connected:
                assert nearest[gid].is_connected
                assert nearest[gid].satellite_ids[0] == \
                    all_edges[gid].nearest_satellite()

    def test_nearest_satellite_raises_when_empty(self):
        edges = GslEdges(gid=0, satellite_ids=np.empty(0, dtype=np.int64),
                         lengths_m=np.empty(0))
        assert not edges.is_connected
        with pytest.raises(ValueError):
            edges.nearest_satellite()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GslEdges(gid=0, satellite_ids=np.array([1, 2]),
                     lengths_m=np.array([1.0]))

    def test_stricter_elevation_fewer_edges(self, small_constellation,
                                            small_stations):
        positions = small_constellation.positions_ecef_m(0.0)
        loose = compute_gsl_edges(small_stations, positions, 10.0)
        strict = compute_gsl_edges(small_stations, positions, 40.0)
        for gid in range(len(small_stations)):
            assert len(strict[gid].satellite_ids) <= \
                len(loose[gid].satellite_ids)

    def test_numpy_scalar_min_elevation(self, small_constellation,
                                        small_stations):
        """A np.float32 threshold (e.g. from a weather model) must take
        the scalar branch, not crash in the mapping branch."""
        positions = small_constellation.positions_ecef_m(0.0)
        reference = compute_gsl_edges(small_stations, positions, 15.0)
        for scalar in (np.float32(15.0), np.float64(15.0), 15):
            edges = compute_gsl_edges(small_stations, positions, scalar)
            for gid in reference:
                assert np.array_equal(edges[gid].satellite_ids,
                                      reference[gid].satellite_ids)

    def test_exclusion_keeps_int64_when_emptied(self, small_constellation,
                                                small_stations):
        """Excluding every visible satellite must leave an empty int64
        id array, not a float64 one."""
        positions = small_constellation.positions_ecef_m(0.0)
        excluded = set(range(small_constellation.num_satellites))
        edges = compute_gsl_edges(small_stations, positions, 15.0,
                                  excluded_satellites=excluded)
        for gid in range(len(small_stations)):
            assert not edges[gid].is_connected
            assert edges[gid].satellite_ids.dtype == np.int64

    def test_exclusion_filters_only_excluded(self, small_constellation,
                                             small_stations):
        positions = small_constellation.positions_ecef_m(0.0)
        plain = compute_gsl_edges(small_stations, positions, 15.0)
        victim = int(plain[0].satellite_ids[0])
        edges = compute_gsl_edges(small_stations, positions, 15.0,
                                  excluded_satellites={victim})
        for gid in range(len(small_stations)):
            expected = [s for s in plain[gid].satellite_ids if s != victim]
            assert list(edges[gid].satellite_ids) == expected

    def test_batched_elevations_match_per_station(self, small_constellation,
                                                  small_stations):
        from repro.ground.visibility import (batched_elevation_angles_deg,
                                             elevation_angles_deg)
        positions = small_constellation.positions_ecef_m(7.0)
        elevations, distances = batched_elevation_angles_deg(
            small_stations, positions)
        assert elevations.shape == (len(small_stations), len(positions))
        for row, station in enumerate(small_stations):
            np.testing.assert_allclose(
                elevations[row], elevation_angles_deg(station, positions),
                rtol=0, atol=1e-9)
            np.testing.assert_allclose(
                distances[row],
                np.linalg.norm(positions - station.ecef_m, axis=1),
                rtol=1e-12)

    def test_mapping_elevation_still_supported(self, small_constellation,
                                               small_stations):
        positions = small_constellation.positions_ecef_m(0.0)
        per_station = {station.gid: 15.0 for station in small_stations}
        per_station[0] = 90.0  # station 0 effectively blacked out
        edges = compute_gsl_edges(small_stations, positions, per_station)
        reference = compute_gsl_edges(small_stations, positions, 15.0)
        assert len(edges[0].satellite_ids) <= 1  # only near-zenith sats
        for gid in range(1, len(small_stations)):
            assert np.array_equal(edges[gid].satellite_ids,
                                  reference[gid].satellite_ids)


class TestLeoNetwork:
    def test_node_numbering(self, small_network):
        assert small_network.num_satellites == 100
        assert small_network.num_ground_stations == 6
        assert small_network.num_nodes == 106
        assert small_network.gs_node_id(0) == 100
        assert small_network.gs_node_id(5) == 105

    def test_gid_out_of_range(self, small_network):
        with pytest.raises(ValueError):
            small_network.gs_node_id(6)

    def test_station_by_name(self, small_network):
        assert small_network.station_by_name("Quito").gid == 0
        with pytest.raises(KeyError):
            small_network.station_by_name("Nowhere")

    def test_nonconsecutive_gids_rejected(self, small_constellation,
                                          small_stations):
        shuffled = [small_stations[1], small_stations[0]]
        with pytest.raises(ValueError):
            LeoNetwork(small_constellation, shuffled, 15.0)

    def test_bad_elevation_rejected(self, small_constellation,
                                    small_stations):
        with pytest.raises(ValueError):
            LeoNetwork(small_constellation, small_stations, 91.0)

    def test_snapshot_contents(self, small_network):
        snap = small_network.snapshot(10.0)
        assert snap.time_s == 10.0
        assert snap.satellite_positions_m.shape == (100, 3)
        assert len(snap.isl_lengths_m) == len(snap.isl_pairs)
        assert set(snap.gsl_edges) == set(range(6))

    def test_snapshot_is_ground_node(self, small_network):
        snap = small_network.snapshot(0.0)
        assert snap.is_ground_node(100)
        assert not snap.is_ground_node(99)

    def test_to_networkx(self, small_network):
        snap = small_network.snapshot(0.0)
        graph = snap.to_networkx()
        assert graph.number_of_nodes() == 106
        sat_degrees = [graph.degree(n) for n in range(100)]
        assert min(sat_degrees) >= 4  # +Grid plus any GSLs
        # Edge attributes present and consistent.
        for _, _, data in list(graph.edges(data=True))[:10]:
            assert data["delay_s"] == pytest.approx(
                data["distance_m"] / SPEED_OF_LIGHT_M_PER_S)
            assert data["kind"] in ("isl", "gsl")
